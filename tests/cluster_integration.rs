//! Integration tests for the cluster substrate: routing, downtime and
//! per-host detection interacting across crates.

use software_rejuvenation::detectors::{
    Clta, CltaConfig, Cusum, CusumConfig, Ewma, EwmaConfig, RejuvenationDetector, Sraa, SraaConfig,
};
use software_rejuvenation::ecommerce::{ClusterSystem, RateProfile, RoutingPolicy, SystemConfig};
use software_rejuvenation::queueing::MmcQueue;

fn sraa_253() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

#[test]
fn random_split_cluster_matches_mmc_theory() {
    // Bernoulli splitting of a Poisson stream yields independent Poisson
    // streams, so an H-host M/M/c cluster under Random routing behaves
    // like H independent M/M/c queues: the aggregate mean response time
    // must match eq. (2) at the per-host rate.
    let per_host_lambda = 1.6;
    let hosts = 3;
    let cfg = SystemConfig::mmc(per_host_lambda).unwrap();
    let mut cluster = ClusterSystem::new(
        cfg,
        hosts,
        per_host_lambda * hosts as f64,
        RoutingPolicy::Random,
        0.0,
        31,
    );
    let m = cluster.run(120_000);
    let analytic = MmcQueue::new(16, per_host_lambda, 0.2)
        .unwrap()
        .response_time()
        .unwrap()
        .mean();
    assert!(
        (m.aggregate.mean_response_time - analytic).abs() < 0.15,
        "cluster {} vs analytic {analytic}",
        m.aggregate.mean_response_time
    );
}

#[test]
fn detectors_on_every_host_beat_detectors_on_half() {
    // Partial deployment: guarding only half the hosts leaves the other
    // half to age and collapse, dragging the aggregate RT up.
    let cfg = SystemConfig::paper(1.0).unwrap();
    let total = 4.0 * 1.8;

    let mut all = ClusterSystem::new(cfg, 4, total, RoutingPolicy::RoundRobin, 60.0, 33);
    all.attach_detectors(|_| sraa_253());
    let all_m = all.run(60_000);

    let mut half = ClusterSystem::new(cfg, 4, total, RoutingPolicy::RoundRobin, 60.0, 33);
    half.attach_detector(0, sraa_253());
    half.attach_detector(1, sraa_253());
    let half_m = half.run(60_000);

    assert!(
        all_m.aggregate.mean_response_time < half_m.aggregate.mean_response_time,
        "all {} vs half {}",
        all_m.aggregate.mean_response_time,
        half_m.aggregate.mean_response_time
    );
}

#[test]
fn cluster_survives_periodic_peaks_with_detectors() {
    let cfg = SystemConfig::paper(1.0).unwrap();
    // Base 4 tx/s, peaks at 7.2 tx/s (9 CPUs per host at peak).
    let profile = RateProfile::sinusoidal(4.0, 3.2, 2_000.0).unwrap();
    let mut cluster = ClusterSystem::new(cfg, 4, 8.0, RoutingPolicy::LeastActive, 60.0, 35);
    cluster.set_rate_profile(profile);
    cluster.attach_detectors(|_| sraa_253());
    let m = cluster.run(60_000);
    assert!(
        m.aggregate.mean_response_time < 60.0,
        "RT = {}",
        m.aggregate.mean_response_time
    );
    assert!(m.aggregate.loss_fraction() < 0.35);
}

#[test]
fn heterogeneous_detectors_per_host() {
    // Different algorithm on every host — the trait-object plumbing the
    // cluster API promises.
    let cfg = SystemConfig::paper(1.0).unwrap();
    let mut cluster = ClusterSystem::new(cfg, 4, 7.2, RoutingPolicy::RoundRobin, 30.0, 37);
    cluster.attach_detector(0, sraa_253());
    cluster.attach_detector(
        1,
        Box::new(Clta::new(
            CltaConfig::builder(5.0, 5.0)
                .sample_size(30)
                .quantile_factor(1.96)
                .build()
                .unwrap(),
        )),
    );
    cluster.attach_detector(
        2,
        Box::new(Ewma::new(EwmaConfig::new(5.0, 5.0, 0.2, 3.0).unwrap())),
    );
    cluster.attach_detector(
        3,
        Box::new(Cusum::new(CusumConfig::new(5.0, 5.0, 0.5, 5.0).unwrap())),
    );
    let m = cluster.run(40_000);
    // Every host's detector must have fired at this load.
    for (h, &r) in m.rejuvenations_per_host.iter().enumerate() {
        assert!(
            r > 0,
            "host {h} never rejuvenated: {:?}",
            m.rejuvenations_per_host
        );
    }
    assert!(m.aggregate.mean_response_time < 60.0);
}

#[test]
fn zero_downtime_cluster_never_rejects() {
    let cfg = SystemConfig::paper(1.0).unwrap();
    let mut cluster = ClusterSystem::new(cfg, 2, 3.6, RoutingPolicy::LeastActive, 0.0, 39);
    cluster.attach_detectors(|_| sraa_253());
    let m = cluster.run(30_000);
    assert_eq!(m.rejected_no_host, 0);
}

#[test]
fn longer_downtime_costs_more_capacity() {
    // The downtime knob: same detectors, same load, downtime 0 vs 300 s.
    // Longer downtime means fewer available hosts on average, so the
    // survivors run hotter.
    let cfg = SystemConfig::paper(1.0).unwrap();
    let run = |downtime: f64| {
        let mut c = ClusterSystem::new(cfg, 4, 7.2, RoutingPolicy::RoundRobin, downtime, 41);
        c.attach_detectors(|_| sraa_253());
        c.run(50_000)
    };
    let instant = run(0.0);
    let slow = run(300.0);
    assert!(
        slow.aggregate.mean_response_time > instant.aggregate.mean_response_time,
        "downtime should hurt RT: {} vs {}",
        slow.aggregate.mean_response_time,
        instant.aggregate.mean_response_time
    );
}
