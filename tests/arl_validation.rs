//! End-to-end ARL validation: the exact run-length theory
//! (`rejuv-core::analysis`), fed with exact window-average tail
//! probabilities from the Fig. 4 CTMC (`rejuv-queueing::SampleMean`),
//! must predict the false-alarm rate of the real SRAA detector on the
//! simulated M/M/16 system.

use software_rejuvenation::detectors::analysis::{
    clta_expected_windows, expected_windows_to_trigger, windows_to_observations,
};
use software_rejuvenation::detectors::{Decision, RejuvenationDetector, Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{Runner, SystemConfig};
use software_rejuvenation::queueing::{MmcQueue, SampleMean};

/// Exact per-bucket exceed probabilities for SRAA targets `µX + N·σX`
/// (with the paper's µX = σX = 5) under the true M/M/16 window-average
/// distribution at arrival rate `lambda`.
fn exact_exceed_probs(lambda: f64, n: usize, buckets: usize) -> Vec<f64> {
    let rt = MmcQueue::paper_system(lambda)
        .unwrap()
        .response_time()
        .unwrap();
    let sm = SampleMean::new(&rt, n).unwrap();
    (0..buckets)
        .map(|b| 1.0 - sm.exact().cdf(5.0 + b as f64 * 5.0).unwrap())
        .collect()
}

/// Mean observations between SRAA triggers on the *simulated* healthy
/// M/M/16 stream (no GC, no overhead, the detector observing passively).
fn simulated_mean_observations_between_triggers(lambda: f64, n: usize, k: usize, d: u32) -> f64 {
    let runner = Runner::new(3, 150_000, 4711);
    let raw = runner.run_point_raw_recording(SystemConfig::mmc(lambda).unwrap(), &|| None, true);
    let cfg = SraaConfig::builder(5.0, 5.0)
        .sample_size(n)
        .buckets(k)
        .depth(d)
        .build()
        .unwrap();
    let mut observations = 0u64;
    let mut triggers = 0u64;
    for m in &raw {
        // Fresh detector per replication; triggers within a replication
        // renew the process, matching the ARL renewal argument.
        let mut det = Sraa::new(cfg);
        for &rt in &m.response_times {
            observations += 1;
            if det.observe(rt) == Decision::Rejuvenate {
                triggers += 1;
            }
        }
    }
    assert!(triggers > 30, "need enough renewals, got {triggers}");
    observations as f64 / triggers as f64
}

#[test]
fn sraa_false_alarm_rate_matches_renewal_theory() {
    // (n, K, D) = (3, 1, 2) at 8 CPUs: false alarms are frequent enough
    // to measure yet non-trivial.
    let (lambda, n, k, d) = (1.6, 3usize, 1usize, 2u32);
    let probs = exact_exceed_probs(lambda, n, k);
    let analytic_windows = expected_windows_to_trigger(&probs, k, d).unwrap();
    let analytic_obs = windows_to_observations(analytic_windows, n);

    let simulated = simulated_mean_observations_between_triggers(lambda, n, k, d);
    let ratio = simulated / analytic_obs;
    assert!(
        (0.8..1.25).contains(&ratio),
        "simulated {simulated} vs analytic {analytic_obs} (ratio {ratio})"
    );
}

#[test]
fn two_bucket_arl_is_dramatically_larger() {
    // Adding a second bucket multiplies the healthy ARL by orders of
    // magnitude — the quantitative version of the paper's "multiple
    // buckets tolerate bursts".
    let (lambda, n) = (1.6, 3usize);
    let p1 = exact_exceed_probs(lambda, n, 1);
    let p2 = exact_exceed_probs(lambda, n, 2);
    let one = expected_windows_to_trigger(&p1, 1, 2).unwrap();
    let two = expected_windows_to_trigger(&p2, 2, 2).unwrap();
    assert!(
        two > 100.0 * one,
        "1 bucket: {one} windows; 2 buckets: {two} windows"
    );
}

#[test]
fn clta_false_alarm_interval_matches_tail_mass() {
    // CLTA at n = 30, N = 1.96: the §4.1 tail mass (≈ 3.4 %) implies a
    // false alarm roughly every 30 / 0.034 ≈ 880 observations.
    let rt = MmcQueue::paper_system(1.6)
        .unwrap()
        .response_time()
        .unwrap();
    let sm = SampleMean::new(&rt, 30).unwrap();
    let tail = sm.tail_mass_beyond_normal_quantile(0.975).unwrap();
    let analytic_obs = windows_to_observations(clta_expected_windows(tail).unwrap(), 30);
    assert!(
        (analytic_obs - 880.0).abs() < 60.0,
        "analytic interval = {analytic_obs}"
    );

    // And the simulated M/M/16 stream confirms it.
    let runner = Runner::new(2, 120_000, 4713);
    let raw = runner.run_point_raw_recording(SystemConfig::mmc(1.6).unwrap(), &|| None, true);
    let threshold = 5.0 + 1.96 * 5.0 / 30f64.sqrt();
    let mut windows = 0u64;
    let mut exceed = 0u64;
    for m in &raw {
        for w in m.response_times.chunks_exact(30) {
            windows += 1;
            if w.iter().sum::<f64>() / 30.0 > threshold {
                exceed += 1;
            }
        }
    }
    let simulated_interval = 30.0 * windows as f64 / exceed as f64;
    assert!(
        (simulated_interval / analytic_obs - 1.0).abs() < 0.25,
        "simulated {simulated_interval} vs analytic {analytic_obs}"
    );
}

#[test]
fn detection_delay_shrinks_under_load_shift() {
    // ARL₁: at 9.5 CPUs the exceed probabilities rise, so the predicted
    // windows-to-trigger falls well below the healthy value.
    let n = 3usize;
    let healthy = expected_windows_to_trigger(&exact_exceed_probs(1.0, n, 2), 2, 2).unwrap();
    let loaded = expected_windows_to_trigger(&exact_exceed_probs(1.9, n, 2), 2, 2).unwrap();
    assert!(
        loaded < healthy,
        "loaded {loaded} should be below healthy {healthy}"
    );
}
