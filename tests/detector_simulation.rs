//! Integration tests: detectors driving the full e-commerce model.
//!
//! These exercise the cross-crate path the paper's evaluation depends
//! on: simulation → response times → detector → rejuvenation → metrics.

use software_rejuvenation::detectors::{
    Clta, CltaConfig, RejuvenationDetector, Saraa, SaraaConfig, Sraa, SraaConfig,
};
use software_rejuvenation::ecommerce::{EcommerceSystem, Runner, SystemConfig};

fn sraa_box(n: usize, k: usize, d: u32) -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(n)
            .buckets(k)
            .depth(d)
            .build()
            .unwrap(),
    ))
}

#[test]
fn rejuvenation_controls_response_time_at_high_load() {
    // The paper's headline: at 9 CPUs of offered load the unmanaged
    // system drifts into the soft-failure regime while a monitored one
    // stays responsive.
    let cfg = SystemConfig::paper_at_load(9.0).unwrap();

    let mut bare = EcommerceSystem::new(cfg, 1);
    let bare_rt = bare.run(100_000).mean_response_time;

    let mut managed = EcommerceSystem::new(cfg, 1);
    managed.attach_detector(sraa_box(2, 5, 3));
    let managed_metrics = managed.run(100_000);

    assert!(
        managed_metrics.mean_response_time * 3.0 < bare_rt,
        "managed {} vs bare {bare_rt}",
        managed_metrics.mean_response_time
    );
    assert!(managed_metrics.rejuvenation_count > 0);
    assert!(
        managed_metrics.loss_fraction() < 0.35,
        "paper's Fig. 10 ceiling"
    );
}

#[test]
fn no_detector_low_load_is_clean() {
    let cfg = SystemConfig::paper_at_load(0.5).unwrap();
    let mut sys = EcommerceSystem::new(cfg, 2);
    let m = sys.run(50_000);
    assert_eq!(m.lost, 0);
    // Even with occasional GC pauses, the mean stays near 5 s at 0.5 CPUs.
    assert!(
        (m.mean_response_time - 5.0).abs() < 0.6,
        "{}",
        m.mean_response_time
    );
}

#[test]
fn multi_bucket_configs_do_not_false_alarm_at_low_load() {
    // Fig. 10: K > 1 configurations lose (almost) nothing at 0.5 CPUs.
    let runner = Runner::new(3, 30_000, 3);
    let cfg = SystemConfig::paper_at_load(0.5).unwrap();
    for (n, k, d) in [(1usize, 3usize, 5u32), (1, 5, 3), (3, 5, 1), (5, 3, 1)] {
        let f = move || -> Option<Box<dyn RejuvenationDetector>> { Some(sraa_box(n, k, d)) };
        let res = runner.run_point(cfg, &f);
        assert!(
            res.mean_loss_fraction() < 0.001,
            "({n},{k},{d}) lost {}",
            res.mean_loss_fraction()
        );
    }
}

#[test]
fn single_bucket_configs_do_false_alarm_at_low_load() {
    // Fig. 10's other half: K = 1 loses a measurable fraction at 0.5 CPUs.
    let runner = Runner::new(3, 30_000, 3);
    let cfg = SystemConfig::paper_at_load(0.5).unwrap();
    for (n, k, d) in [(3usize, 1usize, 5u32), (5, 1, 3), (15, 1, 1)] {
        let f = move || -> Option<Box<dyn RejuvenationDetector>> { Some(sraa_box(n, k, d)) };
        let res = runner.run_point(cfg, &f);
        assert!(
            res.mean_loss_fraction() > 0.0005,
            "({n},{k},{d}) lost only {}",
            res.mean_loss_fraction()
        );
    }
}

#[test]
fn saraa_beats_sraa_on_high_load_response_time() {
    // Fig. 15: sampling acceleration improves high-load RT at equal
    // (n, K, D).
    let runner = Runner::new(3, 50_000, 5);
    let cfg = SystemConfig::paper_at_load(9.0).unwrap();

    let sraa = |n: usize, k: usize, d: u32| {
        move || -> Option<Box<dyn RejuvenationDetector>> { Some(sraa_box(n, k, d)) }
    };
    let saraa = |n: usize, k: usize, d: u32| {
        move || -> Option<Box<dyn RejuvenationDetector>> {
            Some(Box::new(Saraa::new(
                SaraaConfig::builder(5.0, 5.0)
                    .initial_sample_size(n)
                    .buckets(k)
                    .depth(d)
                    .build()
                    .unwrap(),
            )))
        }
    };

    let mut wins = 0;
    for (n, k, d) in [(2usize, 5usize, 3u32), (2, 3, 5), (6, 5, 1), (10, 3, 1)] {
        let sr = runner.run_point(cfg, &sraa(n, k, d)).mean_response_time();
        let sa = runner.run_point(cfg, &saraa(n, k, d)).mean_response_time();
        if sa < sr {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "SARAA should win on most configurations, won {wins}/4"
    );
}

#[test]
fn clta_loses_more_than_bucketed_algorithms_at_low_load() {
    // §5.6: at 0.5 CPUs CLTA drops ≈ 0.14% while SRAA/SARAA drop nothing.
    let runner = Runner::new(3, 50_000, 7);
    let cfg = SystemConfig::paper_at_load(0.5).unwrap();

    let clta = || -> Option<Box<dyn RejuvenationDetector>> {
        Some(Box::new(Clta::new(
            CltaConfig::builder(5.0, 5.0)
                .sample_size(30)
                .quantile_factor(1.96)
                .build()
                .unwrap(),
        )))
    };
    let sraa = || -> Option<Box<dyn RejuvenationDetector>> { Some(sraa_box(2, 5, 3)) };

    let clta_loss = runner.run_point(cfg, &clta).mean_loss_fraction();
    let sraa_loss = runner.run_point(cfg, &sraa).mean_loss_fraction();
    assert!(clta_loss > 0.0002, "clta loss = {clta_loss}");
    assert!(clta_loss < 0.01, "clta loss = {clta_loss} (paper: 0.0014)");
    assert!(
        sraa_loss < clta_loss,
        "sraa {sraa_loss} vs clta {clta_loss}"
    );
}

#[test]
fn common_random_numbers_make_policies_comparable() {
    // Two different policies at the same seed see the same arrival
    // process: with no detector the runs must be bitwise identical, so
    // any metric difference between policies is attributable to the
    // policy alone.
    let cfg = SystemConfig::paper_at_load(5.0).unwrap();
    let m1 = EcommerceSystem::new(cfg, 99).run(20_000);
    let m2 = EcommerceSystem::new(cfg, 99).run(20_000);
    assert_eq!(m1, m2);
}

#[test]
fn doubling_sample_size_hurts_more_than_doubling_depth() {
    // §5.2 vs §5.3: at 9.0 CPUs, (n→2n) degrades RT more than (D→2D).
    let runner = Runner::new(3, 50_000, 13);
    let cfg = SystemConfig::paper_at_load(9.0).unwrap();

    let rt = |n: usize, k: usize, d: u32| {
        let f = move || -> Option<Box<dyn RejuvenationDetector>> { Some(sraa_box(n, k, d)) };
        runner.run_point(cfg, &f).mean_response_time()
    };

    // Compare against the (3, 5, 1) base configuration of Fig. 9.
    let base = rt(3, 5, 1);
    let n_doubled = rt(6, 5, 1);
    let d_doubled = rt(3, 5, 2);
    assert!(
        n_doubled > base,
        "doubling n must hurt: {n_doubled} vs {base}"
    );
    assert!(
        n_doubled > d_doubled,
        "doubling n ({n_doubled}) should hurt more than doubling D ({d_doubled})"
    );
}
