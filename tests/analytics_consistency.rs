//! Integration tests: analytic results (queueing + CTMC) cross-checked
//! against simulation — the two halves of the paper must agree with each
//! other.

use software_rejuvenation::ecommerce::{Runner, SystemConfig};
use software_rejuvenation::queueing::{MmcQueue, SampleMean};
use software_rejuvenation::stats::{AutocorrStudy, Histogram};

#[test]
fn simulated_mmc_matches_analytic_moments() {
    // Simulate the abstracted M/M/16 at several loads and compare the
    // empirical response-time mean/std against eq. (2) and eq. (3).
    let runner = Runner::new(3, 60_000, 21);
    for lambda in [0.4, 1.0, 1.6, 2.4] {
        let queue = MmcQueue::paper_system(lambda).unwrap();
        let rt = queue.response_time().unwrap();
        let raw = runner.run_point_raw(SystemConfig::mmc(lambda).unwrap(), &|| None);
        let mean: f64 = raw.iter().map(|m| m.mean_response_time).sum::<f64>() / raw.len() as f64;
        let std: f64 = raw.iter().map(|m| m.response_time_std_dev).sum::<f64>() / raw.len() as f64;
        assert!(
            (mean - rt.mean()).abs() < 0.15,
            "λ = {lambda}: simulated mean {mean} vs analytic {}",
            rt.mean()
        );
        assert!(
            (std - rt.std_dev()).abs() < 0.3,
            "λ = {lambda}: simulated std {std} vs analytic {}",
            rt.std_dev()
        );
    }
}

#[test]
fn simulated_sample_mean_density_matches_exact_ctmc_density() {
    // Fig. 5 cross-check: batch the simulated response times into
    // windows of n, histogram the window means, and compare against the
    // exact absorption-time density.
    let n = 15usize;
    let queue = MmcQueue::paper_system(1.6).unwrap();
    let rt = queue.response_time().unwrap();
    let sm = SampleMean::new(&rt, n).unwrap();

    let runner = Runner::new(2, 90_000, 33);
    let raw = runner.run_point_raw_recording(SystemConfig::mmc(1.6).unwrap(), &|| None, true);

    let mut hist = Histogram::new(2.0, 9.0, 14).unwrap();
    for m in &raw {
        for window in m.response_times.chunks_exact(n) {
            hist.record(window.iter().sum::<f64>() / n as f64);
        }
    }

    let mut worst = 0.0f64;
    for (x, empirical) in hist.density() {
        let exact = sm.exact().pdf(x).unwrap();
        worst = worst.max((empirical - exact).abs());
    }
    assert!(worst < 0.05, "max density gap = {worst}");
}

#[test]
fn tail_mass_observed_in_simulation() {
    // The §4.1 false-alarm discussion made concrete: the fraction of
    // simulated windows of 30 whose mean exceeds the normal 97.5%
    // quantile should sit near the exact 3.4%, well above the nominal
    // 2.5%.
    let n = 30usize;
    let queue = MmcQueue::paper_system(1.6).unwrap();
    let rt = queue.response_time().unwrap();
    let sm = SampleMean::new(&rt, n).unwrap();
    let threshold = sm.normal_approximation().quantile(0.975).unwrap();
    let exact_tail = sm.tail_mass_beyond_normal_quantile(0.975).unwrap();

    let runner = Runner::new(3, 90_000, 55);
    let raw = runner.run_point_raw_recording(SystemConfig::mmc(1.6).unwrap(), &|| None, true);
    let mut exceed = 0usize;
    let mut windows = 0usize;
    for m in &raw {
        for window in m.response_times.chunks_exact(n) {
            windows += 1;
            if window.iter().sum::<f64>() / n as f64 > threshold {
                exceed += 1;
            }
        }
    }
    let observed = exceed as f64 / windows as f64;
    assert!(
        (observed - exact_tail).abs() < 0.01,
        "observed {observed} vs exact {exact_tail} over {windows} windows"
    );
    assert!(
        observed > 0.025,
        "must exceed the nominal rate, got {observed}"
    );
}

#[test]
fn autocorrelation_is_minor_at_max_load() {
    // §4.1's conclusion: at λ = 1.6 the lag-1 autocorrelation of M/M/16
    // response times plays a minor role (paper: |γ̂| mostly below the
    // significance band, 1 of 5 replications significant).
    let runner = Runner::new(5, 40_000, 77);
    let study = AutocorrStudy::new(4_000, 0.95).unwrap();
    let outcome =
        software_rejuvenation::ecommerce::mmc_mode::autocorrelation_study(1.6, runner, study)
            .unwrap();
    for r in &outcome.replications {
        assert!(
            r.gamma_hat.abs() < 0.1,
            "lag-1 autocorrelation unexpectedly strong: {}",
            r.gamma_hat
        );
    }
    assert!(
        outcome.significant <= 3,
        "most replications should be insignificant, got {}",
        outcome.significant
    );
}

#[test]
fn simulated_occupancy_matches_birth_death_steady_state() {
    // The time-weighted mean population of the simulated M/M/16 must
    // match the analytic L = λ·W and the truncated birth–death chain's
    // steady state (solved by the CTMC crate).
    use software_rejuvenation::ctmc::steady_state;
    use software_rejuvenation::queueing::queue_length_chain;

    let lambda = 2.4; // 12 CPUs of offered load: real queueing happens
    let queue = MmcQueue::paper_system(lambda).unwrap();
    let chain = queue_length_chain(&queue, 120).unwrap();
    let pi = steady_state(&chain).unwrap();
    let analytic_l: f64 = pi.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();

    // Cross-check the chain against the closed form first.
    assert!((analytic_l - queue.mean_jobs().unwrap()).abs() < 1e-6);

    let runner = Runner::new(3, 60_000, 81);
    let raw = runner.run_point_raw(SystemConfig::mmc(lambda).unwrap(), &|| None);
    let simulated_l: f64 =
        raw.iter().map(|m| m.mean_active_threads).sum::<f64>() / raw.len() as f64;
    assert!(
        (simulated_l / analytic_l - 1.0).abs() < 0.05,
        "simulated L = {simulated_l} vs analytic {analytic_l}"
    );
}

#[test]
fn erlang_c_agrees_with_simulated_wait_probability() {
    // P(wait) from simulation ≈ Erlang C. A job waits iff its response
    // time exceeds its service time; we proxy via the analytic identity
    // P(RT > t) compared pointwise instead, which exercises eq. (1).
    let queue = MmcQueue::paper_system(2.4).unwrap();
    let rt = queue.response_time().unwrap();
    let runner = Runner::new(2, 80_000, 91);
    let raw = runner.run_point_raw_recording(SystemConfig::mmc(2.4).unwrap(), &|| None, true);
    for t in [2.0, 5.0, 10.0, 20.0] {
        let mut count = 0usize;
        let mut total = 0usize;
        for m in &raw {
            total += m.response_times.len();
            count += m.response_times.iter().filter(|&&x| x > t).count();
        }
        let empirical = count as f64 / total as f64;
        let analytic = rt.survival(t);
        assert!(
            (empirical - analytic).abs() < 0.01,
            "t = {t}: empirical {empirical} vs analytic {analytic}"
        );
    }
}
