//! Failure-injection integration tests: arrival bursts and heap
//! exhaustion scenarios from DESIGN.md.
//!
//! The paper's central design goal is *distinguishing* burst-induced
//! degradation (tolerate) from aging/soft-failure degradation
//! (rejuvenate). These tests inject each disturbance explicitly and
//! check the detectors' discrimination.

use software_rejuvenation::detectors::{Calibrating, Cooldown, Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{EcommerceSystem, SystemConfig};

fn sraa(n: usize, k: usize, d: u32) -> Sraa {
    Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(n)
            .buckets(k)
            .depth(d)
            .build()
            .unwrap(),
    )
}

#[test]
fn multi_bucket_sraa_is_more_burst_tolerant_than_single_bucket() {
    // The design claim of §1: multiple buckets distinguish arrival
    // bursts from aging. Inject the *same* burst into two systems that
    // differ only in the bucket count and compare rejuvenation counts.
    let run_with = |detector: Sraa| {
        let cfg = SystemConfig::paper_at_load(4.0).unwrap();
        let mut sys = EcommerceSystem::new(cfg, 41);
        sys.attach_detector(Box::new(detector));
        sys.run(20_000);
        sys.set_arrival_rate(2.4).unwrap(); // burst: 12 CPUs offered
        let burst = sys.run(2_000);
        sys.set_arrival_rate(0.8).unwrap(); // recovery
        let after = sys.run(10_000);
        burst.rejuvenation_count + after.rejuvenation_count
    };

    let k5 = run_with(sraa(2, 5, 3));
    let k1 = run_with(sraa(3, 1, 5));
    assert!(k1 > 0, "the single-bucket design must react to the burst");
    assert!(
        k5 < k1,
        "K = 5 ({k5} rejuvenations) must tolerate the burst better than K = 1 ({k1})"
    );
}

#[test]
fn multi_bucket_sraa_absorbs_a_brief_burst_entirely() {
    // A pure arrival-process disturbance: memory/GC disabled so the
    // burst cannot interact with a collection and escalate into a soft
    // failure. The K = 5 design must stay silent throughout.
    let cfg = SystemConfig::new(16, 0.8, 0.2, Some(50), 2.0, None).unwrap();
    let mut sys = EcommerceSystem::new(cfg, 42);
    sys.attach_detector(Box::new(sraa(2, 5, 3)));

    let before = sys.run(10_000);
    assert_eq!(before.rejuvenation_count, 0, "healthy phase must be quiet");

    sys.set_arrival_rate(2.4).unwrap();
    let burst = sys.run(150);
    sys.set_arrival_rate(0.8).unwrap();
    let after = sys.run(10_000);

    assert_eq!(
        burst.rejuvenation_count + after.rejuvenation_count,
        0,
        "a 150-transaction burst must be absorbed (burst RT {})",
        burst.mean_response_time
    );
}

#[test]
fn single_bucket_sraa_fires_during_the_same_burst() {
    // The discrimination claim has two sides: the burst that K = 5
    // tolerates must be caught by the hair-triggered K = 1 design.
    let cfg = SystemConfig::paper_at_load(4.0).unwrap();
    let mut sys = EcommerceSystem::new(cfg, 41);
    sys.attach_detector(Box::new(sraa(3, 1, 5)));

    sys.run(20_000);
    sys.set_arrival_rate(2.4).unwrap();
    let burst = sys.run(2_000);
    assert!(
        burst.rejuvenation_count > 0,
        "K = 1 should treat the burst as degradation"
    );
}

#[test]
fn sustained_overload_fires_even_with_many_buckets() {
    // A *sustained* shift (soft failure) must fire even the
    // burst-tolerant configuration.
    let cfg = SystemConfig::paper_at_load(4.0).unwrap();
    let mut sys = EcommerceSystem::new(cfg, 43);
    sys.attach_detector(Box::new(sraa(2, 5, 3)));

    sys.run(10_000);
    sys.set_arrival_rate(2.0).unwrap(); // 10 CPUs offered — past the soft-failure knee
    let overload = sys.run(60_000);
    assert!(
        overload.rejuvenation_count > 0,
        "sustained overload must trigger rejuvenation"
    );
}

#[test]
fn heap_exhaustion_without_detector_freezes_throughput() {
    // Heap exhaustion scenario: a tiny heap makes GC nearly continuous;
    // the 60-second pauses dominate and the mean RT explodes relative
    // to the same system with a healthy heap.
    let small_heap = SystemConfig::new(
        16,
        1.6,
        0.2,
        Some(50),
        2.0,
        Some(software_rejuvenation::ecommerce::config::MemoryConfig {
            heap_mb: 200.0,
            alloc_mb: 10.0,
            gc_free_threshold_mb: 100.0,
            gc_pause_secs: 60.0,
        }),
    )
    .unwrap();
    let mut sick = EcommerceSystem::new(small_heap, 47);
    let sick_m = sick.run(5_000);

    let healthy = SystemConfig::paper(1.6).unwrap();
    let mut well = EcommerceSystem::new(healthy, 47);
    let well_m = well.run(5_000);

    assert!(
        sick_m.mean_response_time > 5.0 * well_m.mean_response_time,
        "sick {} vs well {}",
        sick_m.mean_response_time,
        well_m.mean_response_time
    );
    assert!(sick_m.gc_count > 10 * well_m.gc_count.max(1));
}

#[test]
fn detector_rescues_the_exhausted_heap_system() {
    let small_heap = SystemConfig::new(
        16,
        1.6,
        0.2,
        Some(50),
        2.0,
        Some(software_rejuvenation::ecommerce::config::MemoryConfig {
            heap_mb: 200.0,
            alloc_mb: 10.0,
            gc_free_threshold_mb: 100.0,
            gc_pause_secs: 60.0,
        }),
    )
    .unwrap();

    let mut bare = EcommerceSystem::new(small_heap, 49);
    let bare_m = bare.run(20_000);

    let mut guarded = EcommerceSystem::new(small_heap, 49);
    guarded.attach_detector(Box::new(sraa(3, 1, 5)));
    let guarded_m = guarded.run(20_000);

    // Rejuvenation empties the leaked heap, so collections become rarer
    // and the response time drops sharply.
    assert!(
        guarded_m.mean_response_time * 2.0 < bare_m.mean_response_time,
        "guarded {} vs bare {}",
        guarded_m.mean_response_time,
        bare_m.mean_response_time
    );
    assert!(guarded_m.rejuvenation_count > 0);
}

#[test]
fn calibrating_detector_learns_baseline_from_the_live_system() {
    // Commissioning flow: no SLA numbers — learn (µX, σX) from the first
    // 5 000 transactions, then protect the system.
    let cfg = SystemConfig::paper_at_load(8.0).unwrap();
    let mut sys = EcommerceSystem::new(cfg, 53);
    sys.attach_detector(Box::new(Calibrating::new(5_000, 3.0, |mu, sigma| {
        Sraa::new(
            SraaConfig::builder(mu, sigma)
                .sample_size(2)
                .buckets(5)
                .depth(3)
                .build()
                .expect("learned baseline is finite"),
        )
    })));
    let m = sys.run(80_000);
    // The learned baseline sits near the SLA values (5, 5), so behaviour
    // should resemble the fixed-baseline detector: some rejuvenations at
    // this load, bounded loss.
    assert!(m.rejuvenation_count > 0);
    assert!(m.loss_fraction() < 0.35);
    assert!(m.mean_response_time < 60.0);
}

#[test]
fn cooldown_bounds_rejuvenation_frequency_in_the_full_system() {
    let cfg = SystemConfig::paper_at_load(9.0).unwrap();

    let mut eager = EcommerceSystem::new(cfg, 59);
    eager.attach_detector(Box::new(sraa(3, 1, 5)));
    let eager_m = eager.run(50_000);

    let mut damped = EcommerceSystem::new(cfg, 59);
    damped.attach_detector(Box::new(Cooldown::new(sraa(3, 1, 5), 2_000)));
    let damped_m = damped.run(50_000);

    assert!(
        damped_m.rejuvenation_count < eager_m.rejuvenation_count,
        "cooldown {} vs eager {}",
        damped_m.rejuvenation_count,
        eager_m.rejuvenation_count
    );
    // Hard bound: at most one rejuvenation per 2 000 observed completions.
    assert!(damped_m.rejuvenation_count <= 50_000 / 2_000 + 1);
    // (Total transaction loss can move either way: rarer rejuvenations
    // each flush a deeper queue, so no assertion on loss here.)
}
