//! API-contract tests across the workspace: thread-safety markers,
//! serde round-trips of every serializable public configuration, and
//! trait-object usability — the C-SEND-SYNC / C-SERDE items of the Rust
//! API Guidelines, enforced.

use software_rejuvenation::detectors::{
    AccelerationSchedule, Calibrating, Clta, CltaConfig, Cooldown, Cusum, CusumConfig, DynamicSraa,
    DynamicSraaConfig, Ewma, EwmaConfig, RejuvenationDetector, Saraa, SaraaConfig, Sraa,
    SraaConfig, StaticRejuvenation,
};
use software_rejuvenation::ecommerce::{
    cluster::RoutingPolicy, config::MemoryConfig, RateProfile, RunMetrics, SystemConfig,
};
use software_rejuvenation::queueing::MmcQueue;
use software_rejuvenation::stats::{Exponential, Normal, OnlineStats, ReplicationSet};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn core_types_are_thread_safe() {
    assert_send_sync::<Sraa>();
    assert_send_sync::<Saraa>();
    assert_send_sync::<Clta>();
    assert_send_sync::<StaticRejuvenation>();
    assert_send_sync::<DynamicSraa>();
    assert_send_sync::<Ewma>();
    assert_send_sync::<Cusum>();
    assert_send::<Cooldown<Sraa>>();
    assert_send::<Calibrating<Sraa>>();
    assert_send_sync::<SraaConfig>();
    assert_send_sync::<OnlineStats>();
    assert_send_sync::<Normal>();
    assert_send_sync::<MmcQueue>();
    assert_send_sync::<SystemConfig>();
    assert_send_sync::<RunMetrics>();
}

#[test]
fn detectors_box_as_trait_objects() {
    let detectors: Vec<Box<dyn RejuvenationDetector>> = vec![
        Box::new(Sraa::new(SraaConfig::builder(5.0, 5.0).build().unwrap())),
        Box::new(Saraa::new(SaraaConfig::builder(5.0, 5.0).build().unwrap())),
        Box::new(Clta::new(CltaConfig::builder(5.0, 5.0).build().unwrap())),
        Box::new(StaticRejuvenation::new(5.0, 5.0, 2, 2).unwrap()),
        Box::new(DynamicSraa::new(
            DynamicSraaConfig::new(5.0, 5.0, 1, vec![2, 1]).unwrap(),
        )),
        Box::new(Ewma::new(EwmaConfig::new(5.0, 5.0, 0.2, 3.0).unwrap())),
        Box::new(Cusum::new(CusumConfig::new(5.0, 5.0, 0.5, 5.0).unwrap())),
    ];
    for mut d in detectors {
        d.observe(1.0);
        d.reset();
        assert!(!d.name().is_empty());
        let _ = d.rejuvenation_count();
    }
}

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value);
}

#[test]
fn configs_roundtrip_through_serde() {
    roundtrip(
        &SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    );
    roundtrip(
        &SaraaConfig::builder(5.0, 5.0)
            .initial_sample_size(10)
            .buckets(3)
            .schedule(AccelerationSchedule::Quadratic)
            .build()
            .unwrap(),
    );
    roundtrip(
        &CltaConfig::builder(5.0, 5.0)
            .sample_size(30)
            .quantile_factor(1.96)
            .build()
            .unwrap(),
    );
    roundtrip(&DynamicSraaConfig::new(5.0, 5.0, 2, vec![5, 3, 1]).unwrap());
    roundtrip(&EwmaConfig::new(5.0, 5.0, 0.2, 3.0).unwrap());
    roundtrip(&CusumConfig::new(5.0, 5.0, 0.5, 5.0).unwrap());
    roundtrip(&SystemConfig::paper(1.6).unwrap());
    roundtrip(&MemoryConfig::paper());
    roundtrip(&RateProfile::sinusoidal(1.0, 0.5, 3_600.0).unwrap());
    roundtrip(&RateProfile::piecewise(vec![(0.0, 1.0), (60.0, 2.0)]).unwrap());
    roundtrip(&RoutingPolicy::LeastActive);
    roundtrip(&Normal::new(5.0, 2.0).unwrap());
    roundtrip(&Exponential::new(0.2).unwrap());
    let reps: ReplicationSet = [1.0, 2.0, 3.0].into_iter().collect();
    roundtrip(&reps);
}

#[test]
fn run_metrics_roundtrip_through_serde() {
    let mut sys = software_rejuvenation::ecommerce::EcommerceSystem::new(
        SystemConfig::paper(1.0).unwrap(),
        3,
    );
    sys.record_response_times(true);
    let metrics = sys.run(500);
    roundtrip(&metrics);
}

#[test]
fn errors_implement_std_error() {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<software_rejuvenation::detectors::ConfigError>();
    assert_error::<software_rejuvenation::stats::StatsError>();
    assert_error::<software_rejuvenation::ctmc::CtmcError>();
    assert_error::<software_rejuvenation::queueing::QueueingError>();
    assert_error::<software_rejuvenation::ecommerce::config::SystemConfigError>();
    assert_error::<software_rejuvenation::ecommerce::workload::ProfileError>();
}
