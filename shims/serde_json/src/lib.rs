//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`] and
//! the [`json!`] macro, all built on the `serde` shim's owned
//! [`Value`] tree.
//!
//! Output is deterministic: objects render with sorted keys (the tree
//! stores them in a `BTreeMap`) and numbers use Rust's shortest
//! round-trip float formatting. Non-finite floats render as `null`,
//! matching real `serde_json`.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes `value` into its [`Value`] tree.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            out.push_str(&v.to_string());
        }
        Value::U64(v) => {
            out.push_str(&v.to_string());
        }
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting; ensure the text stays a
    // float (real serde_json prints `1.0`, not `1`).
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::String),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::custom("lone lead surrogate"));
                                }
                                self.pos += 2;
                                let second = self.parse_hex4()?;
                                0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports the subset this workspace uses: object literals with
/// string-literal keys, nested objects/arrays, and expression values
/// (anything implementing [`serde::Serialize`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = ::std::collections::BTreeMap::new();
        $crate::json_object_entries!(object, $($body)*);
        $crate::Value::Object(object)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($value:expr) => {
        ::serde::Serialize::to_value(&$value)
    };
}

/// Internal token muncher for [`json!`] object bodies.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($map:ident,) => {};
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(
            ::std::string::String::from($key),
            $crate::json!({ $($inner)* }),
        );
        $( $crate::json_object_entries!($map, $($rest)*); )?
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(
            ::std::string::String::from($key),
            $crate::json!([ $($inner)* ]),
        );
        $( $crate::json_object_entries!($map, $($rest)*); )?
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_canonical() {
        let v = json!({
            "b": 2,
            "a": [1.5, true, Option::<u64>::None],
            "s": "hi\n",
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1.5,true,null],"b":2,"s":"hi\n"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({ "a": 1 });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"x": [1, -2, 3.5, "s", {"y": null}], "z": false}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["x"][0], 1);
        assert_eq!(v["x"][1], -2);
        assert_eq!(v["x"][2], 3.5);
        assert_eq!(v["x"][3], "s");
        assert!(v["x"][4]["y"].is_null());
        assert_eq!(v["z"], false);
        let rendered = to_string(&v).unwrap();
        let back: Value = from_str(&rendered).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" backslash\\ newline\n tab\t unicode\u{1F600}";
        let rendered = to_string(&String::from(original)).unwrap();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let e: Result<Vec<u64>, Error> = from_str("[1, 2");
        assert!(e.is_err());
    }
}
