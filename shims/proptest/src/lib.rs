//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (all arguments are `Debug`-free here, so only the assertion
//!   text and case number are shown) but is not minimised.
//! - **Deterministic seeding.** Each test's RNG seed is a hash of its
//!   `module_path!()::name`, so failures reproduce exactly across runs
//!   and machines.
//! - **64 cases by default** (`ProptestConfig::with_cases` overrides).

#![forbid(unsafe_code)]

use rand::Rng as _;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-runner plumbing (the subset the macros need).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`); it does not
        /// count as a failure.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected-case marker.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// The deterministic RNG driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds an RNG whose stream is a pure function of `name`
        /// (normally `module_path!()::test_name`).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test's full path.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// Draws a raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Draws a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.random::<f64>()
        }

        /// Draws a uniform index in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            self.inner.random_range(0..n)
        }

        pub(crate) fn inner_mut(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }
}

use test_runner::TestRng;

/// A generator of values of an associated type.
///
/// The shim generates directly (no value tree, no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes this strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner_mut().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner_mut().random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner_mut().random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner_mut().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Allowed sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests (see real proptest for syntax).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(20),
                        "too many rejected cases in {}",
                        stringify!($name),
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                __ran,
                                __msg,
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), __l),
            ));
        }
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 1usize..10, y in -2.0f64..=2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(
            v in crate::collection::vec(any::<bool>(), 3..7),
            exact in crate::collection::vec(0.0f64..1.0, 5usize),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn map_and_oneof(
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((11..25).contains(&pair));
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Config flows through; rejection via `prop_assume` retries.
        #[test]
        fn config_and_assume(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
