//! Offline shim for the subset of the `rand` 0.9 API this workspace
//! uses: `Rng::random`, `Rng::random_range`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`.
//!
//! `StdRng` is xoshiro256\*\* seeded through a SplitMix64 expansion —
//! deterministic, fast, and statistically strong enough for the
//! simulation and the Kolmogorov–Smirnov tests in `rejuv-stats`. It does
//! **not** produce the same streams as the real `rand::rngs::StdRng`
//! (ChaCha12); nothing in the workspace depends on those exact bits.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from an RNG (the shim's stand-in
/// for sampling from `StandardUniform`).
pub trait SampleStandard {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can produce a uniform sample (the shim's stand-in for
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased-enough widening multiply (Lemire reduction
                // without the rejection step; bias < 2^-64 per draw).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range.
                    return lo + rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing random-number trait.
pub trait Rng {
    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    #[inline]
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

/// Seedable construction, reduced to the one constructor the workspace
/// uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: u64 = StdRng::seed_from_u64(2).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.random_range(0..5usize)] = true;
            let x = r.random_range(10.0f64..20.0);
            assert!((10.0..20.0).contains(&x));
            let y = r.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit");
    }

    #[test]
    fn unsized_rng_is_usable_through_generics() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(9);
        let x = sample(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
