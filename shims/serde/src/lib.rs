//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's zero-copy visitor architecture, the shim models
//! serialization as conversion to and from an owned [`Value`] tree
//! (JSON-shaped). `serde_json` (the sibling shim) renders and parses
//! that tree. The derive macros come from the `serde_derive` shim and
//! generate `Serialize`/`Deserialize` impls for plain structs, tuple
//! structs and enums — `#[serde(...)]` attributes are not supported
//! (and not used anywhere in the workspace).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped owned value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object member lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Numeric equality across the integer/float variants.
fn num_eq(v: &Value, n: f64) -> bool {
    v.as_f64() == Some(n)
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        num_eq(self, f64::from(*other))
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        num_eq(self, *other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — the shim's `Deserialize` is already owned,
    /// so this is a blanket alias trait.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Serialize / Deserialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            // Non-finite floats render as null in JSON; accept them back.
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected a tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), (1, 2.5));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn value_indexing_and_eq() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Value::U64(1));
        let v = Value::Object(m);
        assert_eq!(v["a"], 1);
        assert!(v["missing"].is_null());
        assert_eq!(Value::String("x".into()), "x");
    }
}
