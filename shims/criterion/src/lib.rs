//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Measures wall-clock time with `std::time::Instant` and prints one
//! line per benchmark (mean time per iteration, plus throughput when
//! configured). There is no statistical analysis, warm-up tuning, HTML
//! report or comparison against saved baselines — the numbers are
//! indicative, not publication-grade.
//!
//! Each benchmark runs its closure repeatedly until either
//! `sample_size` samples are collected or the per-benchmark time cap
//! (~1 s) is hit, whichever comes first.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TIME_CAP: Duration = Duration::from_secs(1);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 10, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted for API parity; the
    /// shim keeps its fixed internal time cap).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-iteration work units, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures to time the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per collected sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // One untimed warm-up run.
    let mut warmup = Bencher {
        samples: Vec::new(),
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if started.elapsed() > TIME_CAP {
            break;
        }
    }
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / u32::try_from(bencher.samples.len()).unwrap_or(1);
    let mut line = format!(
        "{label:<50} {:>12.3?}/iter ({} samples)",
        mean,
        bencher.samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(" {:>12.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" {:>12.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn api_smoke() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
    }
}
