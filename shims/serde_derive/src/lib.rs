//! Offline shim derive macros for the `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the item shapes this workspace uses: structs with named fields,
//! tuple structs, unit structs, and enums with unit / tuple / struct
//! variants. Generic items and `#[serde(...)]` attributes are not
//! supported. Parsing is done directly on the token stream (no `syn`),
//! and code generation is string-based.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    data: Data,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;

    // Header: attributes and visibility, then `struct`/`enum` + name.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the bracket group (and an optional `!`).
                match tokens.peek() {
                    Some(TokenTree::Punct(b)) if b.as_char() == '!' => {
                        tokens.next();
                    }
                    _ => {}
                }
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                break;
            }
            other => panic!("serde shim derive: unexpected token {other} before struct/enum"),
        }
    }
    let kind = kind.expect("serde shim derive: no struct/enum keyword found");
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };

    let body = tokens.next();
    match body {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic items are not supported (type {name})")
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
            name,
            data: Data::UnitStruct,
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
            name,
            data: Data::TupleStruct(count_top_level_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Item {
                    name,
                    data: Data::NamedStruct(parse_named_fields(g.stream())),
                }
            } else {
                Item {
                    name,
                    data: Data::Enum(parse_variants(g.stream())),
                }
            }
        }
        other => panic!("serde shim derive: unexpected item body {other:?} for {name}"),
    }
}

/// Counts comma-separated fields at angle-bracket depth zero.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tt in stream {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        // Trailing commas don't add a field; detect via a re-scan.
        commas + 1 - usize::from(ends_with_top_level_comma(commas))
    }
}

fn ends_with_top_level_comma(_commas: usize) -> bool {
    // Conservative: struct definitions in this workspace never use
    // trailing commas in tuple field lists.
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        // Skip attributes and visibility.
        let mut name: Option<String> = None;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    tokens.next();
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    break;
                }
                other => panic!("serde shim derive: unexpected field token {other}"),
            }
        }
        let Some(name) = name else { break };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field {name}, got {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let mut name: Option<String> = None;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    tokens.next();
                }
                TokenTree::Ident(id) => {
                    name = Some(id.to_string());
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => panic!("serde shim derive: unexpected variant token {other}"),
            }
        }
        let Some(name) = name else { break };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut depth = 0i32;
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// `#[derive(Serialize)]` — conversion into `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.data {
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Data::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), {payload});\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner =
                            String::from("let mut fm = ::std::collections::BTreeMap::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

fn named_struct_ctor(path: &str, fields: &[String], source: &str) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({source}.get(\"{f}\")\
             .ok_or_else(|| ::serde::Error::custom(\
             \"missing field `{f}` for {path}\"))?)?,\n"
        ));
    }
    s.push('}');
    s
}

/// `#[derive(Deserialize)]` — conversion out of `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.data {
        Data::UnitStruct => format!(
            "match value {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::Error::custom(\
             \"expected null for unit struct {name}\")) }}"
        ),
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Data::NamedStruct(fields) => format!(
            "let m = value.as_object().ok_or_else(|| ::serde::Error::custom(\
             \"expected object for {name}\"))?;\n\
             ::std::result::Result::Ok({})",
            named_struct_ctor(name, fields, "m")
        ),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => payload_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         let fm = payload.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                         ::std::result::Result::Ok({})\n}}\n",
                        named_struct_ctor(&format!("{name}::{vname}"), fields, "fm")
                    )),
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{payload_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\")),\n}}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    code.parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
