//! Facade crate for the software-rejuvenation workspace.
//!
//! Re-exports every member crate under a stable, discoverable set of
//! module names:
//!
//! * [`detectors`] — the SRAA / SARAA / CLTA rejuvenation detectors and the
//!   static baseline (the paper's contribution),
//! * [`stats`] — online statistics, distributions, autocorrelation,
//! * [`ctmc`] — continuous-time Markov chains, uniformization, phase-type
//!   distributions (the SHARPE substitute),
//! * [`queueing`] — M/M/c analytics and the exact sample-mean density,
//! * [`sim`] — the discrete-event simulation engine,
//! * [`ecommerce`] — the DSN 2006 e-commerce system model,
//! * [`monitor`] — the online monitoring runtime (sharded detector
//!   supervision, snapshots, metrics, replayable event logs).
//!
//! # Quickstart
//!
//! ```
//! use software_rejuvenation::detectors::{Decision, RejuvenationDetector, Sraa, SraaConfig};
//!
//! // Normal behaviour: mean RT 5 s, std dev 5 s (the paper's SLA values).
//! let config = SraaConfig::builder(5.0, 5.0)
//!     .sample_size(2)
//!     .buckets(5)
//!     .depth(3)
//!     .build()?;
//! let mut detector = Sraa::new(config);
//!
//! // Feed healthy observations: never triggers.
//! for _ in 0..1_000 {
//!     assert_eq!(detector.observe(4.0), Decision::Continue);
//! }
//!
//! // A sustained right-shift eventually triggers rejuvenation.
//! let mut fired = false;
//! for _ in 0..10_000 {
//!     if detector.observe(40.0) == Decision::Rejuvenate {
//!         fired = true;
//!         break;
//!     }
//! }
//! assert!(fired);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

/// Rejuvenation detectors (re-export of `rejuv-core`).
pub mod detectors {
    pub use rejuv_core::*;
}

/// Statistics substrate (re-export of `rejuv-stats`).
pub mod stats {
    pub use rejuv_stats::*;
}

/// CTMC and phase-type machinery (re-export of `rejuv-ctmc`).
pub mod ctmc {
    pub use rejuv_ctmc::*;
}

/// M/M/c queueing analytics (re-export of `rejuv-queueing`).
pub mod queueing {
    pub use rejuv_queueing::*;
}

/// Discrete-event simulation engine (re-export of `rejuv-sim`).
pub mod sim {
    pub use rejuv_sim::*;
}

/// The e-commerce system model (re-export of `rejuv-ecommerce`).
pub mod ecommerce {
    pub use rejuv_ecommerce::*;
}

/// The online monitoring runtime (re-export of `rejuv-monitor`).
pub mod monitor {
    pub use rejuv_monitor::*;
}
