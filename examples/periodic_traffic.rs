//! Periodic traffic: the telecommunication scenario that motivated the
//! rejuvenation lineage (Avritzer & Weyuker 1997) — predictably periodic
//! load with a daily peak — driven through the e-commerce model as a
//! non-homogeneous Poisson process.
//!
//! Shows that a burst-tolerant SRAA configuration rides the daily peak
//! while still catching the soft failure that develops when the peak
//! pushes the system over the kernel-overhead knee.
//!
//! ```text
//! cargo run --release --example periodic_traffic
//! ```

use software_rejuvenation::detectors::{Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{EcommerceSystem, RateProfile, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compressed "day" of 4 000 s: base 1.0 tx/s (5 CPUs), peaking at
    // 1.8 tx/s (9 CPUs) — above the soft-failure knee — each midday.
    let day = 4_000.0;
    let profile = RateProfile::sinusoidal(1.0, 0.8, day)?;
    println!(
        "sinusoidal load: base 1.0 tx/s, peak {} tx/s, period {} s",
        profile.max_rate(),
        day
    );

    let config = SystemConfig::paper(1.0)?;
    let detector = SraaConfig::builder(5.0, 5.0)
        .sample_size(3)
        .buckets(2)
        .depth(5)
        .build()?;

    println!("\n== guarded by SRAA(3, 2, 5) — the paper's best-tradeoff configuration ==");
    println!(
        "{:>5} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "phase", "avg RT(s)", "p-max RT", "GCs", "rejuv", "lost"
    );
    let mut sys = EcommerceSystem::new(config, 77);
    sys.set_rate_profile(profile.clone());
    sys.attach_detector(Box::new(Sraa::new(detector)));

    // Walk several days in quarter-day segments.
    for segment in 0..16 {
        let m = sys.run(1_000);
        let phase = match segment % 4 {
            0 => "dawn",
            1 => "peak",
            2 => "dusk",
            _ => "night",
        };
        println!(
            "{:>5} {:>10.2} {:>10.1} {:>8} {:>8} {:>8}",
            phase,
            m.mean_response_time,
            m.max_response_time,
            m.gc_count,
            m.rejuvenation_count,
            m.lost
        );
    }

    println!("\n== same traffic, no rejuvenation ==");
    let mut bare = EcommerceSystem::new(config, 77);
    bare.set_rate_profile(profile);
    let mut worst = 0.0f64;
    for _ in 0..16 {
        let m = bare.run(1_000);
        worst = worst.max(m.mean_response_time);
    }
    println!("worst quarter-day average response time without rejuvenation: {worst:.1} s");
    println!(
        "the guarded system confines the damage of each daily peak to the peak itself;\n\
         the bare system carries the backlog from one peak into the next."
    );
    Ok(())
}
