//! Rejuvenation in a cluster — the scenario of the lineage's companion
//! paper ([2]: "Ensuring system performance for cluster and single
//! server systems").
//!
//! Four hosts behind a load balancer, each host running the §3 JVM
//! model at 9 CPUs of per-host offered load. Unlike the single-server
//! model, a rejuvenating host here is *down for 60 seconds* and the
//! balancer routes around it, so rejuvenations cost capacity, not just
//! in-flight transactions.
//!
//! ```text
//! cargo run --release --example cluster_rejuvenation
//! ```

use software_rejuvenation::detectors::{RejuvenationDetector, Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{ClusterSystem, RoutingPolicy, SystemConfig};

fn sraa_detector() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .expect("paper configuration is valid"),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = SystemConfig::paper(1.0)?;
    let hosts = 4;
    let total_lambda = hosts as f64 * 1.8; // 9 CPUs of load per host
    let transactions = 100_000;

    println!(
        "{hosts}-host cluster, total λ = {total_lambda} tx/s ({} CPUs per host), 60 s rejuvenation downtime\n",
        total_lambda / hosts as f64 / 0.2
    );

    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>10} {:>9}",
        "policy", "avg RT(s)", "loss", "rejuv", "rejected", "GCs"
    );
    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Random,
        RoutingPolicy::LeastActive,
    ] {
        let mut cluster = ClusterSystem::new(host, hosts, total_lambda, policy, 60.0, 11);
        cluster.attach_detectors(|_| sraa_detector());
        let m = cluster.run(transactions);
        println!(
            "{:<14} {:>10.2} {:>10.4} {:>8} {:>10} {:>9}",
            format!("{policy:?}"),
            m.aggregate.mean_response_time,
            m.aggregate.loss_fraction(),
            m.aggregate.rejuvenation_count,
            m.rejected_no_host,
            m.aggregate.gc_count
        );
    }

    // Control: the same cluster with no detectors.
    let mut bare = ClusterSystem::new(
        host,
        hosts,
        total_lambda,
        RoutingPolicy::RoundRobin,
        60.0,
        11,
    );
    let m = bare.run(transactions);
    println!(
        "{:<14} {:>10.2} {:>10.4} {:>8} {:>10} {:>9}",
        "none",
        m.aggregate.mean_response_time,
        m.aggregate.loss_fraction(),
        m.aggregate.rejuvenation_count,
        m.rejected_no_host,
        m.aggregate.gc_count
    );

    println!(
        "\nper-host monitoring keeps every routing policy responsive; without it the\n\
         whole cluster ages in lock-step and the balancer has nowhere to hide."
    );
    Ok(())
}
