//! Quickstart: monitor a synthetic response-time stream with SRAA.
//!
//! Demonstrates the core API without any simulation machinery: build a
//! detector, feed it observations, and act on its decisions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use software_rejuvenation::detectors::{Decision, RejuvenationDetector, Sraa, SraaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service-level baseline: under normal behaviour the response time
    // has mean 5 s and standard deviation 5 s (the paper's e-commerce
    // system).
    let config = SraaConfig::builder(5.0, 5.0)
        .sample_size(2)
        .buckets(5)
        .depth(3)
        .build()?;
    let mut detector = Sraa::new(config);

    println!(
        "SRAA detector: n = 2, K = 5, D = 3 (n*K*D = {})",
        detector.config().nkd()
    );
    println!("bucket N target values: µX + N·σX = 5, 10, 15, 20, 25\n");

    // Phase 1: healthy traffic. A deterministic sawtooth around the mean
    // keeps the first bucket hovering near empty.
    let mut fired_during_health = false;
    for i in 0..10_000 {
        let rt = 3.0 + (i % 5) as f64; // 3..7 s, mean 5
        if detector.observe(rt) == Decision::Rejuvenate {
            fired_during_health = true;
        }
    }
    println!(
        "after 10,000 healthy observations: bucket N = {}, count d = {}, rejuvenations = {}",
        detector.bucket(),
        detector.count(),
        detector.rejuvenation_count()
    );
    assert!(
        !fired_during_health,
        "no false alarm expected on healthy traffic"
    );

    // Phase 2: a short burst — twenty observations at 4x the mean.
    // Averaging and the bucket chain absorb it.
    for _ in 0..20 {
        assert_eq!(detector.observe(20.0), Decision::Continue);
    }
    println!(
        "after a 20-observation burst at 20 s: bucket N = {}, count d = {} (no rejuvenation)",
        detector.bucket(),
        detector.count()
    );

    // Let the detector recover on healthy traffic.
    for _ in 0..200 {
        detector.observe(4.0);
    }

    // Phase 3: sustained degradation — the distribution has shifted far
    // to the right. The detector must fire, and quickly.
    let mut observations_until_trigger = 0u32;
    loop {
        observations_until_trigger += 1;
        if detector.observe(45.0) == Decision::Rejuvenate {
            break;
        }
        assert!(
            observations_until_trigger < 10_000,
            "detector failed to fire under sustained degradation"
        );
    }
    println!(
        "\nsustained degradation at 45 s: rejuvenation triggered after {} observations",
        observations_until_trigger
    );
    println!("total rejuvenations: {}", detector.rejuvenation_count());

    Ok(())
}
