//! Adaptive monitoring: commissioning a detector without SLA numbers.
//!
//! The paper assumes the service-level agreement supplies the baseline
//! `(µX, σX)`; its conclusion proposes estimating parameters online.
//! This example wires the [`Calibrating`] adaptor (learn the baseline
//! from the live system) and the [`Cooldown`] adaptor (bound the
//! rejuvenation frequency) around SRAA and runs the full e-commerce
//! model at a high load.
//!
//! ```text
//! cargo run --release --example adaptive_monitoring
//! ```

use software_rejuvenation::detectors::{Calibrating, Cooldown, Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{EcommerceSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Commissioning happens during a healthy traffic window (4 CPUs of
    // load); production then ramps to 8.5 CPUs, past the soft-failure
    // knee. Calibrating *during* an overload would poison the baseline —
    // which is exactly why the estimator trims the upper tail and why
    // operators calibrate off-peak.
    let calm = SystemConfig::paper_at_load(4.0)?;
    println!("commissioning at 4 CPUs of load; no SLA baseline given");

    // Learn (µX, σX) from the first 5 000 transactions with a 3σ outlier
    // trim, then run SRAA(2, 5, 3) on the learned baseline, capped at
    // one rejuvenation per 200 observations.
    let calibrated = Calibrating::new(5_000, 3.0, |mu, sigma| {
        println!("  learned baseline: µX = {mu:.2} s, σX = {sigma:.2} s (SLA values are 5/5)");
        Sraa::new(
            SraaConfig::builder(mu, sigma)
                .sample_size(2)
                .buckets(5)
                .depth(3)
                .build()
                .expect("learned baseline is finite"),
        )
    });
    let guarded = Cooldown::new(calibrated, 200);

    let mut sys = EcommerceSystem::new(calm, 4242);
    sys.attach_detector(Box::new(guarded));
    let calib = sys.run(6_000);
    println!(
        "calibration window done: RT {:.2} s, {} rejuvenations\n",
        calib.mean_response_time, calib.rejuvenation_count
    );

    println!("ramping load to 8.5 CPUs; monitoring timeline:");
    sys.set_arrival_rate(8.5 * 0.2)?;
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>8}",
        "segment", "avg RT(s)", "GCs", "rejuv", "lost"
    );
    let mut totals = (0u64, 0u64);
    let mut weighted_rt = 0.0;
    let mut completed = 0u64;
    for segment in 0..10 {
        let m = sys.run(10_000);
        totals.0 += m.rejuvenation_count;
        totals.1 += m.lost;
        weighted_rt += m.mean_response_time * m.completed as f64;
        completed += m.completed;
        println!(
            "{:>8} {:>10.2} {:>8} {:>8} {:>8}",
            segment, m.mean_response_time, m.gc_count, m.rejuvenation_count, m.lost
        );
    }
    println!(
        "\nself-calibrated: RT {:.2} s, {} rejuvenations, {} lost over 100,000 processed",
        weighted_rt / completed as f64,
        totals.0,
        totals.1
    );

    // Reference run with the known SLA baseline for comparison.
    let mut reference = EcommerceSystem::new(SystemConfig::paper_at_load(8.5)?, 4242);
    reference.attach_detector(Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()?,
    )));
    let ref_m = reference.run(100_000);
    println!(
        "SLA-configured:  RT {:.2} s, {} rejuvenations, {} lost",
        ref_m.mean_response_time, ref_m.rejuvenation_count, ref_m.lost
    );
    Ok(())
}
