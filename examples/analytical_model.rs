//! The §4.1 analytical pipeline end to end: M/M/16 response-time
//! moments, the exact density of the sample mean X̄n from the Fig. 4
//! CTMC, the quality of the CLT normal approximation, and the tail
//! masses behind the CLTA false-alarm discussion.
//!
//! ```text
//! cargo run --release --example analytical_model
//! ```

use software_rejuvenation::detectors::analysis::{
    clta_expected_windows, expected_windows_to_trigger, windows_to_observations,
};
use software_rejuvenation::queueing::{MmcQueue, SampleMean};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's maximum load of interest: λ = 1.6 tx/s on M/M/16.
    let queue = MmcQueue::paper_system(1.6)?;
    let rt = queue.response_time()?;

    println!(
        "M/M/16 with µ = 0.2 tx/s, λ = 1.6 tx/s (ρ = {:.2})",
        queue.rho()
    );
    println!("  Wc (no-wait probability, eq. 1) = {:.6}", rt.wc());
    println!("  E[Xi]  (eq. 2) = {:.4} s", rt.mean());
    println!("  sd[Xi] (eq. 3) = {:.4} s", rt.std_dev());
    println!(
        "  95th / 97.5th / 99th percentile = {:.2} / {:.2} / {:.2} s",
        rt.quantile(0.95)?,
        rt.quantile(0.975)?,
        rt.quantile(0.99)?
    );

    // Low-load check: below λ = 1 tx/s the RT is essentially Exp(0.2).
    println!("\nbaseline across loads (the µX = σX = 5 justification):");
    println!("  {:>6} {:>10} {:>10}", "λ", "E[Xi]", "sd[Xi]");
    for lambda in [0.2, 0.6, 1.0, 1.4, 1.6, 2.4, 3.0] {
        let r = MmcQueue::paper_system(lambda)?.response_time()?;
        println!("  {:>6.1} {:>10.4} {:>10.4}", lambda, r.mean(), r.std_dev());
    }

    // Fig. 5: how fast does the density of X̄n approach the normal?
    println!("\nFig. 5 reproduction — exact density of X̄n vs N(µX, σX²/n):");
    println!(
        "  {:>4} {:>22} {:>26}",
        "n", "max |F_exact − F_norm|", "tail mass beyond z₀.₉₇₅"
    );
    for n in [1usize, 5, 15, 30] {
        let sm = SampleMean::new(&rt, n)?;
        let distance = sm.normal_approximation_distance(201)?;
        let tail = sm.tail_mass_beyond_normal_quantile(0.975)?;
        println!("  {:>4} {:>22.4} {:>25.2}%", n, distance, tail * 100.0);
    }
    println!(
        "\npaper values: tail mass 3.69% at n = 15 and 3.37% at n = 30\n\
         (so CLTA's real false-alarm rate exceeds the nominal 2.5%)."
    );

    // A slice of the n = 30 density, exact vs normal.
    let sm = SampleMean::new(&rt, 30)?;
    println!("\nexact vs normal density of X̄₃₀ (x, f_exact, f_normal):");
    for point in sm.density_comparison(3.0, 8.0, 11)? {
        println!(
            "  {:>5.1} {:>10.5} {:>10.5}",
            point.x, point.exact, point.normal
        );
    }

    // Average run length: how often does each configuration false-alarm
    // on a *healthy* system at the maximum load of interest? Exact, via
    // the birth-death linearization of the bucket chain fed with exact
    // tail probabilities from the Fig. 4 CTMC.
    println!("\nhealthy-system false-alarm interval (ARL₀ in observations, λ = 1.6):");
    println!("  {:<22} {:>16}", "configuration", "observations");
    for (n, k, d) in [
        (15usize, 1usize, 1u32),
        (3, 1, 5),
        (3, 5, 1),
        (2, 5, 3),
        (3, 2, 5),
    ] {
        let sm_n = SampleMean::new(&rt, n)?;
        let probs: Vec<f64> = (0..k)
            .map(|b| {
                Ok::<_, Box<dyn std::error::Error>>(1.0 - sm_n.exact().cdf(5.0 + b as f64 * 5.0)?)
            })
            .collect::<Result<_, _>>()?;
        let windows = expected_windows_to_trigger(&probs, k, d)?;
        let obs = windows_to_observations(windows, n);
        let shown = if obs.is_finite() && obs < 1e12 {
            format!("{obs:.0}")
        } else {
            "≈ ∞".to_string()
        };
        println!("  SRAA(n={n:<2} K={k:<2} D={d:<2})  {shown:>16}");
    }
    let tail30 = SampleMean::new(&rt, 30)?.tail_mass_beyond_normal_quantile(0.975)?;
    let clta_obs = windows_to_observations(clta_expected_windows(tail30)?, 30);
    println!("  CLTA(n=30, N=1.96)    {clta_obs:>16.0}");
    println!(
        "\nreading: K = 1 configurations false-alarm every few hundred observations\n\
         (their Fig. 10 low-load loss); one extra bucket pushes the interval beyond\n\
         any practical horizon, which is why K > 1 loses nothing at low loads."
    );

    Ok(())
}
