//! Head-to-head comparison of SRAA, SARAA, CLTA and the static baseline
//! on the full e-commerce model — a miniature of the paper's Fig. 16.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use software_rejuvenation::detectors::{
    Clta, CltaConfig, RejuvenationDetector, Saraa, SaraaConfig, Sraa, SraaConfig,
    StaticRejuvenation,
};
use software_rejuvenation::ecommerce::{Runner, SystemConfig};

type Factory<'a> = &'a (dyn Fn() -> Option<Box<dyn RejuvenationDetector>> + Sync);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smaller than the paper's 5 x 100k protocol so the example finishes
    // in seconds; the benches run the full scale.
    let runner = Runner::new(3, 20_000, 7);
    let loads = [0.5, 5.0, 9.0];
    let base = SystemConfig::paper_at_load(1.0)?;

    let sraa_cfg = SraaConfig::builder(5.0, 5.0)
        .sample_size(2)
        .buckets(5)
        .depth(3)
        .build()?;
    let saraa_cfg = SaraaConfig::builder(5.0, 5.0)
        .initial_sample_size(2)
        .buckets(5)
        .depth(3)
        .build()?;
    let clta_cfg = CltaConfig::builder(5.0, 5.0)
        .sample_size(30)
        .quantile_factor(1.96)
        .build()?;

    let none: Factory<'_> = &|| None;
    let sraa: Factory<'_> = &move || Some(Box::new(Sraa::new(sraa_cfg)));
    let saraa: Factory<'_> = &move || Some(Box::new(Saraa::new(saraa_cfg)));
    let clta: Factory<'_> = &move || Some(Box::new(Clta::new(clta_cfg)));
    let static_alg: Factory<'_> = &|| {
        Some(Box::new(
            StaticRejuvenation::new(5.0, 5.0, 5, 3).expect("valid baseline parameters"),
        ))
    };

    let contenders: [(&str, Factory<'_>); 5] = [
        ("none", none),
        ("Static(K=5,D=3)", static_alg),
        ("SRAA(2,5,3)", sraa),
        ("SARAA(2,5,3)", saraa),
        ("CLTA(30,N=1.96)", clta),
    ];

    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>8}",
        "algorithm", "load", "avg RT (s)", "loss frac", "rejuv"
    );
    for (name, factory) in contenders {
        let sweep = runner.load_sweep(&base, &loads, factory);
        for point in &sweep {
            println!(
                "{:<18} {:>6.1} {:>12.3} {:>12.6} {:>8.1}",
                name,
                point.load_cpus,
                point.result.mean_response_time(),
                point.result.mean_loss_fraction(),
                point.result.rejuvenations.mean()
            );
        }
        println!();
    }

    println!(
        "expected shape (paper §5.6): at high load the bare system is slowest;\n\
         SARAA beats SRAA, both beat CLTA; at low load CLTA loses measurably\n\
         more transactions than the bucketed algorithms."
    );
    Ok(())
}
