//! Soft-failure walkthrough on the full §3 e-commerce model.
//!
//! Runs the 16-CPU JVM system at a high offered load (9 CPUs) twice —
//! once bare and once guarded by an SRAA detector — and prints a
//! timeline showing how garbage-collection pauses push the system into
//! the kernel-overhead regime (> 50 active threads, service time x2),
//! and how rejuvenation restores capacity at the price of lost
//! transactions.
//!
//! ```text
//! cargo run --release --example ecommerce_soft_failure
//! ```

use software_rejuvenation::detectors::{Sraa, SraaConfig};
use software_rejuvenation::ecommerce::{EcommerceSystem, SystemConfig};

const SEGMENTS: usize = 10;
const TX_PER_SEGMENT: u64 = 5_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let load_cpus = 9.0;
    let config = SystemConfig::paper_at_load(load_cpus)?;
    println!(
        "e-commerce system: {} CPUs, µ = {} tx/s, offered load {} CPUs (λ = {} tx/s)",
        config.cpus(),
        config.service_rate(),
        load_cpus,
        config.arrival_rate()
    );
    println!(
        "heap 3 GB, 10 MB/tx, GC when free < 100 MB (60 s pause), kernel x2 above 50 threads\n"
    );

    // --- Run 1: no rejuvenation. -------------------------------------
    println!("== without rejuvenation ==");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>10}",
        "segment", "avg RT(s)", "max RT", "GCs", "active thr"
    );
    let mut bare = EcommerceSystem::new(config, 2024);
    for segment in 0..SEGMENTS {
        let m = bare.run(TX_PER_SEGMENT);
        println!(
            "{:>8} {:>10.2} {:>8.1} {:>8} {:>10}",
            segment,
            m.mean_response_time,
            m.max_response_time,
            m.gc_count,
            bare.active_threads()
        );
    }

    // --- Run 2: SRAA-guarded. ----------------------------------------
    let detector_cfg = SraaConfig::builder(5.0, 5.0)
        .sample_size(3)
        .buckets(2)
        .depth(5)
        .build()?;
    println!("\n== with SRAA (n = 3, K = 2, D = 5) ==");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "segment", "avg RT(s)", "max RT", "GCs", "rejuv", "lost"
    );
    let mut guarded = EcommerceSystem::new(config, 2024);
    guarded.attach_detector(Box::new(Sraa::new(detector_cfg)));
    let mut total_lost = 0u64;
    let mut total_done = 0u64;
    let mut weighted_rt = 0.0;
    for segment in 0..SEGMENTS {
        let m = guarded.run(TX_PER_SEGMENT);
        total_lost += m.lost;
        total_done += m.completed;
        weighted_rt += m.mean_response_time * m.completed as f64;
        println!(
            "{:>8} {:>10.2} {:>8.1} {:>8} {:>8} {:>9}",
            segment,
            m.mean_response_time,
            m.max_response_time,
            m.gc_count,
            m.rejuvenation_count,
            m.lost
        );
    }

    let guarded_rt = weighted_rt / total_done as f64;
    println!(
        "\nsummary: guarded mean RT = {:.2} s, loss fraction = {:.4} ({} of {} transactions)",
        guarded_rt,
        total_lost as f64 / (total_done + total_lost) as f64,
        total_lost,
        total_done + total_lost
    );

    // --- Root-cause trace: replay the first soft failure. ------------
    println!("\n== anatomy of a soft failure (event trace, first 2,500 transactions) ==");
    let mut traced = EcommerceSystem::new(config, 2024);
    traced.enable_trace(64);
    traced.run(2_500);
    let trace = traced.take_trace().expect("trace was enabled");
    for event in trace.events().take(14) {
        use software_rejuvenation::ecommerce::trace::SystemEvent;
        match event {
            SystemEvent::GcStarted { at, heap_used_mb } => {
                println!("  t = {at:>8.1}s  GC starts (heap {heap_used_mb:.0} MB used)")
            }
            SystemEvent::GcEnded { at, reclaimed_mb } => {
                println!("  t = {at:>8.1}s  GC ends   (reclaimed {reclaimed_mb:.0} MB)")
            }
            SystemEvent::OverheadEntered { at, active_threads } => println!(
                "  t = {at:>8.1}s  >>> {active_threads} active threads: kernel x2 regime entered"
            ),
            SystemEvent::OverheadLeft { at, active_threads } => println!(
                "  t = {at:>8.1}s  <<< back to {active_threads} active threads: overhead cleared"
            ),
            SystemEvent::Rejuvenated { at, lost } => {
                println!("  t = {at:>8.1}s  REJUVENATION ({lost} transactions terminated)")
            }
        }
    }
    let counters = trace.counters();
    println!(
        "  … lifetime: {} GCs, {} overhead entries",
        counters.gc_started, counters.overhead_entered
    );
    println!(
        "\nthe trace shows the causal chain the paper describes: a GC pause backs\n\
         traffic up past 50 threads, the x2 kernel overhead halves capacity below\n\
         the arrival rate, and the system stays degraded until rejuvenated."
    );

    Ok(())
}
