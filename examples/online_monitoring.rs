//! Online monitoring runtime end to end: supervise a 4-host fleet with
//! SRAA detectors, checkpoint a detector mid-epidemic, record a JSONL
//! event log, and replay it to prove the run is exactly reproducible.
//!
//! Run with: `cargo run --release --example online_monitoring`

use software_rejuvenation::detectors::{RejuvenationDetector, Sraa, SraaConfig};
use software_rejuvenation::monitor::{
    read_events, replay_events, EventLog, MonitorEvent, SharedBuffer, Supervisor, SupervisorConfig,
};

fn detector() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .expect("valid config"),
    ))
}

/// Host 2's stream degrades halfway through; the others stay healthy.
fn response_time(host: usize, i: u64) -> f64 {
    if host == 2 && i >= 500 {
        35.0 + (i % 5) as f64
    } else {
        3.0 + (i % 6) as f64 * 0.6
    }
}

fn main() {
    let config = SupervisorConfig {
        snapshot_every: Some(400),
        ..SupervisorConfig::default()
    };
    let hosts = 4;
    let log_buffer = SharedBuffer::new();

    let mut supervisor = Supervisor::with_shards(config, hosts, |_| detector());
    supervisor.set_log(EventLog::new(Box::new(log_buffer.clone())));

    // Producers push through cloneable senders; a real deployment would
    // do this from the request path of each host.
    let senders: Vec<_> = (0..hosts).map(|h| supervisor.sender(h)).collect();
    for i in 0..1_500u64 {
        for (host, sender) in senders.iter().enumerate() {
            sender.send(response_time(host, i));
        }
        // Drain periodically, as a monitoring loop would.
        if i % 64 == 0 {
            supervisor.poll_all().expect("drain");
        }
    }
    while supervisor.poll_all().expect("drain") > 0 {}

    let report = supervisor.report();
    println!(
        "live: {} observations across {} hosts, {} rejuvenations",
        report.total_processed, hosts, report.total_rejuvenations
    );
    for shard in &report.shards {
        println!(
            "  host {}: {} processed, {} rejuvenations, digest {}",
            shard.shard, shard.processed, shard.rejuvenations, shard.digest
        );
    }
    assert!(report.shards[2].rejuvenations > 0, "host 2 degraded");

    // Checkpoint: the complete supervisor state (detector internals,
    // counters, metrics) serialises to JSON and restores into a fresh
    // supervisor that continues behaviour-identically.
    let checkpoint = supervisor.snapshot().expect("SRAA supports snapshots");
    let as_json = serde_json::to_string(&checkpoint).expect("serialise checkpoint");
    println!("checkpoint: {} bytes of JSON", as_json.len());
    let mut resumed = Supervisor::with_shards(config, hosts, |_| detector());
    resumed
        .restore(&serde_json::from_str(&as_json).expect("parse checkpoint"))
        .expect("restore checkpoint");
    assert_eq!(resumed.report(), supervisor.report());

    // Replay: the recorded event log re-ingested through fresh
    // detectors reproduces every decision and the full report.
    supervisor
        .take_log()
        .expect("log attached")
        .flush()
        .expect("flush");
    let events = read_events(std::io::Cursor::new(log_buffer.contents())).expect("parse log");
    let batches = events
        .iter()
        .filter(|e| matches!(e, MonitorEvent::Batch { .. }))
        .count();
    let replayed = replay_events(&events, config, hosts, |_| detector()).expect("replay");
    assert_eq!(replayed.report(), report);
    println!("replayed {batches} recorded batches: report is byte-identical");
}
