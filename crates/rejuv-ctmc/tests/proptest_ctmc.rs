//! Property-based tests for the CTMC and phase-type machinery.

use proptest::prelude::*;
use rejuv_ctmc::{AbsorptionTimes, Ctmc, PhaseType, TransientSolver};

/// Strategy: a random birth-chain-with-shortcuts absorbing CTMC of
/// 2–8 states where state `n − 1` is absorbing and every state can
/// reach it.
fn absorbing_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..8, proptest::collection::vec(0.01f64..20.0, 7 * 7)).prop_map(|(n, rates)| {
        let mut c = Ctmc::new(n);
        let mut idx = 0;
        for i in 0..n - 1 {
            // Guaranteed forward edge keeps absorption reachable.
            c.add_transition(i, i + 1, rates[idx % rates.len()])
                .unwrap();
            idx += 1;
            // Optional extra edge to a random other state.
            let j = (i + 1 + (idx * 7) % (n - i)) % n;
            if j != i {
                let r = rates[idx % rates.len()];
                if idx % 3 == 0 {
                    c.add_transition(i, j, r).unwrap();
                }
            }
            idx += 1;
        }
        c
    })
}

fn positive_rates(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..50.0, 1..max_len)
}

proptest! {
    /// Uniformization conserves probability mass and non-negativity for
    /// arbitrary chains and times.
    #[test]
    fn transient_solution_is_stochastic(ctmc in absorbing_chain(), t in 0.0f64..50.0) {
        let n = ctmc.states();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let p = TransientSolver::default().solve(&ctmc, &p0, t).unwrap();
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        prop_assert!(p.iter().all(|&x| x >= -1e-15));
    }

    /// Chapman–Kolmogorov: solving to `t1 + t2` equals solving to `t1`
    /// and restarting for `t2`.
    #[test]
    fn chapman_kolmogorov(ctmc in absorbing_chain(), t1 in 0.0f64..10.0, t2 in 0.0f64..10.0) {
        let n = ctmc.states();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let solver = TransientSolver::default();
        let direct = solver.solve(&ctmc, &p0, t1 + t2).unwrap();
        let mid = solver.solve(&ctmc, &p0, t1).unwrap();
        let two_step = solver.solve(&ctmc, &mid, t2).unwrap();
        for (a, b) in direct.iter().zip(&two_step) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    /// The absorption CDF is monotone non-decreasing and approaches 1.
    #[test]
    fn absorption_cdf_monotone(ctmc in absorbing_chain()) {
        let n = ctmc.states();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let at = AbsorptionTimes::new(ctmc, p0).unwrap();
        let mut last = -1e-12;
        for i in 0..30 {
            let t = i as f64 * 0.5;
            let c = at.cdf(t).unwrap();
            prop_assert!(c >= last - 1e-10);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            last = c;
        }
    }

    /// Moment identities against the known hypoexponential closed forms.
    #[test]
    fn hypoexp_moments_closed_form(rates in positive_rates(6)) {
        let ph = PhaseType::hypoexponential(&rates).unwrap();
        let mean: f64 = rates.iter().map(|r| 1.0 / r).sum();
        let var: f64 = rates.iter().map(|r| 1.0 / (r * r)).sum();
        prop_assert!((ph.mean().unwrap() - mean).abs() < 1e-8 * (1.0 + mean));
        prop_assert!((ph.variance().unwrap() - var).abs() < 1e-8 * (1.0 + var));
    }

    /// Convolution adds means and variances for arbitrary stage sets.
    #[test]
    fn convolution_adds_moments(a in positive_rates(4), b in positive_rates(4)) {
        let x = PhaseType::hypoexponential(&a).unwrap();
        let y = PhaseType::hypoexponential(&b).unwrap();
        let c = x.convolve(&y);
        let mean = x.mean().unwrap() + y.mean().unwrap();
        let var = x.variance().unwrap() + y.variance().unwrap();
        prop_assert!((c.mean().unwrap() - mean).abs() < 1e-7 * (1.0 + mean));
        prop_assert!((c.variance().unwrap() - var).abs() < 1e-7 * (1.0 + var));
    }

    /// Mixture mean is the weighted mean of component means.
    #[test]
    fn mixture_mean_is_weighted(
        r1 in 0.05f64..20.0,
        r2 in 0.05f64..20.0,
        w in 0.0f64..=1.0,
    ) {
        let a = PhaseType::exponential(r1).unwrap();
        let b = PhaseType::exponential(r2).unwrap();
        let mix = PhaseType::mixture(&[w, 1.0 - w], &[a, b]).unwrap();
        let expected = w / r1 + (1.0 - w) / r2;
        prop_assert!((mix.mean().unwrap() - expected).abs() < 1e-9 * (1.0 + expected));
    }

    /// Scaling by r divides the mean by r and the variance by r².
    #[test]
    fn scaling_laws(rates in positive_rates(4), r in 0.1f64..100.0) {
        let ph = PhaseType::hypoexponential(&rates).unwrap();
        let scaled = ph.scaled_by(r).unwrap();
        prop_assert!(
            (scaled.mean().unwrap() - ph.mean().unwrap() / r).abs()
                < 1e-8 * (1.0 + ph.mean().unwrap())
        );
        prop_assert!(
            (scaled.variance().unwrap() - ph.variance().unwrap() / (r * r)).abs()
                < 1e-8 * (1.0 + ph.variance().unwrap())
        );
    }

    /// The absorption-time view of a PH agrees with its closed-form
    /// moments (CTMC path = linear-algebra path).
    #[test]
    fn absorption_times_agree_with_ph_moments(rates in positive_rates(5)) {
        let ph = PhaseType::hypoexponential(&rates).unwrap();
        let at = ph.to_absorption_times().unwrap();
        prop_assert!((at.mean().unwrap() - ph.mean().unwrap()).abs() < 1e-8);
        prop_assert!((at.variance().unwrap() - ph.variance().unwrap()).abs() < 1e-7);
    }

    /// Quantile inverts the absorption CDF.
    #[test]
    fn absorption_quantile_inverts_cdf(rates in positive_rates(4), p in 0.01f64..0.99) {
        let ph = PhaseType::hypoexponential(&rates).unwrap();
        let at = ph.to_absorption_times().unwrap();
        let t = at.quantile(p).unwrap();
        prop_assert!((at.cdf(t).unwrap() - p).abs() < 1e-6);
    }
}
