//! Steady-state distributions of irreducible CTMCs.
//!
//! Solves the global balance equations `π Q = 0`, `Σ πᵢ = 1` by dense
//! LU factorization (replacing one redundant balance equation with the
//! normalization constraint). Chains in this workspace have at most a
//! few hundred states, so the dense path is simple and fast.

use crate::linalg::solve_dense;
use crate::{Ctmc, CtmcError};

/// Computes the steady-state probability vector of `ctmc`.
///
/// The chain must be irreducible (a single closed communicating class
/// covering all states); chains with absorbing states or multiple
/// recurrent classes make the balance system singular or produce a
/// vector with negative entries, both reported as errors.
///
/// # Errors
///
/// * [`CtmcError::NoAbsorbingState`] is **not** used here — instead:
/// * [`CtmcError::Singular`] if the balance system is singular
///   (reducible chain), and
/// * [`CtmcError::InvalidInitialDistribution`] if the solution is not a
///   probability vector (multiple recurrent classes).
///
/// # Example
///
/// ```
/// use rejuv_ctmc::{steady_state, Ctmc};
///
/// // Two-state chain 0 <-> 1 with rates 1 and 2: π = (2/3, 1/3).
/// let mut c = Ctmc::new(2);
/// c.add_transition(0, 1, 1.0)?;
/// c.add_transition(1, 0, 2.0)?;
/// let pi = steady_state(&c)?;
/// assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), rejuv_ctmc::CtmcError>(())
/// ```
pub fn steady_state(ctmc: &Ctmc) -> Result<Vec<f64>, CtmcError> {
    let n = ctmc.states();
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Build Qᵀ with the last row replaced by the normalization 1ᵀ.
    // Row i of the system (i < n−1): Σ_j π_j q_{ji} = 0.
    let mut a = vec![vec![0.0; n]; n];
    for (i, row) in a.iter_mut().enumerate().take(n - 1) {
        row[i] = -ctmc.exit_rate(i);
    }
    // Indexing two coordinates of `a` at once; an iterator form would
    // obscure the transposition.
    #[allow(clippy::needless_range_loop)]
    for from in 0..n {
        for &(to, rate) in ctmc.outgoing(from) {
            if to < n - 1 {
                a[to][from] += rate;
            }
        }
    }
    for v in a[n - 1].iter_mut() {
        *v = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;

    let pi = solve_dense(a, b)?;
    if pi.iter().any(|&p| !(p.is_finite() && p >= -1e-9)) {
        return Err(CtmcError::InvalidInitialDistribution(
            "steady-state solution is not a probability vector (chain not irreducible?)".into(),
        ));
    }
    Ok(pi.into_iter().map(|p| p.max(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_state() {
        let c = Ctmc::new(1);
        assert_eq!(steady_state(&c).unwrap(), vec![1.0]);
    }

    #[test]
    fn two_state_closed_form() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 3.0).unwrap();
        c.add_transition(1, 0, 1.0).unwrap();
        let pi = steady_state(&c).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-12);
        assert!((pi[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn birth_death_matches_detailed_balance() {
        // M/M/1/5: birth rate 2, death rate 3 -> pi_k proportional to (2/3)^k.
        let mut c = Ctmc::new(6);
        for k in 0..5 {
            c.add_transition(k, k + 1, 2.0).unwrap();
            c.add_transition(k + 1, k, 3.0).unwrap();
        }
        let pi = steady_state(&c).unwrap();
        let rho: f64 = 2.0 / 3.0;
        let norm: f64 = (0..6).map(|k| rho.powi(k)).sum();
        for (k, &p) in pi.iter().enumerate() {
            let expected = rho.powi(k as i32) / norm;
            assert!((p - expected).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn agrees_with_long_run_transient() {
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 2, 2.0).unwrap();
        c.add_transition(2, 0, 0.5).unwrap();
        c.add_transition(1, 0, 0.3).unwrap();
        let pi = steady_state(&c).unwrap();
        let p_inf = crate::TransientSolver::default()
            .solve(&c, &[1.0, 0.0, 0.0], 500.0)
            .unwrap();
        for (a, b) in pi.iter().zip(&p_inf) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn absorbing_chain_is_rejected() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).unwrap();
        // State 1 absorbing: solution concentrates there, which is fine
        // mathematically, but the balance system is singular for the
        // reducible direction; accept either error or the point mass.
        match steady_state(&c) {
            Ok(pi) => {
                assert!((pi[1] - 1.0).abs() < 1e-9);
                assert!(pi[0].abs() < 1e-9);
            }
            Err(e) => {
                assert!(matches!(
                    e,
                    CtmcError::Singular | CtmcError::InvalidInitialDistribution(_)
                ));
            }
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut c = Ctmc::new(5);
        for i in 0..5usize {
            for j in 0..5usize {
                if i != j {
                    c.add_transition(i, j, 0.3 + (i * 5 + j) as f64 * 0.1)
                        .unwrap();
                }
            }
        }
        let pi = steady_state(&c).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
    }
}
