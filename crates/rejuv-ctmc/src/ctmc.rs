//! Sparse continuous-time Markov chain representation.

use crate::CtmcError;
use serde::{Deserialize, Serialize};

/// A continuous-time Markov chain held as a sparse list of transitions.
///
/// States are indexed `0..states`. The generator matrix `Q` is implied:
/// off-diagonal entries are the transition rates added with
/// [`Ctmc::add_transition`], diagonal entries are the negated exit rates.
///
/// # Example
///
/// ```
/// use rejuv_ctmc::Ctmc;
///
/// // Birth-death M/M/1-like fragment on 3 states.
/// let mut c = Ctmc::new(3);
/// c.add_transition(0, 1, 2.0)?;
/// c.add_transition(1, 0, 1.0)?;
/// c.add_transition(1, 2, 2.0)?;
/// assert_eq!(c.exit_rate(1), 3.0);
/// assert!(c.is_absorbing(2));
/// # Ok::<(), rejuv_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctmc {
    states: usize,
    /// Outgoing transitions per state: `(target, rate)`.
    outgoing: Vec<Vec<(usize, f64)>>,
    /// Cached exit rate per state.
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Creates a chain with `states` states and no transitions.
    ///
    /// # Panics
    ///
    /// Panics if `states == 0`; an empty chain has no meaning.
    pub fn new(states: usize) -> Self {
        assert!(states > 0, "a CTMC needs at least one state");
        Ctmc {
            states,
            outgoing: vec![Vec::new(); states],
            exit_rates: vec![0.0; states],
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Total number of transitions.
    pub fn transitions(&self) -> usize {
        self.outgoing.iter().map(Vec::len).sum()
    }

    /// Adds a transition `from → to` with the given positive rate.
    ///
    /// Parallel transitions between the same pair of states are merged by
    /// adding their rates.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::StateOutOfRange`] if either index is invalid,
    /// * [`CtmcError::SelfLoop`] if `from == to`,
    /// * [`CtmcError::InvalidRate`] unless `rate` is positive and finite.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) -> Result<(), CtmcError> {
        if from >= self.states {
            return Err(CtmcError::StateOutOfRange {
                state: from,
                states: self.states,
            });
        }
        if to >= self.states {
            return Err(CtmcError::StateOutOfRange {
                state: to,
                states: self.states,
            });
        }
        if from == to {
            return Err(CtmcError::SelfLoop(from));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CtmcError::InvalidRate(rate));
        }
        if let Some(entry) = self.outgoing[from].iter_mut().find(|(t, _)| *t == to) {
            entry.1 += rate;
        } else {
            self.outgoing[from].push((to, rate));
        }
        self.exit_rates[from] += rate;
        Ok(())
    }

    /// Outgoing transitions of `state` as `(target, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn outgoing(&self, state: usize) -> &[(usize, f64)] {
        &self.outgoing[state]
    }

    /// Exit rate (sum of outgoing rates) of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit_rates[state]
    }

    /// Largest exit rate over all states — the uniformization constant.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Returns `true` if `state` has no outgoing transitions.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_absorbing(&self, state: usize) -> bool {
        self.outgoing[state].is_empty()
    }

    /// Indices of all absorbing states.
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.states).filter(|&s| self.is_absorbing(s)).collect()
    }

    /// Validates an initial probability vector against this chain.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidInitialDistribution`] if the length is
    /// wrong, any entry is negative or non-finite, or the entries do not
    /// sum to 1 within `1e-9`.
    pub fn validate_initial(&self, p0: &[f64]) -> Result<(), CtmcError> {
        if p0.len() != self.states {
            return Err(CtmcError::InvalidInitialDistribution(format!(
                "length {} does not match {} states",
                p0.len(),
                self.states
            )));
        }
        let mut sum = 0.0;
        for &p in p0 {
            if !(p.is_finite() && p >= 0.0) {
                return Err(CtmcError::InvalidInitialDistribution(format!(
                    "entry {p} is not a probability"
                )));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CtmcError::InvalidInitialDistribution(format!(
                "entries sum to {sum}, expected 1"
            )));
        }
        Ok(())
    }

    /// One step of the uniformized DTMC: computes `out = p · P` where
    /// `P = I + Q/Λ`.
    ///
    /// `out` must have the same length as `p`; both must match the chain.
    pub(crate) fn uniformized_step(&self, lambda: f64, p: &[f64], out: &mut [f64]) {
        debug_assert_eq!(p.len(), self.states);
        debug_assert_eq!(out.len(), self.states);
        for (i, o) in out.iter_mut().enumerate() {
            *o = p[i] * (1.0 - self.exit_rates[i] / lambda);
        }
        for (i, &pi) in p.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for &(j, rate) in &self.outgoing[i] {
                out[j] += pi * rate / lambda;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let mut c = Ctmc::new(3);
        assert_eq!(c.states(), 3);
        assert_eq!(c.transitions(), 0);
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(0, 2, 1.0).unwrap();
        assert_eq!(c.transitions(), 2);
        assert_eq!(c.exit_rate(0), 3.0);
        assert_eq!(c.exit_rate(1), 0.0);
        assert_eq!(c.max_exit_rate(), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_states_panics() {
        let _ = Ctmc::new(0);
    }

    #[test]
    fn rejects_bad_transitions() {
        let mut c = Ctmc::new(2);
        assert_eq!(
            c.add_transition(2, 0, 1.0),
            Err(CtmcError::StateOutOfRange {
                state: 2,
                states: 2
            })
        );
        assert_eq!(
            c.add_transition(0, 5, 1.0),
            Err(CtmcError::StateOutOfRange {
                state: 5,
                states: 2
            })
        );
        assert_eq!(c.add_transition(0, 0, 1.0), Err(CtmcError::SelfLoop(0)));
        assert_eq!(
            c.add_transition(0, 1, 0.0),
            Err(CtmcError::InvalidRate(0.0))
        );
        assert_eq!(
            c.add_transition(0, 1, -1.0),
            Err(CtmcError::InvalidRate(-1.0))
        );
        assert!(c.add_transition(0, 1, f64::NAN).is_err());
    }

    #[test]
    fn parallel_transitions_merge() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(0, 1, 2.5).unwrap();
        assert_eq!(c.outgoing(0), &[(1, 3.5)]);
        assert_eq!(c.exit_rate(0), 3.5);
        assert_eq!(c.transitions(), 1);
    }

    #[test]
    fn absorbing_detection() {
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 2, 1.0).unwrap();
        assert!(!c.is_absorbing(0));
        assert!(!c.is_absorbing(1));
        assert!(c.is_absorbing(2));
        assert_eq!(c.absorbing_states(), vec![2]);
    }

    #[test]
    fn initial_distribution_validation() {
        let c = Ctmc::new(2);
        assert!(c.validate_initial(&[1.0, 0.0]).is_ok());
        assert!(c.validate_initial(&[0.5, 0.5]).is_ok());
        assert!(c.validate_initial(&[1.0]).is_err());
        assert!(c.validate_initial(&[0.5, 0.6]).is_err());
        assert!(c.validate_initial(&[-0.5, 1.5]).is_err());
        assert!(c.validate_initial(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn uniformized_step_conserves_probability() {
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(1, 0, 1.0).unwrap();
        c.add_transition(1, 2, 3.0).unwrap();
        let lambda = c.max_exit_rate();
        let p = [0.3, 0.5, 0.2];
        let mut out = [0.0; 3];
        c.uniformized_step(lambda, &p, &mut out);
        let sum: f64 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&x| x >= 0.0));
    }
}
