//! Transient analysis by uniformization (randomization).
//!
//! Uniformization converts the CTMC transient problem
//! `p(t) = p(0) · e^{Qt}` into a weighted sum of DTMC powers:
//!
//! ```text
//! p(t) = Σ_k  Poisson(Λt; k) · p(0) · P^k,    P = I + Q/Λ
//! ```
//!
//! with `Λ ≥ max_i |q_ii|`. The Poisson weights are truncated on both
//! sides (see `rejuv_stats::special::poisson_weights`), so the result is
//! accurate to the requested tolerance even when `Λt` is large — the
//! regime the Fig. 4 chains of the paper live in (`Λt` in the hundreds).

use crate::{Ctmc, CtmcError};
use rejuv_stats::special::poisson_weights;

/// Transient solver configuration.
///
/// # Example
///
/// ```
/// use rejuv_ctmc::{Ctmc, TransientSolver};
///
/// let mut c = Ctmc::new(2);
/// c.add_transition(0, 1, 2.0)?;
/// let p = TransientSolver::new(1e-12)?.solve(&c, &[1.0, 0.0], 0.5)?;
/// assert!((p[0] - (-1.0f64).exp()).abs() < 1e-10);
/// # Ok::<(), rejuv_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSolver {
    epsilon: f64,
}

impl TransientSolver {
    /// Creates a solver with the given truncation tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidTolerance`] unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Result<Self, CtmcError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CtmcError::InvalidTolerance(epsilon));
        }
        Ok(TransientSolver { epsilon })
    }

    /// The truncation tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Computes the state-probability vector at time `t` from the initial
    /// distribution `p0`.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::InvalidInitialDistribution`] if `p0` is invalid,
    /// * [`CtmcError::InvalidRate`] if `t` is negative or non-finite.
    pub fn solve(&self, ctmc: &Ctmc, p0: &[f64], t: f64) -> Result<Vec<f64>, CtmcError> {
        ctmc.validate_initial(p0)?;
        if !(t.is_finite() && t >= 0.0) {
            return Err(CtmcError::InvalidRate(t));
        }
        if t == 0.0 {
            return Ok(p0.to_vec());
        }
        let lambda = ctmc.max_exit_rate();
        if lambda == 0.0 {
            // No transitions at all: the chain never moves.
            return Ok(p0.to_vec());
        }

        let m = lambda * t;
        let (left, weights) = poisson_weights(m, self.epsilon)
            .map_err(|_| CtmcError::InvalidTolerance(self.epsilon))?;

        let n = ctmc.states();
        let mut cur = p0.to_vec();
        let mut next = vec![0.0; n];
        let mut result = vec![0.0; n];

        // Powers below the left truncation point contribute nothing.
        let mut k: u64 = 0;
        while k < left {
            ctmc.uniformized_step(lambda, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
            k += 1;
        }
        for &w in &weights {
            for (r, &c) in result.iter_mut().zip(&cur) {
                *r += w * c;
            }
            ctmc.uniformized_step(lambda, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }

        // Compensate the truncated Poisson mass so the vector still sums
        // to ~1; distribute it proportionally.
        let total: f64 = result.iter().sum();
        if total > 0.0 {
            for r in result.iter_mut() {
                *r /= total;
            }
        }
        Ok(result)
    }

    /// Solves for several time points at once, reusing DTMC powers.
    ///
    /// `times` need not be sorted; the result preserves their order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::solve`].
    pub fn solve_many(
        &self,
        ctmc: &Ctmc,
        p0: &[f64],
        times: &[f64],
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        // Solving each point independently is O(Σ Λt_i · nnz); sharing
        // powers across points would complicate the weight bookkeeping for
        // little gain at the sizes used here.
        times.iter().map(|&t| self.solve(ctmc, p0, t)).collect()
    }
}

impl Default for TransientSolver {
    /// A solver with tolerance `1e-12`.
    fn default() -> Self {
        TransientSolver { epsilon: 1e-12 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_chain(rate: f64) -> Ctmc {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, rate).unwrap();
        c
    }

    #[test]
    fn invalid_tolerance_rejected() {
        assert!(TransientSolver::new(0.0).is_err());
        assert!(TransientSolver::new(1.0).is_err());
        assert!(TransientSolver::new(1e-10).is_ok());
    }

    #[test]
    fn exponential_decay_exact() {
        let c = two_state_chain(1.5);
        let s = TransientSolver::default();
        for t in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = s.solve(&c, &[1.0, 0.0], t).unwrap();
            assert!((p[0] - (-1.5 * t).exp()).abs() < 1e-10, "t = {t}");
            assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_time_returns_initial() {
        let c = two_state_chain(1.0);
        let s = TransientSolver::default();
        let p = s.solve(&c, &[0.25, 0.75], 0.0).unwrap();
        assert_eq!(p, vec![0.25, 0.75]);
    }

    #[test]
    fn chain_without_transitions_is_static() {
        let c = Ctmc::new(3);
        let s = TransientSolver::default();
        let p = s.solve(&c, &[0.2, 0.3, 0.5], 100.0).unwrap();
        assert_eq!(p, vec![0.2, 0.3, 0.5]);
    }

    #[test]
    fn negative_time_rejected() {
        let c = two_state_chain(1.0);
        let s = TransientSolver::default();
        assert!(s.solve(&c, &[1.0, 0.0], -1.0).is_err());
        assert!(s.solve(&c, &[1.0, 0.0], f64::NAN).is_err());
    }

    #[test]
    fn hypoexponential_absorption_probability() {
        // 0 -(a)-> 1 -(b)-> 2; P(absorbed by t) has a closed form.
        let (a, b) = (2.0, 3.0);
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, a).unwrap();
        c.add_transition(1, 2, b).unwrap();
        let s = TransientSolver::default();
        for t in [0.2, 1.0, 2.5] {
            let p = s.solve(&c, &[1.0, 0.0, 0.0], t).unwrap();
            let cdf = 1.0 - (b * (-a * t).exp() - a * (-b * t).exp()) / (b - a);
            assert!((p[2] - cdf).abs() < 1e-10, "t = {t}: {} vs {cdf}", p[2]);
        }
    }

    #[test]
    fn two_state_back_and_forth_reaches_steady_state() {
        // 0 <-> 1 with rates 1 and 2: steady state (2/3, 1/3).
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 0, 2.0).unwrap();
        let s = TransientSolver::default();
        let p = s.solve(&c, &[1.0, 0.0], 50.0).unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn large_lambda_t_stays_stochastic() {
        // Λt = 500: exercises the truncated-weights path.
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 100.0).unwrap();
        c.add_transition(1, 0, 100.0).unwrap();
        c.add_transition(1, 2, 50.0).unwrap();
        let s = TransientSolver::default();
        let p = s.solve(&c, &[1.0, 0.0, 0.0], 5.0).unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p[2] > 0.999, "should be almost surely absorbed, p = {p:?}");
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let c = two_state_chain(0.7);
        let s = TransientSolver::default();
        let times = [2.0, 0.5, 1.0];
        let many = s.solve_many(&c, &[1.0, 0.0], &times).unwrap();
        for (i, &t) in times.iter().enumerate() {
            let single = s.solve(&c, &[1.0, 0.0], t).unwrap();
            assert_eq!(many[i], single);
        }
    }
}
