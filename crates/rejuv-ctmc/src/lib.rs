//! Continuous-time Markov chains, uniformization and phase-type
//! distributions.
//!
//! The DSN 2006 paper derives the *exact* distribution of the average
//! response time `X̄n` by representing it as the time to absorption in a
//! `2n + 1`-state CTMC (its Fig. 4) and solving that chain with the
//! proprietary SHARPE tool. This crate is the open substitute:
//!
//! * [`ctmc::Ctmc`] — a validated sparse CTMC generator,
//! * [`uniformization::TransientSolver`] — transient state probabilities
//!   `p(t)` by uniformization (randomization) with truncated Poisson
//!   weights,
//! * [`absorption::AbsorptionTimes`] — CDF / PDF / moments of the time to
//!   absorption,
//! * [`phase_type::PhaseType`] — phase-type distributions (exponential,
//!   hypoexponential, mixtures, convolutions) with closed-form moments,
//!   convertible to an absorbing CTMC.
//!
//! # Example
//!
//! ```
//! use rejuv_ctmc::{Ctmc, TransientSolver};
//!
//! // A two-state chain: 0 --(1.0)--> 1 (absorbing).
//! let mut ctmc = Ctmc::new(2);
//! ctmc.add_transition(0, 1, 1.0)?;
//! let solver = TransientSolver::default();
//! let p = solver.solve(&ctmc, &[1.0, 0.0], 1.0)?;
//! // P(absorbed by t = 1) = 1 - e^{-1}.
//! assert!((p[1] - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
//! # Ok::<(), rejuv_ctmc::CtmcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod absorption;
pub mod ctmc;
pub mod error;
pub mod linalg;
pub mod phase_type;
pub mod steady_state;
pub mod uniformization;

pub use absorption::AbsorptionTimes;
pub use ctmc::Ctmc;
pub use error::CtmcError;
pub use phase_type::PhaseType;
pub use steady_state::steady_state;
pub use uniformization::TransientSolver;
