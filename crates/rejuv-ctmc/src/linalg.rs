//! Minimal dense linear algebra: LU solve with partial pivoting.
//!
//! Moment computations on absorbing chains and phase-type distributions
//! reduce to solving small dense systems (`S x = b` with `S` the
//! sub-generator). Chains in this workspace have at most a few hundred
//! transient states, so a straightforward O(n³) LU factorization is both
//! simple and fast enough.

use crate::CtmcError;

/// A dense row-major matrix.
pub type DenseMatrix = Vec<Vec<f64>>;

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is consumed as workspace. The system dimension is `b.len()`; `a`
/// must be square with matching size.
///
/// # Errors
///
/// Returns [`CtmcError::Singular`] if a pivot smaller than `1e-300` in
/// magnitude is encountered.
///
/// # Panics
///
/// Panics if `a` is not square or its size does not match `b`.
pub fn solve_dense(mut a: DenseMatrix, mut b: Vec<f64>) -> Result<Vec<f64>, CtmcError> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix rows must match rhs length");
    for row in &a {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    for col in 0..n {
        // Partial pivot: the largest magnitude in this column.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-300 {
            return Err(CtmcError::Singular);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for (offset, row) in rest.iter_mut().enumerate() {
            let factor = row[col] / pivot[col];
            if factor == 0.0 {
                continue;
            }
            for (rk, pk) in row[col..].iter_mut().zip(&pivot[col..]) {
                *rk -= factor * pk;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in row + 1..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

/// Multiplies a dense matrix by a vector: `A x`.
///
/// # Panics
///
/// Panics if dimensions do not agree.
pub fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| {
            assert_eq!(row.len(), x.len(), "dimension mismatch");
            row.iter().zip(x).map(|(aij, xj)| aij * xj).sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn known_2x2() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(a, vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve_dense(a, vec![1.0, 2.0]), Err(CtmcError::Singular));
    }

    #[test]
    fn random_system_roundtrip() {
        // Build a well-conditioned system, solve, and verify A x = b.
        let n = 20;
        let a: DenseMatrix = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            10.0 + i as f64
                        } else {
                            ((i * 7 + j * 13) % 5) as f64 * 0.3
                        }
                    })
                    .collect()
            })
            .collect();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = solve_dense(a.clone(), b.clone()).unwrap();
        let ax = mat_vec(&a, &x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let a = vec![vec![1.0, 2.0]];
        let _ = solve_dense(a, vec![1.0]);
    }
}
