//! Error type for CTMC construction and solving.

use std::error::Error;
use std::fmt;

/// Errors produced when building or solving a CTMC.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        states: usize,
    },
    /// A transition rate was not a positive finite number.
    InvalidRate(f64),
    /// A self-loop was requested; CTMC generators have none.
    SelfLoop(usize),
    /// An initial probability vector did not match the chain or did not
    /// sum to one.
    InvalidInitialDistribution(String),
    /// A numerical tolerance parameter was out of range.
    InvalidTolerance(f64),
    /// The linear system arising in a moment computation was singular,
    /// which happens when some state cannot reach absorption.
    Singular,
    /// The requested operation needs at least one absorbing state.
    NoAbsorbingState,
    /// A phase-type construction was given inconsistent input.
    InvalidPhaseType(String),
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::StateOutOfRange { state, states } => {
                write!(f, "state {state} out of range for a {states}-state chain")
            }
            CtmcError::InvalidRate(r) => {
                write!(f, "transition rate {r} is not positive and finite")
            }
            CtmcError::SelfLoop(s) => write!(f, "self-loop on state {s} is not allowed"),
            CtmcError::InvalidInitialDistribution(msg) => {
                write!(f, "invalid initial distribution: {msg}")
            }
            CtmcError::InvalidTolerance(e) => write!(f, "tolerance {e} is outside (0, 1)"),
            CtmcError::Singular => write!(f, "linear system is singular"),
            CtmcError::NoAbsorbingState => write!(f, "chain has no absorbing state"),
            CtmcError::InvalidPhaseType(msg) => write!(f, "invalid phase-type input: {msg}"),
        }
    }
}

impl Error for CtmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_data() {
        let e = CtmcError::StateOutOfRange {
            state: 5,
            states: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        assert!(CtmcError::InvalidRate(-2.0).to_string().contains("-2"));
        assert!(CtmcError::SelfLoop(1).to_string().contains("self-loop"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }
}
