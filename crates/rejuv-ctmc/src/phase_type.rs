//! Phase-type (PH) distributions.
//!
//! The paper's §4.1 notes that the M/M/c response time "is a phase-type
//! distribution representable by a parallel and serial combination of
//! exponential distributions" (its Fig. 2). This module implements PH
//! distributions with the standard `(α, S)` representation — `α` the
//! initial probability vector over transient phases, `S` the
//! sub-generator — plus the combinators needed by the queueing crate:
//! mixtures, convolutions and rate scaling.

use crate::linalg::{solve_dense, DenseMatrix};
use crate::{AbsorptionTimes, Ctmc, CtmcError};
use serde::{Deserialize, Serialize};

/// A phase-type distribution `PH(α, S)`.
///
/// # Example
///
/// ```
/// use rejuv_ctmc::PhaseType;
///
/// // Hypoexponential: Exp(2) followed by Exp(3).
/// let ph = PhaseType::hypoexponential(&[2.0, 3.0])?;
/// assert!((ph.mean()? - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
/// assert!((ph.variance()? - (0.25 + 1.0 / 9.0)).abs() < 1e-12);
/// # Ok::<(), rejuv_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseType {
    alpha: Vec<f64>,
    /// Sub-generator: off-diagonal entries are non-negative rates,
    /// diagonal entries are negative, row sums are ≤ 0. The (implicit)
    /// exit rate of phase `i` is `−Σ_j S[i][j]`.
    s: DenseMatrix,
}

impl PhaseType {
    /// Creates a PH distribution from `(alpha, s)`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidPhaseType`] if the dimensions are
    /// inconsistent, `alpha` is not a probability vector, or `s` is not a
    /// valid sub-generator (non-negative off-diagonals, non-positive row
    /// sums, negative diagonal for any phase that `alpha` can start in).
    pub fn new(alpha: Vec<f64>, s: DenseMatrix) -> Result<Self, CtmcError> {
        let n = alpha.len();
        if n == 0 {
            return Err(CtmcError::InvalidPhaseType("no phases".into()));
        }
        if s.len() != n || s.iter().any(|row| row.len() != n) {
            return Err(CtmcError::InvalidPhaseType(format!(
                "sub-generator must be {n}x{n}"
            )));
        }
        let mut sum = 0.0;
        for &a in &alpha {
            if !(a.is_finite() && a >= 0.0) {
                return Err(CtmcError::InvalidPhaseType(format!(
                    "alpha entry {a} is not a probability"
                )));
            }
            sum += a;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CtmcError::InvalidPhaseType(format!(
                "alpha sums to {sum}, expected 1"
            )));
        }
        for (i, row) in s.iter().enumerate() {
            let mut row_sum = 0.0;
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(CtmcError::InvalidPhaseType(format!(
                        "S[{i}][{j}] = {v} is not finite"
                    )));
                }
                if i != j && v < 0.0 {
                    return Err(CtmcError::InvalidPhaseType(format!(
                        "off-diagonal S[{i}][{j}] = {v} is negative"
                    )));
                }
                if i == j && v > 0.0 {
                    return Err(CtmcError::InvalidPhaseType(format!(
                        "diagonal S[{i}][{i}] = {v} is positive"
                    )));
                }
                row_sum += v;
            }
            if row_sum > 1e-12 {
                return Err(CtmcError::InvalidPhaseType(format!(
                    "row {i} of S sums to {row_sum} > 0"
                )));
            }
        }
        Ok(PhaseType { alpha, s })
    }

    /// An exponential distribution with the given rate as a 1-phase PH.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidRate`] unless `rate` is positive and
    /// finite.
    pub fn exponential(rate: f64) -> Result<Self, CtmcError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(CtmcError::InvalidRate(rate));
        }
        Ok(PhaseType {
            alpha: vec![1.0],
            s: vec![vec![-rate]],
        })
    }

    /// A hypoexponential distribution: the given exponential stages in
    /// series.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidPhaseType`] if `rates` is empty and
    /// [`CtmcError::InvalidRate`] if any rate is invalid.
    pub fn hypoexponential(rates: &[f64]) -> Result<Self, CtmcError> {
        if rates.is_empty() {
            return Err(CtmcError::InvalidPhaseType("no stages".into()));
        }
        let n = rates.len();
        let mut s = vec![vec![0.0; n]; n];
        for (i, &r) in rates.iter().enumerate() {
            if !(r.is_finite() && r > 0.0) {
                return Err(CtmcError::InvalidRate(r));
            }
            s[i][i] = -r;
            if i + 1 < n {
                s[i][i + 1] = r;
            }
        }
        let mut alpha = vec![0.0; n];
        alpha[0] = 1.0;
        Ok(PhaseType { alpha, s })
    }

    /// An Erlang-`k` distribution: `k` identical exponential stages.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidPhaseType`] if `k == 0` and
    /// [`CtmcError::InvalidRate`] if `rate` is invalid.
    pub fn erlang(k: usize, rate: f64) -> Result<Self, CtmcError> {
        if k == 0 {
            return Err(CtmcError::InvalidPhaseType("Erlang needs k >= 1".into()));
        }
        Self::hypoexponential(&vec![rate; k])
    }

    /// A finite mixture of PH distributions: with probability
    /// `weights[i]`, the sample is drawn from `components[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidPhaseType`] if the slices are empty or
    /// of different lengths, or the weights are not a probability vector.
    pub fn mixture(weights: &[f64], components: &[PhaseType]) -> Result<Self, CtmcError> {
        if weights.is_empty() || weights.len() != components.len() {
            return Err(CtmcError::InvalidPhaseType(
                "mixture needs matching, non-empty weights and components".into(),
            ));
        }
        let total_phases: usize = components.iter().map(|c| c.phases()).sum();
        let mut alpha = Vec::with_capacity(total_phases);
        let mut s = vec![vec![0.0; total_phases]; total_phases];
        let mut offset = 0;
        for (&w, comp) in weights.iter().zip(components) {
            if !(w.is_finite() && w >= 0.0) {
                return Err(CtmcError::InvalidPhaseType(format!(
                    "weight {w} is not a probability"
                )));
            }
            for &a in &comp.alpha {
                alpha.push(w * a);
            }
            for (i, row) in comp.s.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    s[offset + i][offset + j] = v;
                }
            }
            offset += comp.phases();
        }
        PhaseType::new(alpha, s)
    }

    /// The convolution `X + Y`: this distribution followed by `other`.
    pub fn convolve(&self, other: &PhaseType) -> PhaseType {
        let n = self.phases();
        let m = other.phases();
        let mut alpha = Vec::with_capacity(n + m);
        alpha.extend_from_slice(&self.alpha);
        alpha.extend(std::iter::repeat_n(0.0, m));
        let mut s = vec![vec![0.0; n + m]; n + m];
        for (i, row) in self.s.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                s[i][j] = v;
            }
            // Exit of phase i flows into other's initial phases.
            let exit = -row.iter().sum::<f64>();
            for (j, &aj) in other.alpha.iter().enumerate() {
                s[i][n + j] = exit * aj;
            }
        }
        for (i, row) in other.s.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                s[n + i][n + j] = v;
            }
        }
        PhaseType { alpha, s }
    }

    /// The distribution of `X / r`: all rates multiplied by `r`.
    ///
    /// This is the transformation the paper applies to build the Fig. 4
    /// chain for the sample mean: each `Xi / n` is the original phase-type
    /// distribution with every rate multiplied by `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidRate`] unless `r` is positive and
    /// finite.
    pub fn scaled_by(&self, r: f64) -> Result<PhaseType, CtmcError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(CtmcError::InvalidRate(r));
        }
        let s = self
            .s
            .iter()
            .map(|row| row.iter().map(|&v| v * r).collect())
            .collect();
        Ok(PhaseType {
            alpha: self.alpha.clone(),
            s,
        })
    }

    /// Number of transient phases.
    pub fn phases(&self) -> usize {
        self.alpha.len()
    }

    /// The initial probability vector `α`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator `S`.
    pub fn sub_generator(&self) -> &DenseMatrix {
        &self.s
    }

    /// Exit-rate vector `s⁰ = −S·1`.
    pub fn exit_rates(&self) -> Vec<f64> {
        self.s.iter().map(|row| -row.iter().sum::<f64>()).collect()
    }

    /// `k`-th raw moment, `E[X^k] = k! · α (−S)^{−k} 1`, computed by
    /// repeated linear solves.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Singular`] if `S` is singular (some phase
    /// never exits) and [`CtmcError::InvalidPhaseType`] if `k == 0`.
    pub fn moment(&self, k: usize) -> Result<f64, CtmcError> {
        if k == 0 {
            return Err(CtmcError::InvalidPhaseType(
                "moment order must be >= 1".into(),
            ));
        }
        let n = self.phases();
        let neg_s: DenseMatrix = self
            .s
            .iter()
            .map(|row| row.iter().map(|&v| -v).collect())
            .collect();
        // v_1 = (−S)^{-1} 1; v_{j+1} = (−S)^{-1} v_j; E[X^k] = k! α v_k.
        let mut v = solve_dense(neg_s.clone(), vec![1.0; n])?;
        for _ in 1..k {
            v = solve_dense(neg_s.clone(), v)?;
        }
        let mut kfact = 1.0;
        for j in 2..=k {
            kfact *= j as f64;
        }
        Ok(kfact * self.alpha.iter().zip(&v).map(|(a, x)| a * x).sum::<f64>())
    }

    /// Expected value `E[X]`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::moment`].
    pub fn mean(&self) -> Result<f64, CtmcError> {
        self.moment(1)
    }

    /// Variance `Var(X)`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::moment`].
    pub fn variance(&self) -> Result<f64, CtmcError> {
        let m1 = self.moment(1)?;
        Ok(self.moment(2)? - m1 * m1)
    }

    /// Converts into an absorbing CTMC: phases `0..n` plus absorbing
    /// state `n`, with the initial distribution `(α, 0)`.
    pub fn to_ctmc(&self) -> (Ctmc, Vec<f64>) {
        let n = self.phases();
        let mut ctmc = Ctmc::new(n + 1);
        for (i, row) in self.s.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j && v > 0.0 {
                    ctmc.add_transition(i, j, v).expect("validated rates");
                }
            }
            let exit = -row.iter().sum::<f64>();
            if exit > 1e-15 {
                ctmc.add_transition(i, n, exit).expect("validated rates");
            }
        }
        let mut p0 = self.alpha.clone();
        p0.push(0.0);
        (ctmc, p0)
    }

    /// The absorption-time view of this distribution, exposing `cdf`,
    /// `pdf`, `quantile` and grid evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoAbsorbingState`] if every phase has a zero
    /// exit rate (a defective distribution that never finishes).
    pub fn to_absorption_times(&self) -> Result<AbsorptionTimes, CtmcError> {
        let (ctmc, p0) = self.to_ctmc();
        AbsorptionTimes::new(ctmc, p0)
    }

    /// Cumulative distribution function at `t` (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Propagates conversion/solver errors.
    pub fn cdf(&self, t: f64) -> Result<f64, CtmcError> {
        self.to_absorption_times()?.cdf(t)
    }

    /// Probability density function at `t` (convenience wrapper).
    ///
    /// # Errors
    ///
    /// Propagates conversion/solver errors.
    pub fn pdf(&self, t: f64) -> Result<f64, CtmcError> {
        self.to_absorption_times()?.pdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_basics() {
        let ph = PhaseType::exponential(2.0).unwrap();
        assert_eq!(ph.phases(), 1);
        assert!((ph.mean().unwrap() - 0.5).abs() < 1e-12);
        assert!((ph.variance().unwrap() - 0.25).abs() < 1e-12);
        assert!((ph.cdf(0.5).unwrap() - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
        assert!(PhaseType::exponential(0.0).is_err());
        assert!(PhaseType::exponential(f64::NAN).is_err());
    }

    #[test]
    fn hypoexponential_moments() {
        let ph = PhaseType::hypoexponential(&[1.0, 2.0, 4.0]).unwrap();
        assert!((ph.mean().unwrap() - (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert!((ph.variance().unwrap() - (1.0 + 0.25 + 0.0625)).abs() < 1e-12);
        assert!(PhaseType::hypoexponential(&[]).is_err());
        assert!(PhaseType::hypoexponential(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn erlang_equals_equal_stage_hypoexp() {
        let e = PhaseType::erlang(3, 2.0).unwrap();
        let h = PhaseType::hypoexponential(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(e, h);
        assert!((e.mean().unwrap() - 1.5).abs() < 1e-12);
        assert!(PhaseType::erlang(0, 1.0).is_err());
    }

    #[test]
    fn mixture_moments_are_weighted() {
        let a = PhaseType::exponential(1.0).unwrap();
        let b = PhaseType::exponential(2.0).unwrap();
        let mix = PhaseType::mixture(&[0.25, 0.75], &[a, b]).unwrap();
        // E = 0.25*1 + 0.75*0.5, E[X^2] = 0.25*2 + 0.75*0.5.
        assert!((mix.mean().unwrap() - 0.625).abs() < 1e-12);
        assert!((mix.moment(2).unwrap() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn mixture_validation() {
        let a = PhaseType::exponential(1.0).unwrap();
        assert!(PhaseType::mixture(&[], &[]).is_err());
        assert!(PhaseType::mixture(&[1.0], &[]).is_err());
        assert!(PhaseType::mixture(&[0.5, 0.6], &[a.clone(), a.clone()]).is_err());
        assert!(PhaseType::mixture(&[0.5, 0.5], &[a.clone(), a]).is_ok());
    }

    #[test]
    fn convolution_adds_moments() {
        let a = PhaseType::exponential(2.0).unwrap();
        let b = PhaseType::exponential(3.0).unwrap();
        let c = a.convolve(&b);
        assert_eq!(c.phases(), 2);
        assert!((c.mean().unwrap() - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
        // Variances add for independent summands.
        assert!((c.variance().unwrap() - (0.25 + 1.0 / 9.0)).abs() < 1e-12);
        // Equivalent to the hypoexponential.
        let h = PhaseType::hypoexponential(&[2.0, 3.0]).unwrap();
        assert!((c.cdf(0.7).unwrap() - h.cdf(0.7).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn convolution_with_mixture_second_summand() {
        // X + Y where Y is a mixture: exit of X must split across Y's alpha.
        let x = PhaseType::exponential(1.0).unwrap();
        let y = PhaseType::mixture(
            &[0.5, 0.5],
            &[
                PhaseType::exponential(1.0).unwrap(),
                PhaseType::exponential(3.0).unwrap(),
            ],
        )
        .unwrap();
        let c = x.convolve(&y);
        let expected_mean = 1.0 + 0.5 * 1.0 + 0.5 / 3.0;
        assert!((c.mean().unwrap() - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn scaling_divides_moments() {
        let ph = PhaseType::hypoexponential(&[1.0, 2.0]).unwrap();
        let scaled = ph.scaled_by(4.0).unwrap();
        assert!((scaled.mean().unwrap() - ph.mean().unwrap() / 4.0).abs() < 1e-12);
        assert!((scaled.variance().unwrap() - ph.variance().unwrap() / 16.0).abs() < 1e-12);
        assert!(ph.scaled_by(0.0).is_err());
    }

    #[test]
    fn to_ctmc_roundtrip_moments() {
        let ph = PhaseType::hypoexponential(&[2.0, 3.0]).unwrap();
        let at = ph.to_absorption_times().unwrap();
        assert!((at.mean().unwrap() - ph.mean().unwrap()).abs() < 1e-12);
        assert!((at.variance().unwrap() - ph.variance().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn new_validates_shapes_and_signs() {
        assert!(PhaseType::new(vec![], vec![]).is_err());
        assert!(PhaseType::new(vec![1.0], vec![vec![1.0]]).is_err()); // positive diagonal
        assert!(PhaseType::new(vec![1.0], vec![vec![-1.0, 0.0]]).is_err()); // not square
        assert!(PhaseType::new(vec![0.5], vec![vec![-1.0]]).is_err()); // alpha sum
        assert!(PhaseType::new(vec![1.0], vec![vec![-1.0]]).is_ok());
        // Off-diagonal negative.
        assert!(PhaseType::new(vec![1.0, 0.0], vec![vec![-1.0, -0.5], vec![0.0, -1.0]]).is_err());
        // Row sum positive.
        assert!(PhaseType::new(vec![1.0, 0.0], vec![vec![-1.0, 2.0], vec![0.0, -1.0]]).is_err());
    }

    #[test]
    fn moment_zero_is_rejected() {
        let ph = PhaseType::exponential(1.0).unwrap();
        assert!(ph.moment(0).is_err());
        // Third moment of Exp(1) is 3! = 6.
        assert!((ph.moment(3).unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_cdf_consistency() {
        let ph = PhaseType::mixture(
            &[0.3, 0.7],
            &[
                PhaseType::exponential(0.5).unwrap(),
                PhaseType::hypoexponential(&[1.0, 2.0]).unwrap(),
            ],
        )
        .unwrap();
        let at = ph.to_absorption_times().unwrap();
        let h = 1e-5;
        for t in [0.5, 1.0, 2.0] {
            let num = (at.cdf(t + h).unwrap() - at.cdf(t - h).unwrap()) / (2.0 * h);
            assert!((num - at.pdf(t).unwrap()).abs() < 1e-6, "t = {t}");
        }
    }
}
