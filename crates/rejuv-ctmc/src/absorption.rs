//! Time-to-absorption analysis for absorbing CTMCs.
//!
//! The paper (its eq. (4)) computes the exact probability density of the
//! average response time as the density of the absorption time of the
//! Fig. 4 chain:
//!
//! ```text
//! f(t) = Σ_{i transient} p_i(t) · rate(i → absorbing)
//! ```
//!
//! [`AbsorptionTimes`] packages an absorbing chain and initial
//! distribution and exposes the CDF, that density, moments (via the
//! fundamental-matrix linear systems) and quantiles.

use crate::linalg::solve_dense;
use crate::{Ctmc, CtmcError, TransientSolver};

/// The distribution of the time to absorption of an absorbing CTMC.
///
/// # Example
///
/// ```
/// use rejuv_ctmc::{AbsorptionTimes, Ctmc};
///
/// // Exponential(2): one transient, one absorbing state.
/// let mut c = Ctmc::new(2);
/// c.add_transition(0, 1, 2.0)?;
/// let at = AbsorptionTimes::new(c, vec![1.0, 0.0])?;
/// assert!((at.mean()? - 0.5).abs() < 1e-12);
/// assert!((at.cdf(1.0)? - (1.0 - (-2.0f64).exp())).abs() < 1e-10);
/// # Ok::<(), rejuv_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AbsorptionTimes {
    ctmc: Ctmc,
    p0: Vec<f64>,
    absorbing: Vec<bool>,
    solver: TransientSolver,
}

impl AbsorptionTimes {
    /// Creates the absorption-time distribution for `ctmc` started from
    /// `p0`.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::NoAbsorbingState`] if the chain has none,
    /// * [`CtmcError::InvalidInitialDistribution`] if `p0` is invalid.
    pub fn new(ctmc: Ctmc, p0: Vec<f64>) -> Result<Self, CtmcError> {
        ctmc.validate_initial(&p0)?;
        let absorbing: Vec<bool> = (0..ctmc.states()).map(|s| ctmc.is_absorbing(s)).collect();
        if !absorbing.iter().any(|&a| a) {
            return Err(CtmcError::NoAbsorbingState);
        }
        Ok(AbsorptionTimes {
            ctmc,
            p0,
            absorbing,
            solver: TransientSolver::default(),
        })
    }

    /// Replaces the transient solver (e.g. to loosen the tolerance).
    pub fn with_solver(mut self, solver: TransientSolver) -> Self {
        self.solver = solver;
        self
    }

    /// The underlying chain.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The initial distribution.
    pub fn initial(&self) -> &[f64] {
        &self.p0
    }

    /// `P(T ≤ t)`: total probability mass in absorbing states at `t`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (negative `t`, …).
    pub fn cdf(&self, t: f64) -> Result<f64, CtmcError> {
        let p = self.solver.solve(&self.ctmc, &self.p0, t)?;
        Ok(p.iter()
            .zip(&self.absorbing)
            .filter(|(_, &a)| a)
            .map(|(&pi, _)| pi)
            .sum())
    }

    /// Probability density of the absorption time at `t` (eq. (4) of the
    /// paper): probability flux from transient states into absorbing
    /// states.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn pdf(&self, t: f64) -> Result<f64, CtmcError> {
        let p = self.solver.solve(&self.ctmc, &self.p0, t)?;
        let mut flux = 0.0;
        for (i, &pi) in p.iter().enumerate() {
            if self.absorbing[i] || pi == 0.0 {
                continue;
            }
            for &(j, rate) in self.ctmc.outgoing(i) {
                if self.absorbing[j] {
                    flux += pi * rate;
                }
            }
        }
        Ok(flux)
    }

    /// Evaluates the density on a uniform grid over `[lo, hi]` with
    /// `points` points (inclusive of both ends).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; returns an empty vector if `points == 0`.
    pub fn pdf_grid(&self, lo: f64, hi: f64, points: usize) -> Result<Vec<(f64, f64)>, CtmcError> {
        if points == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let t = if points == 1 {
                lo
            } else {
                lo + (hi - lo) * i as f64 / (points - 1) as f64
            };
            out.push((t, self.pdf(t)?));
        }
        Ok(out)
    }

    /// Expected time to absorption, via the linear system
    /// `(−Q_TT) m = 1` on the transient states.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Singular`] if some transient state cannot
    /// reach absorption.
    pub fn mean(&self) -> Result<f64, CtmcError> {
        let m = self.transient_solve_ones()?;
        Ok(self.dot_initial(&m))
    }

    /// Second moment of the time to absorption:
    /// `(−Q_TT) m₂ = 2 m₁`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::mean`].
    pub fn second_moment(&self) -> Result<f64, CtmcError> {
        let m1 = self.transient_solve_ones()?;
        let rhs: Vec<f64> = m1.iter().map(|&x| 2.0 * x).collect();
        let m2 = self.transient_solve(rhs)?;
        Ok(self.dot_initial(&m2))
    }

    /// Variance of the time to absorption.
    ///
    /// # Errors
    ///
    /// Same as [`Self::mean`].
    pub fn variance(&self) -> Result<f64, CtmcError> {
        let mean = self.mean()?;
        Ok(self.second_moment()? - mean * mean)
    }

    /// Quantile of the absorption time by bisection on the CDF.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::InvalidTolerance`] unless `0 < p < 1`,
    /// * propagates solver errors.
    pub fn quantile(&self, p: f64) -> Result<f64, CtmcError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(CtmcError::InvalidTolerance(p));
        }
        // Bracket: grow hi until cdf(hi) > p.
        let mut hi = self.mean()?.max(1e-9) * 2.0;
        let mut guard = 0;
        while self.cdf(hi)? < p {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(CtmcError::Singular);
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid)? < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Solves `(−Q_TT) x = 1`.
    fn transient_solve_ones(&self) -> Result<Vec<f64>, CtmcError> {
        let n_trans = self.absorbing.iter().filter(|&&a| !a).count();
        self.transient_solve(vec![1.0; n_trans])
    }

    /// Solves `(−Q_TT) x = rhs`, where `rhs` is indexed over transient
    /// states in increasing state order.
    fn transient_solve(&self, rhs: Vec<f64>) -> Result<Vec<f64>, CtmcError> {
        // Map transient state -> dense index.
        let mut index = vec![usize::MAX; self.ctmc.states()];
        let mut count = 0;
        for (s, slot) in index.iter_mut().enumerate() {
            if !self.absorbing[s] {
                *slot = count;
                count += 1;
            }
        }
        debug_assert_eq!(rhs.len(), count);

        let mut a = vec![vec![0.0; count]; count];
        for s in 0..self.ctmc.states() {
            if self.absorbing[s] {
                continue;
            }
            let i = index[s];
            a[i][i] = self.ctmc.exit_rate(s);
            for &(j, rate) in self.ctmc.outgoing(s) {
                if !self.absorbing[j] {
                    a[i][index[j]] -= rate;
                }
            }
        }
        solve_dense(a, rhs)
    }

    /// Dot product of a transient-indexed vector with the initial
    /// distribution (absorbing entries of `p0` contribute 0 time).
    fn dot_initial(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        let mut acc = 0.0;
        for (s, &p) in self.p0.iter().enumerate() {
            if !self.absorbing[s] {
                acc += p * x[i];
                i += 1;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypoexp_chain(a: f64, b: f64) -> AbsorptionTimes {
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, a).unwrap();
        c.add_transition(1, 2, b).unwrap();
        AbsorptionTimes::new(c, vec![1.0, 0.0, 0.0]).unwrap()
    }

    #[test]
    fn requires_an_absorbing_state() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 0, 1.0).unwrap();
        assert!(matches!(
            AbsorptionTimes::new(c, vec![1.0, 0.0]),
            Err(CtmcError::NoAbsorbingState)
        ));
    }

    #[test]
    fn exponential_moments_and_cdf() {
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 4.0).unwrap();
        let at = AbsorptionTimes::new(c, vec![1.0, 0.0]).unwrap();
        assert!((at.mean().unwrap() - 0.25).abs() < 1e-12);
        assert!((at.variance().unwrap() - 0.0625).abs() < 1e-12);
        assert!((at.cdf(0.25).unwrap() - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
        assert!((at.pdf(0.0).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hypoexponential_moments() {
        let at = hypoexp_chain(2.0, 3.0);
        // mean = 1/2 + 1/3, var = 1/4 + 1/9.
        assert!((at.mean().unwrap() - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((at.variance().unwrap() - (0.25 + 1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn pdf_matches_closed_form() {
        let (a, b) = (2.0, 3.0);
        let at = hypoexp_chain(a, b);
        for t in [0.1, 0.5, 1.0, 2.0] {
            let f = a * b / (b - a) * ((-a * t).exp() - (-b * t).exp());
            assert!((at.pdf(t).unwrap() - f).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let at = hypoexp_chain(1.0, 2.0);
        // Trapezoid rule over [0, 20].
        let grid = at.pdf_grid(0.0, 20.0, 2001).unwrap();
        let h = 0.01;
        let integral: f64 = grid.windows(2).map(|w| 0.5 * h * (w[0].1 + w[1].1)).sum();
        assert!((integral - 1.0).abs() < 1e-4, "integral = {integral}");
    }

    #[test]
    fn cdf_is_monotone() {
        let at = hypoexp_chain(0.5, 0.8);
        let mut last = 0.0;
        for i in 0..50 {
            let t = i as f64 * 0.3;
            let c = at.cdf(t).unwrap();
            assert!(c >= last - 1e-12);
            last = c;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let at = hypoexp_chain(2.0, 5.0);
        for p in [0.1, 0.5, 0.9, 0.99] {
            let t = at.quantile(p).unwrap();
            assert!((at.cdf(t).unwrap() - p).abs() < 1e-8, "p = {p}");
        }
        assert!(at.quantile(0.0).is_err());
        assert!(at.quantile(1.0).is_err());
    }

    #[test]
    fn mixed_initial_distribution() {
        // Start in state 1 with probability 1: absorption is Exp(b).
        let mut c = Ctmc::new(3);
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(1, 2, 3.0).unwrap();
        let at = AbsorptionTimes::new(c, vec![0.0, 1.0, 0.0]).unwrap();
        assert!((at.mean().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn initial_mass_on_absorbing_state() {
        // With probability 0.5 we are already absorbed at t = 0.
        let mut c = Ctmc::new(2);
        c.add_transition(0, 1, 1.0).unwrap();
        let at = AbsorptionTimes::new(c, vec![0.5, 0.5]).unwrap();
        assert!((at.mean().unwrap() - 0.5).abs() < 1e-12);
        assert!((at.cdf(0.0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        // State 0 cycles with state 1 and never reaches the absorbing
        // state 2; the mean is infinite -> singular system.
        let mut c = Ctmc::new(4);
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 0, 1.0).unwrap();
        c.add_transition(3, 2, 1.0).unwrap();
        let at = AbsorptionTimes::new(c, vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(at.mean(), Err(CtmcError::Singular));
    }
}
