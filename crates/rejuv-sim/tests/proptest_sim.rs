//! Property-based tests for the DES engine.

use proptest::prelude::*;
use rejuv_sim::{Engine, EventQueue, SimTime};

proptest! {
    /// Events pop in non-decreasing time order regardless of insertion
    /// order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal timestamps preserve insertion (FIFO) order.
    #[test]
    fn queue_ties_are_fifo(
        groups in proptest::collection::vec((0.0f64..100.0, 1usize..6), 1..30),
    ) {
        let mut q = EventQueue::new();
        let mut id = 0usize;
        for &(t, cnt) in &groups {
            for _ in 0..cnt {
                q.schedule(SimTime::from_secs(t), id);
                id += 1;
            }
        }
        let mut seen_per_time: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        while let Some((t, payload)) = q.pop() {
            seen_per_time
                .entry(t.as_secs().to_bits())
                .or_default()
                .push(payload);
        }
        for ids in seen_per_time.values() {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ids, &sorted, "FIFO violated within a timestamp");
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_subset(
        times in proptest::collection::vec(0.0f64..1e4, 1..200),
        mask in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_secs(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, (&id, &kill)) in ids.iter().zip(mask.iter().cycle()).enumerate() {
            if kill {
                prop_assert!(q.cancel(id));
                cancelled.insert(i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        while let Some((_, payload)) = q.pop() {
            prop_assert!(!cancelled.contains(&payload), "cancelled event delivered");
        }
    }

    /// The engine clock is monotone over any schedule of relative delays,
    /// including handler-scheduled follow-ups.
    #[test]
    fn engine_clock_is_monotone(delays in proptest::collection::vec(0.0f64..100.0, 1..100)) {
        let mut engine = Engine::new();
        for &d in &delays {
            engine.schedule_in(SimTime::from_secs(d), d);
        }
        let mut last = SimTime::ZERO;
        let mut spawned = 0u32;
        engine.run(10_000, |eng, payload| {
            assert!(eng.now() >= last);
            last = eng.now();
            if spawned < 50 && payload > 50.0 {
                spawned += 1;
                eng.schedule_in(SimTime::from_secs(payload / 2.0), payload / 2.0);
            }
        });
        prop_assert_eq!(engine.pending(), 0);
    }

    /// SimTime arithmetic is consistent: (a + b) − b == a.
    #[test]
    fn simtime_roundtrip(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let s = SimTime::from_secs(a) + SimTime::from_secs(b);
        let back = s - SimTime::from_secs(b);
        prop_assert!((back.as_secs() - a).abs() <= 1e-6 * (1.0 + a));
    }
}
