//! Reproducible random-number streams.
//!
//! Every component of a simulation model (arrivals, service times, …)
//! should consume its own RNG stream so that changing how one component
//! draws randomness never perturbs the others — a prerequisite for
//! comparing rejuvenation policies on *common random numbers*.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A factory of independent RNG streams derived from one master seed.
///
/// Streams are identified by a `u64` label; the same `(master_seed,
/// label)` pair always yields the same stream. Labels are mixed through
/// SplitMix64, so even consecutive labels produce statistically unrelated
/// seeds.
///
/// # Example
///
/// ```
/// use rejuv_sim::RngStreams;
/// use rand::Rng;
///
/// let streams = RngStreams::new(42);
/// let mut arrivals = streams.stream(0);
/// let mut services = streams.stream(1);
/// let a: f64 = arrivals.random();
/// let s: f64 = services.random();
/// assert_ne!(a, s);
///
/// // Reproducible: the same label yields the same sequence.
/// let mut again = streams.stream(0);
/// assert_eq!(a, again.random::<f64>());
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a stream factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master_seed }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG stream with the given label.
    pub fn stream(&self, label: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.master_seed ^ splitmix64(label)))
    }

    /// Derives a sub-factory, e.g. one per replication: replication `r`
    /// uses `streams.substreams(r)` and hands per-component streams out of
    /// that.
    pub fn substreams(&self, label: u64) -> RngStreams {
        RngStreams {
            master_seed: splitmix64(self.master_seed.wrapping_add(splitmix64(!label))),
        }
    }
}

impl fmt::Debug for RngStreams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RngStreams")
            .field("master_seed", &self.master_seed)
            .finish()
    }
}

/// SplitMix64 finalizer — a fast, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_reproduces() {
        let s = RngStreams::new(7);
        let a: Vec<f64> = {
            let mut r = s.stream(3);
            (0..10).map(|_| r.random()).collect()
        };
        let b: Vec<f64> = {
            let mut r = s.stream(3);
            (0..10).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let s = RngStreams::new(7);
        let a: f64 = s.stream(0).random();
        let b: f64 = s.stream(1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: f64 = RngStreams::new(1).stream(0).random();
        let b: f64 = RngStreams::new(2).stream(0).random();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_are_independent_of_parent_labels() {
        let s = RngStreams::new(7);
        let sub = s.substreams(0);
        assert_ne!(sub.master_seed(), s.master_seed());
        let a: f64 = s.stream(0).random();
        let b: f64 = sub.stream(0).random();
        assert_ne!(a, b);
    }

    #[test]
    fn consecutive_labels_are_statistically_unrelated() {
        // Correlation smoke test: means of paired streams should not track.
        let s = RngStreams::new(99);
        let mut diffs = 0usize;
        for label in 0..100 {
            let x: f64 = s.stream(label).random();
            let y: f64 = s.stream(label + 1).random();
            if (x - y).abs() > 0.1 {
                diffs += 1;
            }
        }
        assert!(diffs > 50, "streams look correlated: {diffs}");
    }
}
