//! Simulation time.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulation clock, in seconds.
///
/// `SimTime` is a thin newtype over `f64` that guarantees the value is
/// finite and non-negative, which in turn makes it totally ordered —
/// event queues must never see a NaN timestamp.
///
/// # Example
///
/// ```
/// use rejuv_sim::SimTime;
///
/// let t = SimTime::from_secs(1.5) + SimTime::from_secs(2.5);
/// assert_eq!(t.as_secs(), 4.0);
/// assert!(SimTime::ZERO < t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite. Simulation times
    /// come from validated distributions; a bad value here is a model bug
    /// that must fail fast.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "simulation time must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns `ZERO` instead of going negative.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite by construction, so partial_cmp cannot fail.
        self.0.partial_cmp(&other.0).expect("SimTime is finite")
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when that is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(3.25).as_secs(), 3.25);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(f64::from(SimTime::from_secs(2.0)), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinite_time_panics() {
        let _ = SimTime::from_secs(f64::INFINITY);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!((a + b).as_secs(), 7.0);
        assert_eq!((a - b).as_secs(), 3.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 7.0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let _ = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500000s");
    }
}
