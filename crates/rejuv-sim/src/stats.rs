//! Time-weighted statistics over the simulation clock.
//!
//! Queue lengths and population counts are *time-persistent* variables:
//! their average is weighted by how long each value was held, not by how
//! often it changed. [`TimeWeighted`] integrates a piecewise-constant
//! value over simulated time — the standard DES instrument behind
//! `L` in Little's law (`L = λ·W`).

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant value over simulation time.
///
/// # Example
///
/// ```
/// use rejuv_sim::{stats::TimeWeighted, SimTime};
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(2.0), 10.0); // value was 0 for 2 s
/// tw.update(SimTime::from_secs(6.0), 0.0);  // value was 10 for 4 s
/// // Average over [0, 6): (0·2 + 10·4) / 6.
/// assert!((tw.time_average(SimTime::from_secs(6.0)) - 40.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts integrating from `now` with the given initial value.
    pub fn new(now: SimTime, initial: f64) -> Self {
        TimeWeighted {
            start: now,
            last_change: now,
            current: initial,
            integral: 0.0,
            max: initial,
        }
    }

    /// Records that the value changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (simulation time is
    /// monotone).
    pub fn update(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "time-weighted updates must be chronological"
        );
        self.integral += self.current * (now - self.last_change).as_secs();
        self.last_change = now;
        self.current = value;
        self.max = self.max.max(value);
    }

    /// The value currently in force.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time average over `[start, now]`; `0` if no time has elapsed.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let elapsed = (now - self.start).as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let integral = self.integral + self.current * (now - self.last_change).as_secs();
        integral / elapsed
    }

    /// Restarts the integration window at `now`, keeping the current
    /// value.
    pub fn reset_window(&mut self, now: SimTime) {
        self.update(now, self.current);
        self.start = now;
        self.integral = 0.0;
        self.max = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn constant_value() {
        let mut tw = TimeWeighted::new(t(0.0), 3.0);
        tw.update(t(5.0), 3.0);
        assert_eq!(tw.time_average(t(10.0)), 3.0);
        assert_eq!(tw.max(), 3.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn step_function() {
        let mut tw = TimeWeighted::new(t(0.0), 0.0);
        tw.update(t(1.0), 4.0);
        tw.update(t(3.0), 1.0);
        // [0,1): 0; [1,3): 4; [3,5): 1 -> (0 + 8 + 2)/5 = 2.
        assert!((tw.time_average(t(5.0)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.max(), 4.0);
    }

    #[test]
    fn zero_elapsed_is_zero() {
        let tw = TimeWeighted::new(t(2.0), 7.0);
        assert_eq!(tw.time_average(t(2.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn non_monotone_update_panics() {
        let mut tw = TimeWeighted::new(t(5.0), 0.0);
        tw.update(t(4.0), 1.0);
    }

    #[test]
    fn window_reset() {
        let mut tw = TimeWeighted::new(t(0.0), 10.0);
        tw.update(t(10.0), 2.0);
        tw.reset_window(t(10.0));
        // New window only sees the value 2.
        assert!((tw.time_average(t(20.0)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.max(), 2.0);
    }

    #[test]
    fn average_includes_open_segment() {
        let mut tw = TimeWeighted::new(t(0.0), 1.0);
        tw.update(t(2.0), 5.0);
        // [0,2): 1, [2,4): 5 -> (2 + 10)/4 = 3, without an explicit
        // update at t = 4.
        assert!((tw.time_average(t(4.0)) - 3.0).abs() < 1e-12);
    }
}
