//! A stable, cancellable event queue.

use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Opaque handle to a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ties on time break by insertion order (seq), giving deterministic
        // FIFO behaviour for simultaneous events.
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking and
/// O(log n) lazy cancellation.
///
/// Cancellation records the [`EventId`] in a tombstone set; the event is
/// physically discarded when it reaches the head of the heap. This keeps
/// both scheduling and cancellation logarithmic without intrusive
/// handles.
///
/// # Example
///
/// ```
/// use rejuv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_secs(2.0), "late");
/// let _b = q.schedule(SimTime::from_secs(1.0), "early");
/// q.cancel(a);
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Seqs scheduled but neither delivered nor cancelled.
    live: HashSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time` and returns a
    /// handle that can later be passed to [`Self::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, payload }));
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-delivered or already-cancelled event is a
    /// no-op returning `false` (ids are never reused, so this is always
    /// safe).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0)
    }

    /// Removes and returns the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.live.remove(&ev.seq) {
                return Some((ev.time, ev.payload));
            }
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.live.contains(&ev.seq) {
                return Some(ev.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending events, *excluding* lazily cancelled ones.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` if no non-cancelled event is pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Discards every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 'c');
        q.schedule(t(1.0), 'a');
        q.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        let b = q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "cancel after delivery is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        let b = q.schedule(t(2.0), 2);
        q.cancel(b);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ids_are_unique_across_pops() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.pop();
        let b = q.schedule(t(1.0), ());
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), 5);
        q.schedule(t(1.0), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        q.schedule(t(3.0), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some(5));
    }
}
