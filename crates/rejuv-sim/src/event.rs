//! A stable, cancellable event queue.

use crate::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Opaque handle to a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ties on time break by insertion order (seq), giving deterministic
        // FIFO behaviour for simultaneous events.
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking and
/// O(log n) lazy cancellation.
///
/// Cancellation is tracked in a dense per-sequence ledger (a
/// `VecDeque<bool>` indexed by `seq - base`) instead of a hash set, so
/// scheduling, cancelling and delivering never hash. A count of
/// not-yet-collected cancellation tombstones lets [`Self::pop`] and
/// [`Self::peek_time`] skip the ledger probe entirely on the common
/// path where nothing is cancelled — the DES hot loop then costs
/// exactly one heap operation per event. Resolved entries are compacted
/// off the front of the ledger, keeping it as small as the window of
/// outstanding sequence numbers.
///
/// # Example
///
/// ```
/// use rejuv_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_secs(2.0), "late");
/// let _b = q.schedule(SimTime::from_secs(1.0), "early");
/// q.cancel(a);
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "early"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    /// `pending[seq - base]` is `true` while that event is scheduled but
    /// neither delivered nor cancelled. Entries below `base` are
    /// resolved and compacted away.
    pending: VecDeque<bool>,
    /// Sequence number of `pending[0]`.
    base: u64,
    next_seq: u64,
    /// Number of `true` entries in `pending`.
    live: usize,
    /// Cancelled events whose tombstones still sit in the heap. While
    /// zero, every heap entry is live and pop/peek take the fast path.
    cancelled_in_heap: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: VecDeque::new(),
            base: 0,
            next_seq: 0,
            live: 0,
            cancelled_in_heap: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time` and returns a
    /// handle that can later be passed to [`Self::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, payload }));
        self.pending.push_back(true);
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-delivered or already-cancelled event is a
    /// no-op returning `false` (ids are never reused, so this is always
    /// safe).
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slot_mut(id.0) {
            Some(slot) if *slot => {
                *slot = false;
                self.live -= 1;
                self.cancelled_in_heap += 1;
                self.compact_front();
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest non-cancelled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.cancelled_in_heap == 0 {
            // Fast path: no tombstones, the heap head is live by
            // construction.
            let Reverse(ev) = self.heap.pop()?;
            self.mark_delivered(ev.seq);
            return Some((ev.time, ev.payload));
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.is_pending(ev.seq) {
                self.mark_delivered(ev.seq);
                return Some((ev.time, ev.payload));
            }
            // Collected a cancellation tombstone.
            self.cancelled_in_heap -= 1;
            if self.cancelled_in_heap == 0 {
                return self.pop();
            }
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.cancelled_in_heap == 0 || self.is_pending(ev.seq) {
                return Some(ev.time);
            }
            self.heap.pop();
            self.cancelled_in_heap -= 1;
        }
        None
    }

    /// Number of pending events, *excluding* lazily cancelled ones.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no non-cancelled event is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Discards every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.base = self.next_seq;
        self.live = 0;
        self.cancelled_in_heap = 0;
    }

    fn slot_mut(&mut self, seq: u64) -> Option<&mut bool> {
        let idx = seq.checked_sub(self.base)?;
        self.pending.get_mut(idx as usize)
    }

    fn is_pending(&self, seq: u64) -> bool {
        seq.checked_sub(self.base)
            .and_then(|idx| self.pending.get(idx as usize))
            .copied()
            .unwrap_or(false)
    }

    fn mark_delivered(&mut self, seq: u64) {
        if let Some(slot) = self.slot_mut(seq) {
            debug_assert!(*slot, "delivered an event that was not pending");
            *slot = false;
            self.live -= 1;
        }
        self.compact_front();
    }

    /// Drops resolved entries off the front of the ledger so it only
    /// spans outstanding sequence numbers. Amortised O(1).
    fn compact_front(&mut self) {
        while self.pending.front() == Some(&false) {
            self.pending.pop_front();
            self.base += 1;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("heap_size", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 'c');
        q.schedule(t(1.0), 'a');
        q.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        let b = q.schedule(t(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(!q.cancel(b), "cancel after delivery is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        let b = q.schedule(t(2.0), 2);
        q.cancel(b);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ids_are_unique_across_pops() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.pop();
        let b = q.schedule(t(1.0), ());
        assert_ne!(a, b);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), 5);
        q.schedule(t(1.0), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        q.schedule(t(3.0), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pop().map(|(_, e)| e), Some(5));
    }
}
