//! Live observation feeds — the bridge between a running simulation (or
//! a real system) and an online monitoring consumer.
//!
//! The DES engine drives models that *produce* per-transaction
//! observations (response times); an online monitoring runtime *consumes*
//! them. [`ObservationSink`] is the seam between the two: models push
//! timestamped samples without knowing what sits on the other side, and
//! consumers (an in-process supervisor shard, a bounded queue feeding
//! another thread, a file) implement one small object-safe trait.
//!
//! A sink push is allowed to fail — bounded consumers shed load instead
//! of blocking the simulation — and the boolean return value lets the
//! producer account for dropped samples.

use crate::time::SimTime;

/// One timestamped sample of a monitored metric.
///
/// The timestamp is part of the observability contract: monitoring
/// consumers use consecutive `at` values to build inter-observation
/// latency histograms, while detector *decisions* remain functions of
/// the value sequence alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// When the sample was produced, in simulation time.
    pub at: SimTime,
    /// The sampled value (e.g. a response time in seconds).
    pub value: f64,
}

impl Observation {
    /// Creates an observation at `at` seconds of simulation time.
    pub fn at_secs(at: f64, value: f64) -> Self {
        Observation {
            at: SimTime::from_secs(at),
            value,
        }
    }
}

/// A consumer of live observations.
///
/// Object-safe and `Send`, so an engine-driven model can hold one as
/// `Box<dyn ObservationSink>` and a monitoring runtime can hand out
/// per-shard sinks backed by bounded queues.
pub trait ObservationSink: Send {
    /// Offers one observation. Returns `false` if the sink had to drop
    /// it (bounded consumers under back-pressure); the producer should
    /// count, not retry.
    fn push(&mut self, observation: Observation) -> bool;

    /// Offers a batch of observations, returning how many were
    /// accepted. Bounded sinks accept a leading prefix and shed the
    /// rest, exactly as repeated [`ObservationSink::push`] calls would
    /// — the default does just that — but sinks with a cheaper bulk
    /// path (one lock acquisition, one atomic publish) override it.
    fn push_batch(&mut self, observations: &[Observation]) -> usize {
        observations.iter().filter(|&&o| self.push(o)).count()
    }
}

/// Broadcasts every observation to two sinks — e.g. an offline
/// [`VecSink`] capture *and* a monitoring runtime's bounded shard queue.
///
/// The push reports `true` only if **both** sinks accepted: a drop
/// anywhere is a drop the producer should account for. Both sinks are
/// always offered the observation (no short-circuit), so a full bounded
/// queue never silences the capture side.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub first: A,
    /// Second receiver.
    pub second: B,
}

impl<A: ObservationSink, B: ObservationSink> TeeSink<A, B> {
    /// Couples two sinks into one.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }
}

impl<A: ObservationSink, B: ObservationSink> ObservationSink for TeeSink<A, B> {
    fn push(&mut self, observation: Observation) -> bool {
        let a = self.first.push(observation);
        let b = self.second.push(observation);
        a && b
    }
}

/// An unbounded in-memory sink; handy for tests and offline capture.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct VecSink {
    /// Everything pushed so far, in arrival order.
    pub observations: Vec<Observation>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The pushed values, discarding timestamps.
    pub fn values(&self) -> Vec<f64> {
        self.observations.iter().map(|o| o.value).collect()
    }
}

impl ObservationSink for VecSink {
    fn push(&mut self, observation: Observation) -> bool {
        self.observations.push(observation);
        true
    }
}

/// Batches pushes before forwarding them to an inner sink's
/// [`ObservationSink::push_batch`], amortising its per-call cost (a
/// lock acquisition, an atomic publish) over `batch` samples.
///
/// Every push reports `true` — drops are only discovered at flush time,
/// so they are *counted* ([`BatchingSink::dropped`]) rather than
/// reported per-sample. Producers that need per-sample drop feedback
/// should push the inner sink directly.
///
/// Buffered samples are forwarded when the buffer reaches the
/// configured batch size; call [`BatchingSink::flush`] before reading
/// results from the inner sink (there is no implicit flush-on-drop, so
/// an un-flushed tail is a caller bug the `pending` counter makes
/// visible, not a silent loss at an unpredictable drop point).
#[derive(Debug)]
pub struct BatchingSink<S> {
    inner: S,
    buf: Vec<Observation>,
    batch: usize,
    dropped: u64,
}

impl<S: ObservationSink> BatchingSink<S> {
    /// Wraps `inner`, forwarding every `batch` pushes at once.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(inner: S, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        BatchingSink {
            inner,
            buf: Vec::with_capacity(batch),
            batch,
            dropped: 0,
        }
    }

    /// Forwards everything buffered so far; returns how many samples
    /// the inner sink accepted in this flush.
    pub fn flush(&mut self) -> usize {
        if self.buf.is_empty() {
            return 0;
        }
        let accepted = self.inner.push_batch(&self.buf);
        self.dropped += (self.buf.len() - accepted) as u64;
        self.buf.clear();
        accepted
    }

    /// Samples buffered but not yet forwarded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Samples the inner sink shed at flush time, over this adapter's
    /// lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flushes the tail and returns the inner sink.
    pub fn into_inner(mut self) -> S {
        self.flush();
        self.inner
    }
}

impl<S: ObservationSink> ObservationSink for BatchingSink<S> {
    fn push(&mut self, observation: Observation) -> bool {
        self.buf.push(observation);
        if self.buf.len() >= self.batch {
            self.flush();
        }
        true
    }

    fn push_batch(&mut self, observations: &[Observation]) -> usize {
        for &o in observations {
            self.push(o);
        }
        observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_accepts_everything() {
        let mut sink = VecSink::new();
        for i in 0..10 {
            assert!(sink.push(Observation::at_secs(i as f64, i as f64 * 2.0)));
        }
        assert_eq!(sink.observations.len(), 10);
        assert_eq!(sink.values()[3], 6.0);
        assert_eq!(sink.observations[3].at.as_secs(), 3.0);
    }

    #[test]
    fn sink_is_object_safe() {
        fn _takes_boxed(_s: Box<dyn ObservationSink>) {}
    }

    /// Accepts the first `limit` pushes, then sheds load.
    struct Bounded {
        limit: usize,
        seen: usize,
    }

    impl ObservationSink for Bounded {
        fn push(&mut self, _: Observation) -> bool {
            self.seen += 1;
            self.seen <= self.limit
        }
    }

    #[test]
    fn tee_sink_offers_both_sides_and_reports_any_drop() {
        let mut tee = TeeSink::new(Bounded { limit: 2, seen: 0 }, VecSink::new());
        assert!(tee.push(Observation::at_secs(0.0, 1.0)));
        assert!(tee.push(Observation::at_secs(1.0, 2.0)));
        assert!(!tee.push(Observation::at_secs(2.0, 3.0)), "first side full");
        assert_eq!(
            tee.second.observations.len(),
            3,
            "a drop on one side never silences the other"
        );
    }

    #[test]
    fn default_push_batch_counts_acceptances() {
        let mut bounded = Bounded { limit: 2, seen: 0 };
        let batch: Vec<Observation> = (0..5)
            .map(|i| Observation::at_secs(i as f64, i as f64))
            .collect();
        assert_eq!(bounded.push_batch(&batch), 2, "three of five were shed");
    }

    #[test]
    fn batching_sink_forwards_full_batches_and_flushes_the_tail() {
        let mut sink = BatchingSink::new(VecSink::new(), 4);
        for i in 0..10 {
            assert!(sink.push(Observation::at_secs(i as f64, i as f64)));
        }
        assert_eq!(sink.pending(), 2, "two full batches forwarded, tail held");
        assert_eq!(sink.flush(), 2);
        assert_eq!(sink.pending(), 0);
        let inner = sink.into_inner();
        assert_eq!(inner.values(), (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn batching_sink_counts_drops_at_flush_time() {
        let mut sink = BatchingSink::new(Bounded { limit: 3, seen: 0 }, 2);
        for i in 0..6 {
            // Always `true`: drops surface in the counter, not per push.
            assert!(sink.push(Observation::at_secs(i as f64, i as f64)));
        }
        assert_eq!(sink.dropped(), 3, "everything past the limit was shed");
        assert_eq!(sink.into_inner().seen, 6, "every sample was offered");
    }
}
