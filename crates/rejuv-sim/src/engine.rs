//! The simulation engine: clock plus event queue plus run loop.

use crate::{EventId, EventQueue, SimTime};
use std::fmt;

/// A discrete-event simulation engine.
///
/// The engine owns the simulation clock and the pending-event queue.
/// Models drive it in one of two styles:
///
/// * **pull** — call [`Engine::next_event`] in a loop and dispatch on the
///   payload (what `rejuv-ecommerce` does), or
/// * **push** — call [`Engine::run`] with a handler closure and an event
///   budget.
///
/// # Example
///
/// ```
/// use rejuv_sim::{Engine, SimTime};
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimTime::from_secs(1.0), 1u32);
/// engine.schedule_in(SimTime::from_secs(2.0), 2u32);
///
/// let mut seen = Vec::new();
/// engine.run(usize::MAX, |engine, event| {
///     seen.push((engine.now().as_secs(), event));
/// });
/// assert_eq!(seen, vec![(1.0, 1), (2.0, 2)]);
/// ```
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    delivered: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            delivered: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `payload` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a model bug.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now = {}, at = {}",
            self.now,
            at
        );
        self.queue.schedule(at, payload)
    }

    /// Schedules `payload` after a `delay` relative to the current clock.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Delivers the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted; the clock then stays at
    /// the last delivered event's time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (time, payload) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.delivered += 1;
        Some((time, payload))
    }

    /// Time of the next pending event, if any, without delivering it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the queue is empty or `max_events` have been delivered,
    /// passing each event to `handler` together with `&mut self` so the
    /// handler can schedule follow-up events.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run<F>(&mut self, max_events: usize, mut handler: F) -> usize
    where
        F: FnMut(&mut Engine<E>, E),
    {
        let mut count = 0;
        while count < max_events {
            match self.next_event() {
                Some((_, payload)) => {
                    handler(self, payload);
                    count += 1;
                }
                None => break,
            }
        }
        count
    }

    /// Runs until the next event would be after `deadline` (or the queue
    /// empties), delivering events to `handler`. The clock is left at the
    /// last delivered event, never advanced past `deadline` artificially.
    ///
    /// Returns the number of events delivered.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> usize
    where
        F: FnMut(&mut Engine<E>, E),
    {
        let mut count = 0;
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let (_, payload) = self.next_event().expect("peeked event exists");
            handler(self, payload);
            count += 1;
        }
        count
    }

    /// Discards all pending events (the clock is left untouched).
    ///
    /// This is what a *rejuvenation* does to a system model: every
    /// in-flight activity is abandoned.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn clock_advances_with_events() {
        let mut e = Engine::new();
        e.schedule_at(t(1.5), "a");
        e.schedule_at(t(4.0), "b");
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.next_event().map(|(_, p)| p), Some("a"));
        assert_eq!(e.now(), t(1.5));
        assert_eq!(e.next_event().map(|(_, p)| p), Some("b"));
        assert_eq!(e.now(), t(4.0));
        assert_eq!(e.next_event(), None);
        assert_eq!(e.now(), t(4.0), "clock stays at last event");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(t(5.0), ());
        e.next_event();
        e.schedule_at(t(1.0), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule_at(t(10.0), 0);
        e.next_event();
        e.schedule_in(t(2.0), 1);
        let (time, _) = e.next_event().unwrap();
        assert_eq!(time, t(12.0));
    }

    #[test]
    fn run_respects_budget() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule_at(t(i as f64), i);
        }
        let mut seen = Vec::new();
        let n = e.run(3, |_, ev| seen.push(ev));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(e.pending(), 7);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut e = Engine::new();
        e.schedule_at(t(1.0), 0u32);
        let mut seen = Vec::new();
        e.run(usize::MAX, |engine, ev| {
            seen.push(ev);
            if ev < 3 {
                engine.schedule_in(t(1.0), ev + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(e.now(), t(4.0));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut e = Engine::new();
        for i in 1..=10 {
            e.schedule_at(t(i as f64), i);
        }
        let mut seen = Vec::new();
        let n = e.run_until(t(4.5), |_, ev| seen.push(ev));
        assert_eq!(n, 4);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(e.now(), t(4.0), "clock stops at the last delivered event");
        assert_eq!(e.pending(), 6);
        // A later call picks up where it left off.
        let n = e.run_until(t(100.0), |_, _| {});
        assert_eq!(n, 6);
    }

    #[test]
    fn run_until_with_followups_inside_window() {
        let mut e = Engine::new();
        e.schedule_at(t(1.0), 1u32);
        let mut seen = Vec::new();
        e.run_until(t(3.0), |eng, ev| {
            seen.push(ev);
            if ev < 10 {
                eng.schedule_in(t(1.0), ev + 1);
            }
        });
        // Events at t = 1, 2, 3 fit; the one at t = 4 does not.
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn cancel_through_engine() {
        let mut e = Engine::new();
        let id = e.schedule_at(t(1.0), "x");
        assert!(e.cancel(id));
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn clear_pending_abandons_events() {
        let mut e = Engine::new();
        e.schedule_at(t(1.0), 1);
        e.schedule_at(t(2.0), 2);
        e.clear_pending();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn delivered_counter() {
        let mut e = Engine::new();
        e.schedule_at(t(1.0), ());
        e.schedule_at(t(2.0), ());
        e.run(usize::MAX, |_, _| {});
        assert_eq!(e.delivered(), 2);
    }
}
