//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! This crate is the simulation substrate under `rejuv-ecommerce`, the
//! model of the DSN 2006 e-commerce system. It provides:
//!
//! * [`time::SimTime`] — a total-ordered simulation clock value,
//! * [`event::EventQueue`] — a stable priority queue of scheduled events
//!   with O(log n) scheduling and cancellation,
//! * [`engine::Engine`] — clock + queue + run loop with stop conditions,
//! * [`rng::RngStreams`] — independent, reproducible random-number streams
//!   derived from a single master seed (one stream per model component, so
//!   adding a consumer never perturbs the others),
//! * [`exec::Executor`] — a fixed-size worker pool that runs independent
//!   experiment cells in parallel with bitwise-deterministic, index-ordered
//!   results regardless of worker count,
//! * [`feed::ObservationSink`] — the live-feed bridge between
//!   engine-driven models (producers of timestamped samples) and online
//!   monitoring consumers such as `rejuv-monitor`'s supervisor shards.
//!
//! # Example
//!
//! ```
//! use rejuv_sim::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut engine = Engine::new();
//! engine.schedule_in(SimTime::from_secs(1.0), Ev::Ping);
//! engine.schedule_in(SimTime::from_secs(2.0), Ev::Pong);
//!
//! let (t1, e1) = engine.next_event().unwrap();
//! assert_eq!((t1.as_secs(), e1), (1.0, Ev::Ping));
//! assert_eq!(engine.now().as_secs(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod engine;
pub mod event;
pub mod exec;
pub mod feed;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use event::{EventId, EventQueue};
pub use exec::Executor;
pub use feed::{BatchingSink, Observation, ObservationSink, TeeSink, VecSink};
pub use rng::RngStreams;
pub use time::SimTime;
