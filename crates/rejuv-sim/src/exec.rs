//! Deterministic parallel experiment executor.
//!
//! Experiment layers (replication runners, grid searches, figure
//! sweeps) flatten their work into a list of independent *cells* — one
//! cell per `(experiment, configuration, load point, replication)`
//! tuple — and hand the list to an [`Executor`]. A fixed-size pool of
//! scoped worker threads drains the cells through an atomic cursor and
//! every result is stored at its cell index, so the gathered output is
//! **bitwise identical for any worker count** (including 1): each cell
//! derives its own RNG stream from its coordinates, never from the
//! thread that happens to execute it.
//!
//! The worker count comes from [`std::thread::available_parallelism`]
//! by default and can be pinned with the `REJUV_WORKERS` environment
//! variable (useful for benchmarking and for CI determinism checks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Name of the environment variable overriding the worker count.
pub const WORKERS_ENV: &str = "REJUV_WORKERS";

/// A fixed-size worker pool executing independent work cells by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor with exactly `workers` worker threads (clamped to at
    /// least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
        }
    }

    /// A single-threaded executor (runs cells inline, spawns nothing).
    #[must_use]
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// An executor sized from the environment: `REJUV_WORKERS` when set
    /// to a positive integer, otherwise the machine's available
    /// parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        if let Ok(raw) = std::env::var(WORKERS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return Executor::new(n);
                }
            }
        }
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Executor::new(n)
    }

    /// The number of worker threads this executor uses.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `cell` for every index in `0..cells` and returns the
    /// results in index order.
    ///
    /// `cell` must be a pure function of its index for the determinism
    /// guarantee to hold; the executor itself never reorders results.
    /// With one worker (or at most one cell) everything runs inline on
    /// the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell.
    pub fn run<T, F>(&self, cells: usize, cell: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || cells <= 1 {
            return (0..cells).map(cell).collect();
        }

        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(cells, || None);
        let results = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.min(cells);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= cells {
                        break;
                    }
                    let value = cell(index);
                    results.lock().expect("executor result lock")[index] = Some(value);
                });
            }
        });

        results
            .into_inner()
            .expect("executor result lock")
            .into_iter()
            .map(|slot| slot.expect("every cell index was visited"))
            .collect()
    }

    /// Maps `cell` over `items`, in parallel, preserving item order.
    ///
    /// Convenience wrapper over [`Executor::run`] for slice-shaped work
    /// lists.
    pub fn map<I, T, F>(&self, items: &[I], cell: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |index| cell(&items[index]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_cell_order() {
        for workers in [1, 2, 3, 8] {
            let exec = Executor::new(workers);
            let out = exec.run(25, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        // A cell function with real data dependence on the index only.
        let f = |i: usize| {
            let mut h = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
            for _ in 0..100 {
                h = h.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            h
        };
        let serial = Executor::serial().run(64, f);
        for workers in [2, 4, 8] {
            assert_eq!(Executor::new(workers).run(64, f), serial);
        }
    }

    #[test]
    fn handles_empty_and_tiny_work_lists() {
        let exec = Executor::new(4);
        assert_eq!(exec.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_matches_run() {
        let items = vec![3.0f64, 1.0, 4.0, 1.5];
        let exec = Executor::new(2);
        assert_eq!(exec.map(&items, |x| x * 2.0), vec![6.0, 2.0, 8.0, 3.0]);
    }

    #[test]
    fn workers_clamped_to_one() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::serial().workers(), 1);
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let out = Executor::new(16).run(3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
