//! The abstracted M/M/c mode and the §4.1 autocorrelation study.
//!
//! For the applicability argument of the central limit theorem, the
//! paper simulates the plain M/M/16 system (no kernel overhead, no
//! memory, no rejuvenation — steps 4–6 and 8 removed), runs five
//! replications of 100 000 transactions, discards the first 10 000
//! response times of each, and tests the lag-1 autocorrelation against
//! the 95 % white-noise band. Only one of the five replications came out
//! significant.

use crate::config::{SystemConfig, SystemConfigError};
use crate::runner::Runner;
use rejuv_stats::autocorr::AutocorrResult;
use rejuv_stats::{AutocorrStudy, StatsError};
use serde::{Deserialize, Serialize};

/// Outcome of the §4.1 autocorrelation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutocorrStudyOutcome {
    /// Arrival rate used (tx/s).
    pub lambda: f64,
    /// Per-replication estimates.
    pub replications: Vec<AutocorrResult>,
    /// How many replications were significant at the study's confidence
    /// level.
    pub significant: usize,
}

/// Runs the §4.1 autocorrelation study.
///
/// * `lambda` — arrival rate (the paper uses the maximum of interest,
///   1.6 tx/s),
/// * `runner` — replication protocol (the paper's is
///   [`Runner::paper`]),
/// * `study` — warm-up and confidence (the paper's is
///   [`AutocorrStudy::paper`]).
///
/// # Errors
///
/// Returns [`SystemConfigError`] for an invalid `lambda` (via the model
/// configuration) wrapped in [`AutocorrError`], or a statistics error if
/// a replication is shorter than the warm-up.
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::mmc_mode::{autocorrelation_study, AutocorrError};
/// use rejuv_ecommerce::Runner;
/// use rejuv_stats::AutocorrStudy;
///
/// // Scaled-down smoke version of the paper's study.
/// let outcome = autocorrelation_study(
///     1.6,
///     Runner::new(2, 5_000, 42),
///     AutocorrStudy::new(500, 0.95)?,
/// )?;
/// assert_eq!(outcome.replications.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn autocorrelation_study(
    lambda: f64,
    runner: Runner,
    study: AutocorrStudy,
) -> Result<AutocorrStudyOutcome, AutocorrError> {
    let config = SystemConfig::mmc(lambda)?;
    let raw = runner.run_point_raw_recording(config, &|| None, true);
    let mut replications = Vec::with_capacity(raw.len());
    let mut significant = 0;
    for metrics in &raw {
        let result = study.analyze(&metrics.response_times)?;
        if result.significant {
            significant += 1;
        }
        replications.push(result);
    }
    Ok(AutocorrStudyOutcome {
        lambda,
        replications,
        significant,
    })
}

/// Errors from the autocorrelation study.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AutocorrError {
    /// The model configuration was invalid.
    Config(SystemConfigError),
    /// A statistics error (replication shorter than the warm-up, …).
    Stats(StatsError),
}

impl std::fmt::Display for AutocorrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutocorrError::Config(e) => write!(f, "config error: {e}"),
            AutocorrError::Stats(e) => write!(f, "stats error: {e}"),
        }
    }
}

impl std::error::Error for AutocorrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutocorrError::Config(e) => Some(e),
            AutocorrError::Stats(e) => Some(e),
        }
    }
}

impl From<SystemConfigError> for AutocorrError {
    fn from(e: SystemConfigError) -> Self {
        AutocorrError::Config(e)
    }
}

impl From<StatsError> for AutocorrError {
    fn from(e: StatsError) -> Self {
        AutocorrError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs() {
        let outcome = autocorrelation_study(
            1.6,
            Runner::new(3, 8_000, 17),
            AutocorrStudy::new(1_000, 0.95).unwrap(),
        )
        .unwrap();
        assert_eq!(outcome.replications.len(), 3);
        assert!(outcome.significant <= 3);
        for r in &outcome.replications {
            assert_eq!(r.retained, 7_000);
            // At rho = 0.5 the lag-1 autocorrelation is small.
            assert!(r.gamma_hat.abs() < 0.2, "gamma = {}", r.gamma_hat);
        }
    }

    #[test]
    fn low_load_is_effectively_uncorrelated() {
        // With almost no queueing, response times are iid Exp(µ): the
        // autocorrelation must hug zero.
        let outcome = autocorrelation_study(
            0.2,
            Runner::new(2, 10_000, 23),
            AutocorrStudy::new(1_000, 0.95).unwrap(),
        )
        .unwrap();
        for r in &outcome.replications {
            assert!(r.gamma_hat.abs() < 0.05, "gamma = {}", r.gamma_hat);
        }
    }

    #[test]
    fn warm_up_longer_than_run_is_an_error() {
        let err = autocorrelation_study(
            1.0,
            Runner::new(1, 100, 3),
            AutocorrStudy::new(1_000, 0.95).unwrap(),
        );
        assert!(matches!(err, Err(AutocorrError::Stats(_))));
    }

    #[test]
    fn invalid_lambda_is_a_config_error() {
        let err = autocorrelation_study(
            -1.0,
            Runner::new(1, 100, 3),
            AutocorrStudy::new(10, 0.95).unwrap(),
        );
        assert!(matches!(err, Err(AutocorrError::Config(_))));
    }
}
