//! A cluster of e-commerce hosts behind a load balancer.
//!
//! The companion paper of the lineage (Avritzer, Bondi, Weyuker:
//! *"Ensuring system performance for cluster and single server
//! systems"*, JSS 2006 — reference \[2\] of the DSN paper) extends the
//! rejuvenation algorithms to clusters. This module provides that
//! substrate: `H` hosts, each an independent instance of the §3 model
//! (CPUs, heap, GC, kernel overhead), one Poisson arrival stream split
//! by a routing policy, one detector per host, and — unlike the
//! instantaneous single-host rejuvenation — a configurable *downtime*
//! during which a rejuvenating host accepts no traffic and the balancer
//! routes around it.

use crate::config::SystemConfig;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::trace::{EventTrace, SystemEvent};
use crate::workload::RateProfile;
use rand::rngs::StdRng;
use rand::Rng;
use rejuv_core::RejuvenationDetector;
use rejuv_sim::{Engine, EventId, RngStreams, SimTime};
use rejuv_stats::Exponential;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// How the load balancer picks a host for each arriving transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Cycle through the available hosts in order.
    RoundRobin,
    /// Pick a host uniformly at random.
    Random,
    /// Pick the available host with the fewest active threads
    /// (least-loaded, the policy a production balancer approximates).
    LeastActive,
}

/// Events of the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A transaction arrives at the balancer.
    Arrival,
    /// Thread `thread` on host `host` finishes processing.
    Completion { host: usize, thread: u64 },
    /// Full GC ends on `host`.
    GcEnd { host: usize },
    /// Rejuvenation downtime ends on `host`.
    HostUp { host: usize },
}

#[derive(Debug, Clone, Copy)]
struct RunningThread {
    arrival_time: SimTime,
    completion_event: EventId,
    completion_time: SimTime,
}

/// Per-host state: the §3 model minus the arrival process.
struct Host {
    queue: VecDeque<(u64, SimTime)>,
    running: HashMap<u64, RunningThread>,
    heap_used_mb: f64,
    gc_end_time: Option<SimTime>,
    gc_end_event: Option<EventId>,
    detector: Option<Box<dyn RejuvenationDetector>>,
    /// `Some(until)` while the host is down for rejuvenation.
    down_until: Option<SimTime>,
    gc_total: u64,
    rejuvenations: u64,
}

impl Host {
    fn new(detector: Option<Box<dyn RejuvenationDetector>>) -> Self {
        Host {
            queue: VecDeque::new(),
            running: HashMap::new(),
            heap_used_mb: 0.0,
            gc_end_time: None,
            gc_end_event: None,
            detector,
            down_until: None,
            gc_total: 0,
            rejuvenations: 0,
        }
    }

    fn active_threads(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    fn is_available(&self) -> bool {
        self.down_until.is_none()
    }
}

/// A cluster of `H` hosts running the §3 model behind one balancer.
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::cluster::{ClusterSystem, RoutingPolicy};
/// use rejuv_ecommerce::SystemConfig;
///
/// // Four hosts, each the paper's host model, sharing λ = 4 x 1.0 tx/s.
/// let per_host = SystemConfig::paper(1.0)?;
/// let mut cluster = ClusterSystem::new(per_host, 4, 4.0, RoutingPolicy::RoundRobin, 0.0, 7);
/// let m = cluster.run(5_000);
/// assert_eq!(m.aggregate.completed, 5_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ClusterSystem {
    /// Per-host model parameters (its `arrival_rate` field is unused; the
    /// cluster arrival rate governs).
    host_config: SystemConfig,
    hosts: Vec<Host>,
    engine: Engine<Event>,
    policy: RoutingPolicy,
    rr_next: usize,
    arrival_dist: Exponential,
    arrival_rng: StdRng,
    routing_rng: StdRng,
    service_rng: StdRng,
    service_dist: Exponential,
    profile: Option<RateProfile>,
    /// Seconds a host stays down after a rejuvenation.
    downtime_secs: f64,
    next_thread_id: u64,
    /// Transactions dropped because every host was down.
    rejected_no_host: u64,
    /// Per-host system event traces; `None` until
    /// [`ClusterSystem::enable_trace`].
    traces: Option<Vec<EventTrace>>,
}

/// Metrics of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Merged metrics over all hosts.
    pub aggregate: RunMetrics,
    /// Per-host rejuvenation counts.
    pub rejuvenations_per_host: Vec<u64>,
    /// Per-host GC counts.
    pub gc_per_host: Vec<u64>,
    /// Transactions rejected because no host was available.
    pub rejected_no_host: u64,
}

impl ClusterSystem {
    /// Creates a cluster of `hosts` identical hosts.
    ///
    /// * `host_config` — the per-host §3 parameters (CPUs, heap, …),
    /// * `cluster_arrival_rate` — total λ offered to the balancer,
    /// * `downtime_secs` — how long a rejuvenating host stays out of
    ///   rotation (0 reproduces the single-host instantaneous model).
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0` or the rates are invalid.
    pub fn new(
        host_config: SystemConfig,
        hosts: usize,
        cluster_arrival_rate: f64,
        policy: RoutingPolicy,
        downtime_secs: f64,
        seed: u64,
    ) -> Self {
        assert!(hosts > 0, "a cluster needs at least one host");
        assert!(
            downtime_secs.is_finite() && downtime_secs >= 0.0,
            "downtime must be non-negative"
        );
        let streams = RngStreams::new(seed);
        ClusterSystem {
            arrival_dist: Exponential::new(cluster_arrival_rate)
                .expect("cluster arrival rate must be positive"),
            service_dist: Exponential::new(host_config.service_rate())
                .expect("config validated the service rate"),
            hosts: (0..hosts).map(|_| Host::new(None)).collect(),
            host_config,
            engine: Engine::new(),
            policy,
            rr_next: 0,
            arrival_rng: streams.stream(0),
            routing_rng: streams.stream(1),
            service_rng: streams.stream(2),
            profile: None,
            downtime_secs,
            next_thread_id: 0,
            rejected_no_host: 0,
            traces: None,
        }
    }

    /// Starts recording per-host [`SystemEvent`]s (GC, overhead-regime
    /// crossings, rejuvenations), each host keeping at most `capacity`
    /// recent events. Export the merged host-tagged document with
    /// [`ClusterSystem::take_traces`] and
    /// [`crate::trace::write_merged_jsonl`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.traces = Some(
            (0..self.hosts.len())
                .map(|_| EventTrace::new(capacity))
                .collect(),
        );
    }

    /// The recorded trace of `host`, if tracing is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range while tracing is enabled.
    pub fn trace(&self, host: usize) -> Option<&EventTrace> {
        self.traces.as_ref().map(|t| &t[host])
    }

    /// Takes ownership of all per-host traces (disables tracing).
    pub fn take_traces(&mut self) -> Option<Vec<EventTrace>> {
        self.traces.take()
    }

    /// Attaches a detector to host `host` (replacing any existing one).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn attach_detector(&mut self, host: usize, detector: Box<dyn RejuvenationDetector>) {
        self.hosts[host].detector = Some(detector);
    }

    /// Attaches one detector per host from a factory.
    pub fn attach_detectors<F>(&mut self, mut factory: F)
    where
        F: FnMut(usize) -> Box<dyn RejuvenationDetector>,
    {
        for h in 0..self.hosts.len() {
            self.hosts[h].detector = Some(factory(h));
        }
    }

    /// Drives cluster arrivals from a time-varying profile (total rate).
    pub fn set_rate_profile(&mut self, profile: RateProfile) {
        self.arrival_dist =
            Exponential::new(profile.max_rate()).expect("validated profile has a positive max");
        self.profile = Some(profile);
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of hosts currently in rotation.
    pub fn available_hosts(&self) -> usize {
        self.hosts.iter().filter(|h| h.is_available()).count()
    }

    /// Total active threads across all hosts.
    pub fn active_threads(&self) -> usize {
        self.hosts.iter().map(Host::active_threads).sum()
    }

    /// Runs until `transactions` have terminated (completed + lost +
    /// rejected), returning per-run metrics.
    pub fn run(&mut self, transactions: u64) -> ClusterMetrics {
        let mut metrics = MetricsCollector::new(false);
        let start_time = self.engine.now();
        let gc_before: Vec<u64> = self.hosts.iter().map(|h| h.gc_total).collect();
        let rejuv_before: Vec<u64> = self.hosts.iter().map(|h| h.rejuvenations).collect();
        let rejected_before = self.rejected_no_host;

        if self.engine.pending() == 0 {
            let delay = self.arrival_dist.sample(&mut self.arrival_rng);
            self.engine
                .schedule_in(SimTime::from_secs(delay), Event::Arrival);
        }

        while metrics.total() + (self.rejected_no_host - rejected_before) < transactions {
            let Some((_, event)) = self.engine.next_event() else {
                break;
            };
            match event {
                Event::Arrival => self.on_arrival(),
                Event::Completion { host, thread } => {
                    self.on_completion(host, thread, &mut metrics)
                }
                Event::GcEnd { host } => self.on_gc_end(host),
                Event::HostUp { host } => {
                    self.hosts[host].down_until = None;
                }
            }
        }

        let aggregate = {
            let mut m = metrics;
            m.gc_count = self
                .hosts
                .iter()
                .zip(&gc_before)
                .map(|(h, &b)| h.gc_total - b)
                .sum();
            m.rejuvenation_count = self
                .hosts
                .iter()
                .zip(&rejuv_before)
                .map(|(h, &b)| h.rejuvenations - b)
                .sum();
            m.finish((self.engine.now() - start_time).as_secs())
        };
        ClusterMetrics {
            aggregate,
            rejuvenations_per_host: self
                .hosts
                .iter()
                .zip(&rejuv_before)
                .map(|(h, &b)| h.rejuvenations - b)
                .collect(),
            gc_per_host: self
                .hosts
                .iter()
                .zip(&gc_before)
                .map(|(h, &b)| h.gc_total - b)
                .collect(),
            rejected_no_host: self.rejected_no_host - rejected_before,
        }
    }

    fn on_arrival(&mut self) {
        let delay = self.arrival_dist.sample(&mut self.arrival_rng);
        self.engine
            .schedule_in(SimTime::from_secs(delay), Event::Arrival);

        if let Some(profile) = &self.profile {
            let now = self.engine.now().as_secs();
            let accept_p = profile.rate_at(now) / profile.max_rate();
            if self.arrival_rng.random::<f64>() >= accept_p {
                return;
            }
        }

        let Some(host) = self.pick_host() else {
            self.rejected_no_host += 1;
            return;
        };

        let id = self.next_thread_id;
        self.next_thread_id += 1;
        let now = self.engine.now();
        let before = self.hosts[host].active_threads();
        self.hosts[host].queue.push_back((id, now));
        self.note_active_transition(host, before);
        self.try_dispatch(host);
    }

    /// Emits overhead-regime crossing events into the host's trace,
    /// comparing the active-thread count before a change to the count
    /// now — the per-host mirror of the single-host model's hook.
    fn note_active_transition(&mut self, host: usize, before: usize) {
        let Some(threshold) = self.host_config.kernel_threshold() else {
            return;
        };
        let Some(traces) = &mut self.traces else {
            return;
        };
        let after = self.hosts[host].active_threads();
        let at = self.engine.now().as_secs();
        if before <= threshold && after > threshold {
            traces[host].record(SystemEvent::OverheadEntered {
                at,
                active_threads: after,
            });
        } else if before > threshold && after <= threshold {
            traces[host].record(SystemEvent::OverheadLeft {
                at,
                active_threads: after,
            });
        }
    }

    /// Routing decision over available hosts; `None` if all are down.
    fn pick_host(&mut self) -> Option<usize> {
        let available: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| self.hosts[h].is_available())
            .collect();
        if available.is_empty() {
            return None;
        }
        Some(match self.policy {
            RoutingPolicy::RoundRobin => {
                // Advance the cursor to the next available host.
                let mut pick = self.rr_next % self.hosts.len();
                while !self.hosts[pick].is_available() {
                    pick = (pick + 1) % self.hosts.len();
                }
                self.rr_next = pick + 1;
                pick
            }
            RoutingPolicy::Random => available[self.routing_rng.random_range(0..available.len())],
            RoutingPolicy::LeastActive => available
                .into_iter()
                .min_by_key(|&h| self.hosts[h].active_threads())
                .expect("available is non-empty"),
        })
    }

    fn try_dispatch(&mut self, host: usize) {
        while self.hosts[host].running.len() < self.host_config.cpus() {
            let Some((id, arrival_time)) = self.hosts[host].queue.pop_front() else {
                break;
            };
            self.start_service(host, id, arrival_time);
        }
    }

    fn start_service(&mut self, host: usize, id: u64, arrival_time: SimTime) {
        let now = self.engine.now();
        let mut processing = self.service_dist.sample(&mut self.service_rng);
        if let Some(threshold) = self.host_config.kernel_threshold() {
            if self.hosts[host].active_threads() + 1 > threshold {
                processing *= self.host_config.kernel_factor();
            }
        }
        let completion_time = now + SimTime::from_secs(processing);
        let completion_event = self
            .engine
            .schedule_at(completion_time, Event::Completion { host, thread: id });
        self.hosts[host].running.insert(
            id,
            RunningThread {
                arrival_time,
                completion_event,
                completion_time,
            },
        );

        if let Some(mem) = self.host_config.memory().copied() {
            self.hosts[host].heap_used_mb += mem.alloc_mb;
            let free = mem.heap_mb - self.hosts[host].heap_used_mb;
            if free < mem.gc_free_threshold_mb && self.hosts[host].gc_end_time.is_none() {
                self.start_gc(host, mem.gc_pause_secs);
            }
        }
    }

    fn start_gc(&mut self, host: usize, pause_secs: f64) {
        self.hosts[host].gc_total += 1;
        if let Some(traces) = &mut self.traces {
            traces[host].record(SystemEvent::GcStarted {
                at: self.engine.now().as_secs(),
                heap_used_mb: self.hosts[host].heap_used_mb,
            });
        }
        let now = self.engine.now();
        let gc_end = now + SimTime::from_secs(pause_secs);
        self.hosts[host].gc_end_time = Some(gc_end);
        self.hosts[host].gc_end_event =
            Some(self.engine.schedule_at(gc_end, Event::GcEnd { host }));

        let pause = SimTime::from_secs(pause_secs);
        let ids: Vec<u64> = self.hosts[host].running.keys().copied().collect();
        for id in ids {
            let thread = self.hosts[host].running.get_mut(&id).expect("id from keys");
            self.engine.cancel(thread.completion_event);
            thread.completion_time += pause;
            let completion_time = thread.completion_time;
            let event = self
                .engine
                .schedule_at(completion_time, Event::Completion { host, thread: id });
            self.hosts[host]
                .running
                .get_mut(&id)
                .expect("id from keys")
                .completion_event = event;
        }
    }

    fn on_gc_end(&mut self, host: usize) {
        self.hosts[host].gc_end_time = None;
        self.hosts[host].gc_end_event = None;
        if let Some(mem) = self.host_config.memory() {
            let live = self.hosts[host].running.len() as f64 * mem.alloc_mb;
            let reclaimed = (self.hosts[host].heap_used_mb - live).max(0.0);
            self.hosts[host].heap_used_mb = live;
            if let Some(traces) = &mut self.traces {
                traces[host].record(SystemEvent::GcEnded {
                    at: self.engine.now().as_secs(),
                    reclaimed_mb: reclaimed,
                });
            }
        }
    }

    fn on_completion(&mut self, host: usize, thread: u64, metrics: &mut MetricsCollector) {
        let before = self.hosts[host].active_threads();
        let Some(t) = self.hosts[host].running.remove(&thread) else {
            return;
        };
        self.note_active_transition(host, before);
        let now = self.engine.now();
        let response_time = (now - t.arrival_time).as_secs();
        metrics.record_completion(response_time);
        self.try_dispatch(host);

        let rejuvenate = match &mut self.hosts[host].detector {
            Some(d) => d.observe_at(now.as_secs(), response_time).is_rejuvenate(),
            None => false,
        };
        if rejuvenate {
            self.rejuvenate(host, metrics);
        }
    }

    fn rejuvenate(&mut self, host: usize, metrics: &mut MetricsCollector) {
        let h = &mut self.hosts[host];
        h.rejuvenations += 1;
        metrics.rejuvenation_count += 1;
        let before = h.active_threads();
        metrics.lost += before as u64;
        for (_, thread) in h.running.drain() {
            self.engine.cancel(thread.completion_event);
        }
        h.queue.clear();
        h.heap_used_mb = 0.0;
        if let Some(gc_event) = h.gc_end_event.take() {
            self.engine.cancel(gc_event);
        }
        h.gc_end_time = None;

        if self.downtime_secs > 0.0 {
            let up_at = self.engine.now() + SimTime::from_secs(self.downtime_secs);
            h.down_until = Some(up_at);
            self.engine.schedule_at(up_at, Event::HostUp { host });
        }

        if let Some(traces) = &mut self.traces {
            traces[host].record(SystemEvent::Rejuvenated {
                at: self.engine.now().as_secs(),
                lost: before as u64,
            });
        }
        self.note_active_transition(host, before);
    }
}

impl fmt::Debug for ClusterSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSystem")
            .field("hosts", &self.hosts.len())
            .field("available", &self.available_hosts())
            .field("policy", &self.policy)
            .field("now", &self.engine.now())
            .field("active_threads", &self.active_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{Sraa, SraaConfig};

    fn sraa(n: usize, k: usize, d: u32) -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(n)
                .buckets(k)
                .depth(d)
                .build()
                .unwrap(),
        ))
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_panics() {
        let cfg = SystemConfig::mmc(1.0).unwrap();
        let _ = ClusterSystem::new(cfg, 0, 1.0, RoutingPolicy::RoundRobin, 0.0, 1);
    }

    #[test]
    fn light_load_cluster_matches_single_host_statistics() {
        // 4 hosts x 16 CPUs at λ_total = 1.6 (0.4 per host): response
        // times sit at the no-queueing mean of 5 s for every policy.
        for policy in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Random,
            RoutingPolicy::LeastActive,
        ] {
            let cfg = SystemConfig::mmc(1.0).unwrap();
            let mut cluster = ClusterSystem::new(cfg, 4, 1.6, policy, 0.0, 2);
            let m = cluster.run(20_000);
            assert_eq!(m.aggregate.completed, 20_000);
            assert!(
                (m.aggregate.mean_response_time - 5.0).abs() < 0.2,
                "{policy:?}: {}",
                m.aggregate.mean_response_time
            );
            assert_eq!(m.rejected_no_host, 0);
        }
    }

    #[test]
    fn round_robin_spreads_evenly() {
        // Paper hosts (with heap/GC) and no detectors: the leak model
        // makes per-host GC counts a clean proxy for per-host throughput.
        let cfg = SystemConfig::paper(1.0).unwrap();
        let mut cluster = ClusterSystem::new(cfg, 4, 1.6, RoutingPolicy::RoundRobin, 0.0, 3);
        let m = cluster.run(10_000);
        // Every host should see roughly a quarter of the work — GC counts
        // are a proxy for per-host throughput under the leak model.
        let total: u64 = m.gc_per_host.iter().sum();
        assert!(total > 0);
        for &g in &m.gc_per_host {
            assert!(
                (g as f64 - total as f64 / 4.0).abs() <= total as f64 / 4.0 * 0.5 + 2.0,
                "per-host GCs skewed: {:?}",
                m.gc_per_host
            );
        }
    }

    #[test]
    fn cluster_trace_records_per_host_and_merges_deterministically() {
        let cfg = SystemConfig::paper(1.0).unwrap();
        let run = || {
            let mut c = ClusterSystem::new(cfg, 3, 3.0, RoutingPolicy::LeastActive, 30.0, 9);
            c.attach_detectors(|_| sraa(2, 5, 3));
            c.enable_trace(65_536);
            let m = c.run(10_000);
            (m, c.take_traces().expect("tracing was enabled"))
        };
        let (m, traces) = run();
        assert_eq!(traces.len(), 3);

        // Per-host counters line up with the run metrics.
        for (host, trace) in traces.iter().enumerate() {
            assert_eq!(
                trace.counters().rejuvenations,
                m.rejuvenations_per_host[host],
                "host {host} rejuvenation counter"
            );
            assert_eq!(
                trace.counters().gc_started,
                m.gc_per_host[host],
                "host {host} GC counter"
            );
        }
        assert!(
            traces.iter().any(|t| t.counters().gc_started > 0),
            "the paper config must trigger GCs"
        );

        // The merged document: one header per host, then every event
        // host-tagged in nondecreasing time order.
        let merged = crate::trace::merged_jsonl_lines(&traces);
        let events: usize = traces.iter().map(|t| t.events().count()).sum();
        assert_eq!(merged.len(), 3 + events);
        for (host, line) in merged.iter().take(3).enumerate() {
            assert!(
                line.starts_with(&format!("{{\"host\":{host},\"events\":")),
                "header {host}: {line}"
            );
        }
        let times: Vec<f64> = merged[3..]
            .iter()
            .map(|line| {
                let at = line.split("\"at\":").nth(1).expect("event line has at");
                at.split([',', '}'])
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .expect("at parses")
            })
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "merged events must be time-ordered"
        );

        // Same seed, second run: bitwise-identical document.
        let (_, traces2) = run();
        assert_eq!(merged, crate::trace::merged_jsonl_lines(&traces2));
    }

    #[test]
    fn determinism() {
        let cfg = SystemConfig::paper(1.0).unwrap();
        let run = |seed| {
            let mut c = ClusterSystem::new(cfg, 3, 3.0, RoutingPolicy::LeastActive, 30.0, seed);
            c.attach_detectors(|_| sraa(2, 5, 3));
            c.run(10_000)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(
            run(9).aggregate.mean_response_time,
            run(10).aggregate.mean_response_time
        );
    }

    #[test]
    fn downtime_takes_host_out_of_rotation() {
        let cfg = SystemConfig::mmc(1.0).unwrap();
        let mut cluster = ClusterSystem::new(cfg, 2, 1.0, RoutingPolicy::RoundRobin, 500.0, 5);
        // Host 0 fires on its first observation and goes down for 500 s.
        cluster.attach_detector(0, sraa(1, 1, 1));
        let _ = cluster.run(200);
        // At some point during the run host 0 was down; the run completes
        // regardless because host 1 keeps serving.
        assert!(cluster.hosts() == 2);
        let m = cluster.run(2_000);
        assert_eq!(m.rejected_no_host, 0, "host 1 must absorb the load");
    }

    #[test]
    fn all_hosts_down_rejects_arrivals() {
        // Single-host cluster with downtime: while it is down, arrivals
        // are rejected and counted.
        let cfg = SystemConfig::mmc(1.0).unwrap();
        let mut cluster = ClusterSystem::new(cfg, 1, 2.0, RoutingPolicy::Random, 1_000.0, 6);
        cluster.attach_detector(0, sraa(1, 1, 1));
        let m = cluster.run(2_000);
        assert!(m.rejected_no_host > 0, "downtime must reject arrivals");
        assert!(m.aggregate.rejuvenation_count >= 1);
    }

    #[test]
    fn least_active_beats_random_at_high_load() {
        // Classic balancing result: least-active routing yields lower
        // response times than random splitting under load.
        let cfg = SystemConfig::mmc(1.0).unwrap();
        let run = |policy| {
            let mut c = ClusterSystem::new(cfg, 4, 11.2, policy, 0.0, 7);
            c.run(40_000).aggregate.mean_response_time
        };
        let random = run(RoutingPolicy::Random);
        let least = run(RoutingPolicy::LeastActive);
        assert!(least < random, "least {least} vs random {random}");
    }

    #[test]
    fn per_host_detectors_control_cluster_under_overload() {
        let cfg = SystemConfig::paper(1.0).unwrap();
        let total_lambda = 4.0 * 1.8; // 9 CPUs of load per host
        let bare = {
            let mut c = ClusterSystem::new(cfg, 4, total_lambda, RoutingPolicy::RoundRobin, 0.0, 8);
            c.run(60_000).aggregate.mean_response_time
        };
        let guarded = {
            let mut c =
                ClusterSystem::new(cfg, 4, total_lambda, RoutingPolicy::RoundRobin, 60.0, 8);
            c.attach_detectors(|_| sraa(2, 5, 3));
            c.run(60_000)
        };
        assert!(
            guarded.aggregate.mean_response_time * 2.0 < bare,
            "guarded {} vs bare {bare}",
            guarded.aggregate.mean_response_time
        );
        assert!(guarded.aggregate.rejuvenation_count > 0);
        // Under deep overload all four hosts occasionally rejuvenate at
        // once; the resulting rejected fraction must stay marginal.
        assert!(
            (guarded.rejected_no_host as f64) < 0.01 * 60_000.0,
            "rejected {}",
            guarded.rejected_no_host
        );
    }
}
