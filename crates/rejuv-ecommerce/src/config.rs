//! Configuration of the e-commerce system model.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced when validating a [`SystemConfig`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SystemConfigError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
}

impl fmt::Display for SystemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemConfigError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "invalid parameter {name} = {value}: expected {expected}"),
        }
    }
}

impl Error for SystemConfigError {}

/// The parameters of the §3 simulation model.
///
/// Use [`SystemConfig::paper`] for the paper's system and
/// [`SystemConfig::mmc`] for the abstracted M/M/c variant of §4.1
/// (no kernel overhead, no memory/GC).
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::SystemConfig;
///
/// let c = SystemConfig::paper(1.6)?;
/// assert_eq!(c.cpus(), 16);
/// assert_eq!(c.service_rate(), 0.2);
/// assert!((c.offered_load_cpus() - 8.0).abs() < 1e-12);
/// # Ok::<(), rejuv_ecommerce::config::SystemConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    cpus: usize,
    arrival_rate: f64,
    service_rate: f64,
    kernel_threshold: Option<usize>,
    kernel_factor: f64,
    memory: Option<MemoryConfig>,
}

/// Heap / garbage-collection parameters of the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Total JVM heap, in MB (paper: 3 GB = 3072 MB).
    pub heap_mb: f64,
    /// Memory allocated by each transaction when it obtains a CPU
    /// (paper: 10 MB).
    pub alloc_mb: f64,
    /// A full GC is scheduled when the free heap drops below this
    /// (paper: 100 MB).
    pub gc_free_threshold_mb: f64,
    /// Duration of a full GC, during which every running thread is
    /// delayed (paper: 60 s for the 3 GB heap).
    pub gc_pause_secs: f64,
}

impl MemoryConfig {
    /// The paper's heap parameters.
    pub fn paper() -> Self {
        MemoryConfig {
            heap_mb: 3072.0,
            alloc_mb: 10.0,
            gc_free_threshold_mb: 100.0,
            gc_pause_secs: 60.0,
        }
    }
}

impl SystemConfig {
    /// The full §3 system at the given arrival rate `λ` (tx/s): 16 CPUs,
    /// `µ = 0.2`, kernel overhead ×2 above 50 active threads, and the
    /// paper's heap.
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError`] if `lambda` is not positive and
    /// finite.
    pub fn paper(lambda: f64) -> Result<Self, SystemConfigError> {
        SystemConfig::new(16, lambda, 0.2, Some(50), 2.0, Some(MemoryConfig::paper()))
    }

    /// The full §3 system at an offered load expressed in "CPUs"
    /// (`λ = load · µ`), the x-axis of the paper's Figs. 9–16.
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError`] if the resulting `λ` is invalid.
    pub fn paper_at_load(load_cpus: f64) -> Result<Self, SystemConfigError> {
        SystemConfig::paper(load_cpus * 0.2)
    }

    /// The abstracted M/M/16 system of §4.1: no kernel overhead, no
    /// memory or GC.
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError`] if `lambda` is invalid.
    pub fn mmc(lambda: f64) -> Result<Self, SystemConfigError> {
        SystemConfig::new(16, lambda, 0.2, None, 1.0, None)
    }

    /// Fully general constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError`] if any parameter is out of domain.
    pub fn new(
        cpus: usize,
        arrival_rate: f64,
        service_rate: f64,
        kernel_threshold: Option<usize>,
        kernel_factor: f64,
        memory: Option<MemoryConfig>,
    ) -> Result<Self, SystemConfigError> {
        if cpus == 0 {
            return Err(SystemConfigError::InvalidParameter {
                name: "cpus",
                value: 0.0,
                expected: "at least one CPU",
            });
        }
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(SystemConfigError::InvalidParameter {
                name: "arrival_rate",
                value: arrival_rate,
                expected: "a positive finite rate",
            });
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(SystemConfigError::InvalidParameter {
                name: "service_rate",
                value: service_rate,
                expected: "a positive finite rate",
            });
        }
        if !(kernel_factor.is_finite() && kernel_factor >= 1.0) {
            return Err(SystemConfigError::InvalidParameter {
                name: "kernel_factor",
                value: kernel_factor,
                expected: "a multiplier >= 1",
            });
        }
        if let Some(m) = &memory {
            if !(m.heap_mb.is_finite() && m.heap_mb > 0.0) {
                return Err(SystemConfigError::InvalidParameter {
                    name: "heap_mb",
                    value: m.heap_mb,
                    expected: "a positive heap size",
                });
            }
            if !(m.alloc_mb.is_finite() && m.alloc_mb > 0.0 && m.alloc_mb <= m.heap_mb) {
                return Err(SystemConfigError::InvalidParameter {
                    name: "alloc_mb",
                    value: m.alloc_mb,
                    expected: "a positive allocation not exceeding the heap",
                });
            }
            if !(m.gc_free_threshold_mb.is_finite() && m.gc_free_threshold_mb >= 0.0) {
                return Err(SystemConfigError::InvalidParameter {
                    name: "gc_free_threshold_mb",
                    value: m.gc_free_threshold_mb,
                    expected: "a non-negative threshold",
                });
            }
            if !(m.gc_pause_secs.is_finite() && m.gc_pause_secs >= 0.0) {
                return Err(SystemConfigError::InvalidParameter {
                    name: "gc_pause_secs",
                    value: m.gc_pause_secs,
                    expected: "a non-negative pause",
                });
            }
        }
        Ok(SystemConfig {
            cpus,
            arrival_rate,
            service_rate,
            kernel_threshold,
            kernel_factor,
            memory,
        })
    }

    /// Number of CPUs (servers).
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Arrival rate `λ` (tx/s).
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Per-CPU service rate `µ` (tx/s).
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Offered load `λ/µ` in CPUs — the x-axis of the paper's figures.
    pub fn offered_load_cpus(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Active-thread count above which the kernel-overhead multiplier
    /// applies, if enabled.
    pub fn kernel_threshold(&self) -> Option<usize> {
        self.kernel_threshold
    }

    /// Processing-time multiplier applied above the kernel threshold.
    pub fn kernel_factor(&self) -> f64 {
        self.kernel_factor
    }

    /// Heap/GC parameters, or `None` for the abstracted M/M/c mode.
    pub fn memory(&self) -> Option<&MemoryConfig> {
        self.memory.as_ref()
    }

    /// Returns a copy with a different arrival rate (for load sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SystemConfigError`] if `lambda` is invalid.
    pub fn with_arrival_rate(&self, lambda: f64) -> Result<Self, SystemConfigError> {
        SystemConfig::new(
            self.cpus,
            lambda,
            self.service_rate,
            self.kernel_threshold,
            self.kernel_factor,
            self.memory,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SystemConfig::paper(1.6).unwrap();
        assert_eq!(c.cpus(), 16);
        assert_eq!(c.service_rate(), 0.2);
        assert_eq!(c.kernel_threshold(), Some(50));
        assert_eq!(c.kernel_factor(), 2.0);
        let m = c.memory().unwrap();
        assert_eq!(m.heap_mb, 3072.0);
        assert_eq!(m.alloc_mb, 10.0);
        assert_eq!(m.gc_free_threshold_mb, 100.0);
        assert_eq!(m.gc_pause_secs, 60.0);
    }

    #[test]
    fn load_conversion() {
        let c = SystemConfig::paper_at_load(9.0).unwrap();
        assert!((c.arrival_rate() - 1.8).abs() < 1e-12);
        assert!((c.offered_load_cpus() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn mmc_mode_disables_everything() {
        let c = SystemConfig::mmc(1.6).unwrap();
        assert_eq!(c.kernel_threshold(), None);
        assert!(c.memory().is_none());
    }

    #[test]
    fn validation() {
        assert!(SystemConfig::paper(0.0).is_err());
        assert!(SystemConfig::paper(f64::NAN).is_err());
        assert!(SystemConfig::new(0, 1.0, 1.0, None, 1.0, None).is_err());
        assert!(SystemConfig::new(1, 1.0, 1.0, None, 0.5, None).is_err());
        let bad_mem = MemoryConfig {
            heap_mb: 100.0,
            alloc_mb: 200.0,
            gc_free_threshold_mb: 10.0,
            gc_pause_secs: 1.0,
        };
        assert!(SystemConfig::new(1, 1.0, 1.0, None, 1.0, Some(bad_mem)).is_err());
    }

    #[test]
    fn with_arrival_rate_preserves_everything_else() {
        let c = SystemConfig::paper(1.6).unwrap();
        let c2 = c.with_arrival_rate(0.4).unwrap();
        assert_eq!(c2.arrival_rate(), 0.4);
        assert_eq!(c2.cpus(), c.cpus());
        assert_eq!(c2.memory(), c.memory());
        assert!(c.with_arrival_rate(-1.0).is_err());
    }
}
