//! Metrics collected over one simulation run.

use rejuv_stats::OnlineStats;
use serde::{Deserialize, Serialize};

/// Counters and summaries produced by one run of the e-commerce model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Transactions that completed service and produced a response time.
    pub completed: u64,
    /// Transactions terminated by rejuvenations (the paper's cost
    /// metric).
    pub lost: u64,
    /// Mean response time over completed transactions, seconds.
    pub mean_response_time: f64,
    /// Sample standard deviation of the response time.
    pub response_time_std_dev: f64,
    /// Largest observed response time.
    pub max_response_time: f64,
    /// Number of full garbage collections that occurred.
    pub gc_count: u64,
    /// Number of rejuvenations triggered.
    pub rejuvenation_count: u64,
    /// Simulated seconds the run covered.
    pub sim_duration_secs: f64,
    /// Time-weighted average number of active threads (`L` in Little's
    /// law). Zero when the model does not track it.
    pub mean_active_threads: f64,
    /// The individual response times in completion order (empty unless
    /// recording was enabled).
    pub response_times: Vec<f64>,
}

impl RunMetrics {
    /// Fraction of transactions lost:
    /// `lost / (completed + lost)`, or 0 for an empty run.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.completed + self.lost;
        if total == 0 {
            0.0
        } else {
            self.lost as f64 / total as f64
        }
    }

    /// Effective throughput over the run, completed transactions per
    /// simulated second.
    pub fn throughput(&self) -> f64 {
        if self.sim_duration_secs > 0.0 {
            self.completed as f64 / self.sim_duration_secs
        } else {
            0.0
        }
    }
}

/// Accumulates the metrics during a run.
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsCollector {
    pub stats: OnlineStats,
    pub lost: u64,
    pub gc_count: u64,
    pub rejuvenation_count: u64,
    pub record: bool,
    pub response_times: Vec<f64>,
}

impl MetricsCollector {
    pub fn new(record: bool) -> Self {
        MetricsCollector::with_capacity(record, 0)
    }

    /// Like [`Self::new`], pre-sizing the response-time buffer for
    /// `expected` completions so recording runs never reallocate
    /// mid-simulation.
    pub fn with_capacity(record: bool, expected: usize) -> Self {
        MetricsCollector {
            stats: OnlineStats::new(),
            lost: 0,
            gc_count: 0,
            rejuvenation_count: 0,
            record,
            response_times: if record {
                Vec::with_capacity(expected)
            } else {
                Vec::new()
            },
        }
    }

    pub fn record_completion(&mut self, response_time: f64) {
        self.stats.push(response_time);
        if self.record {
            self.response_times.push(response_time);
        }
    }

    pub fn total(&self) -> u64 {
        self.stats.count() + self.lost
    }

    pub fn finish(self, sim_duration_secs: f64) -> RunMetrics {
        self.finish_with_active(sim_duration_secs, 0.0)
    }

    pub fn finish_with_active(
        self,
        sim_duration_secs: f64,
        mean_active_threads: f64,
    ) -> RunMetrics {
        RunMetrics {
            completed: self.stats.count(),
            lost: self.lost,
            mean_response_time: self.stats.mean(),
            response_time_std_dev: self.stats.sample_std_dev(),
            max_response_time: self.stats.max().unwrap_or(0.0),
            gc_count: self.gc_count,
            rejuvenation_count: self.rejuvenation_count,
            sim_duration_secs,
            mean_active_threads,
            response_times: self.response_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_fraction_edge_cases() {
        let m = RunMetrics {
            completed: 0,
            lost: 0,
            mean_response_time: 0.0,
            response_time_std_dev: 0.0,
            max_response_time: 0.0,
            gc_count: 0,
            rejuvenation_count: 0,
            sim_duration_secs: 0.0,
            mean_active_threads: 0.0,
            response_times: Vec::new(),
        };
        assert_eq!(m.loss_fraction(), 0.0);
        assert_eq!(m.throughput(), 0.0);
    }

    #[test]
    fn collector_accumulates() {
        let mut c = MetricsCollector::new(true);
        c.record_completion(2.0);
        c.record_completion(4.0);
        c.lost = 2;
        c.gc_count = 1;
        assert_eq!(c.total(), 4);
        let m = c.finish(100.0);
        assert_eq!(m.completed, 2);
        assert_eq!(m.lost, 2);
        assert_eq!(m.mean_response_time, 3.0);
        assert_eq!(m.loss_fraction(), 0.5);
        assert_eq!(m.throughput(), 0.02);
        assert_eq!(m.response_times, vec![2.0, 4.0]);
        assert_eq!(m.max_response_time, 4.0);
    }

    #[test]
    fn recording_can_be_disabled() {
        let mut c = MetricsCollector::new(false);
        c.record_completion(1.0);
        let m = c.finish(1.0);
        assert!(m.response_times.is_empty());
        assert_eq!(m.completed, 1);
    }
}
