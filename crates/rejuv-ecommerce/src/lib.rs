//! Discrete-event model of the DSN 2006 multi-tier e-commerce system.
//!
//! §3 of the paper describes the simulation substrate used for every
//! experiment: a 16-CPU Java system with a 3 GB heap, exponential
//! arrivals and service (`µ = 0.2` tx/s), a ×2 kernel-overhead penalty
//! when more than 50 threads are active, a 10 MB allocation per
//! transaction, and a 60-second stop-the-world garbage collection when
//! the free heap drops under 100 MB. A rejuvenation terminates every
//! in-flight thread (those transactions are *lost*) and releases all
//! CPU and memory resources.
//!
//! * [`config::SystemConfig`] — the model parameters (paper defaults via
//!   [`config::SystemConfig::paper`]),
//! * [`model::EcommerceSystem`] — the event-driven model itself,
//! * [`metrics::RunMetrics`] — per-run counters (average response time,
//!   loss fraction, GC and rejuvenation counts),
//! * [`runner`] — replication runner and parallel load sweeps
//!   (5 × 100 000 transactions, as in §5),
//! * [`mmc_mode`] — the "abstracted" pure M/M/c mode of §4.1 used for
//!   the autocorrelation study.
//!
//! # Example
//!
//! ```
//! use rejuv_core::{Sraa, SraaConfig};
//! use rejuv_ecommerce::{EcommerceSystem, SystemConfig};
//!
//! // Offered load 8 CPUs (λ = 1.6 tx/s) with an SRAA detector.
//! let config = SystemConfig::paper(1.6)?;
//! let sraa = SraaConfig::builder(5.0, 5.0)
//!     .sample_size(2).buckets(5).depth(3)
//!     .build()?;
//! let mut system = EcommerceSystem::new(config, 42);
//! system.attach_detector(Box::new(Sraa::new(sraa)));
//! let metrics = system.run(10_000);
//! assert_eq!(metrics.completed + metrics.lost, 10_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cluster;
pub mod config;
pub mod metrics;
pub mod mmc_mode;
pub mod model;
pub mod runner;
pub mod trace;
pub mod workload;

pub use cluster::{ClusterMetrics, ClusterSystem, RoutingPolicy};
pub use config::SystemConfig;
pub use metrics::RunMetrics;
pub use model::EcommerceSystem;
pub use runner::{aggregate_point, DetectorFactory, ExperimentResult, LoadPoint, Runner};
pub use workload::RateProfile;
