//! Structured event tracing for the e-commerce model.
//!
//! Production monitoring needs to answer *why* a rejuvenation fired:
//! did a GC pause push the system over the kernel-overhead knee, or did
//! a burst do it alone? [`EventTrace`] is a bounded ring buffer of the
//! model's state-change events (GC start/end, overhead-regime entry and
//! exit, rejuvenations) with lifetime counters, cheap enough to leave
//! enabled.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{self, Write};

/// One state-change event of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SystemEvent {
    /// A full garbage collection began.
    GcStarted {
        /// Simulation time, seconds.
        at: f64,
        /// Heap in use when the collection was triggered.
        heap_used_mb: f64,
    },
    /// A full garbage collection finished.
    GcEnded {
        /// Simulation time, seconds.
        at: f64,
        /// Megabytes of garbage reclaimed.
        reclaimed_mb: f64,
    },
    /// The active-thread count rose above the kernel-overhead threshold.
    OverheadEntered {
        /// Simulation time, seconds.
        at: f64,
        /// Active threads at the crossing.
        active_threads: usize,
    },
    /// The active-thread count fell back to the threshold or below.
    OverheadLeft {
        /// Simulation time, seconds.
        at: f64,
        /// Active threads at the crossing.
        active_threads: usize,
    },
    /// A rejuvenation was carried out.
    Rejuvenated {
        /// Simulation time, seconds.
        at: f64,
        /// Transactions terminated by this rejuvenation.
        lost: u64,
    },
}

impl SystemEvent {
    /// Simulation time of the event.
    pub fn at(&self) -> f64 {
        match *self {
            SystemEvent::GcStarted { at, .. }
            | SystemEvent::GcEnded { at, .. }
            | SystemEvent::OverheadEntered { at, .. }
            | SystemEvent::OverheadLeft { at, .. }
            | SystemEvent::Rejuvenated { at, .. } => at,
        }
    }
}

/// Lifetime event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceCounters {
    /// Garbage collections started.
    pub gc_started: u64,
    /// Garbage collections finished.
    pub gc_ended: u64,
    /// Times the overhead regime was entered.
    pub overhead_entered: u64,
    /// Times the overhead regime was left.
    pub overhead_left: u64,
    /// Rejuvenations carried out.
    pub rejuvenations: u64,
}

/// A bounded ring buffer of [`SystemEvent`]s plus lifetime counters.
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::trace::{EventTrace, SystemEvent};
///
/// let mut trace = EventTrace::new(2);
/// trace.record(SystemEvent::Rejuvenated { at: 1.0, lost: 3 });
/// trace.record(SystemEvent::Rejuvenated { at: 2.0, lost: 4 });
/// trace.record(SystemEvent::Rejuvenated { at: 3.0, lost: 5 });
/// assert_eq!(trace.events().count(), 2); // oldest evicted
/// assert_eq!(trace.counters().rejuvenations, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTrace {
    capacity: usize,
    events: VecDeque<SystemEvent>,
    counters: TraceCounters,
}

impl EventTrace {
    /// Creates a trace retaining at most `capacity` recent events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4_096)),
            counters: TraceCounters::default(),
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn record(&mut self, event: SystemEvent) {
        match event {
            SystemEvent::GcStarted { .. } => self.counters.gc_started += 1,
            SystemEvent::GcEnded { .. } => self.counters.gc_ended += 1,
            SystemEvent::OverheadEntered { .. } => self.counters.overhead_entered += 1,
            SystemEvent::OverheadLeft { .. } => self.counters.overhead_left += 1,
            SystemEvent::Rejuvenated { .. } => self.counters.rejuvenations += 1,
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SystemEvent> {
        self.events.iter()
    }

    /// Lifetime counters (never evicted).
    pub fn counters(&self) -> TraceCounters {
        self.counters
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops retained events, keeping the counters.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// The retained events rendered as JSON lines, oldest first — the
    /// interchange format `monitord --replay` and external tooling
    /// consume.
    pub fn jsonl_lines(&self) -> impl Iterator<Item = String> + '_ {
        self.events.iter().map(|event| {
            serde_json::to_string(event).expect("SystemEvent serialisation cannot fail")
        })
    }

    /// Writes the retained events as JSONL (one event per line, oldest
    /// first) to `writer`, returning the number of lines written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_jsonl<W: Write>(&self, writer: &mut W) -> io::Result<usize> {
        let mut written = 0;
        for line in self.jsonl_lines() {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            written += 1;
        }
        Ok(written)
    }
}

/// Renders per-host cluster traces as one host-tagged JSONL document
/// with deterministic merged ordering.
///
/// The document starts with one **header line per host** (host index,
/// retained event count, lifetime counters), in host order, followed
/// by every retained event tagged with its host:
///
/// ```text
/// {"host":0,"events":12,"counters":{...}}
/// {"host":1,"events":9,"counters":{...}}
/// {"host":1,"event":{"GcStarted":{...}}}
/// {"host":0,"event":{"Rejuvenated":{...}}}
/// ```
///
/// Events are merged by simulation time; ties break by host index and
/// then per-host record order (a stable sort over the host-major
/// concatenation). The cluster simulation is single-threaded and
/// seeded, so two runs with the same seed — at *any* consumer count —
/// produce bitwise-identical documents.
pub fn merged_jsonl_lines(traces: &[EventTrace]) -> Vec<String> {
    let mut lines = Vec::with_capacity(traces.len());
    for (host, trace) in traces.iter().enumerate() {
        let counters = serde_json::to_string(&trace.counters())
            .expect("TraceCounters serialisation cannot fail");
        lines.push(format!(
            "{{\"host\":{host},\"events\":{},\"counters\":{counters}}}",
            trace.events().count()
        ));
    }
    // Host-major concatenation + stable sort by time: ties keep
    // (host, per-host sequence) order.
    let mut tagged: Vec<(f64, String)> = Vec::new();
    for (host, trace) in traces.iter().enumerate() {
        for event in trace.events() {
            let json = serde_json::to_string(event).expect("SystemEvent serialisation cannot fail");
            tagged.push((event.at(), format!("{{\"host\":{host},\"event\":{json}}}")));
        }
    }
    tagged.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("event times are finite"));
    lines.extend(tagged.into_iter().map(|(_, line)| line));
    lines
}

/// Writes [`merged_jsonl_lines`] to `writer`, returning the number of
/// lines written (host headers + events).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_merged_jsonl<W: Write>(traces: &[EventTrace], writer: &mut W) -> io::Result<usize> {
    let lines = merged_jsonl_lines(traces);
    for line in &lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = EventTrace::new(0);
    }

    #[test]
    fn merged_lines_tag_hosts_and_break_time_ties_by_host_order() {
        let mut host0 = EventTrace::new(8);
        let mut host1 = EventTrace::new(8);
        host0.record(SystemEvent::GcStarted {
            at: 2.0,
            heap_used_mb: 10.0,
        });
        host0.record(SystemEvent::GcEnded {
            at: 5.0,
            reclaimed_mb: 8.0,
        });
        host1.record(SystemEvent::Rejuvenated { at: 2.0, lost: 3 });
        host1.record(SystemEvent::GcStarted {
            at: 1.0,
            heap_used_mb: 4.0,
        });

        let lines = merged_jsonl_lines(&[host0, host1]);
        assert_eq!(lines.len(), 6, "2 headers + 4 events");
        assert!(lines[0].starts_with("{\"host\":0,\"events\":2,\"counters\":"));
        assert!(lines[1].starts_with("{\"host\":1,\"events\":2,\"counters\":"));
        // t=1 (host 1), then the t=2 tie broken by host order (host 0
        // first), then t=5.
        assert!(lines[2].contains("\"host\":1") && lines[2].contains("GcStarted"));
        assert!(lines[3].contains("\"host\":0") && lines[3].contains("GcStarted"));
        assert!(lines[4].contains("\"host\":1") && lines[4].contains("Rejuvenated"));
        assert!(lines[5].contains("\"host\":0") && lines[5].contains("GcEnded"));

        // Byte-stable across renders.
        let mut sink = Vec::new();
        let mut host0 = EventTrace::new(8);
        host0.record(SystemEvent::GcStarted {
            at: 2.0,
            heap_used_mb: 10.0,
        });
        let written = write_merged_jsonl(&[host0], &mut sink).unwrap();
        assert_eq!(written, 2);
        assert!(String::from_utf8(sink).unwrap().ends_with('\n'));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = EventTrace::new(3);
        for i in 0..5 {
            t.record(SystemEvent::GcStarted {
                at: i as f64,
                heap_used_mb: 0.0,
            });
        }
        let times: Vec<f64> = t.events().map(|e| e.at()).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
        assert_eq!(t.counters().gc_started, 5);
    }

    #[test]
    fn counters_split_by_kind() {
        let mut t = EventTrace::new(10);
        t.record(SystemEvent::GcStarted {
            at: 0.0,
            heap_used_mb: 1.0,
        });
        t.record(SystemEvent::GcEnded {
            at: 1.0,
            reclaimed_mb: 1.0,
        });
        t.record(SystemEvent::OverheadEntered {
            at: 2.0,
            active_threads: 51,
        });
        t.record(SystemEvent::OverheadLeft {
            at: 3.0,
            active_threads: 50,
        });
        t.record(SystemEvent::Rejuvenated { at: 4.0, lost: 9 });
        let c = t.counters();
        assert_eq!(
            (
                c.gc_started,
                c.gc_ended,
                c.overhead_entered,
                c.overhead_left,
                c.rejuvenations
            ),
            (1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn jsonl_export_round_trips_each_event() {
        let mut t = EventTrace::new(8);
        t.record(SystemEvent::GcStarted {
            at: 1.5,
            heap_used_mb: 412.25,
        });
        t.record(SystemEvent::Rejuvenated { at: 2.5, lost: 7 });
        let mut buf = Vec::new();
        assert_eq!(t.write_jsonl(&mut buf).unwrap(), 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.ends_with('\n'));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let decoded: Vec<SystemEvent> = lines
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let originals: Vec<SystemEvent> = t.events().copied().collect();
        assert_eq!(decoded, originals);
        // The iterator form matches the writer form line for line.
        let iterated: Vec<String> = t.jsonl_lines().collect();
        assert_eq!(iterated, lines);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut t = EventTrace::new(4);
        t.record(SystemEvent::Rejuvenated { at: 0.0, lost: 1 });
        t.clear_events();
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.counters().rejuvenations, 1);
    }
}
