//! Time-varying arrival processes.
//!
//! The rejuvenation lineage the paper builds on (Avritzer & Weyuker 1997)
//! targets telecommunication systems with *predictably periodic traffic*.
//! This module models such traffic as a non-homogeneous Poisson process
//! (NHPP) with a [`RateProfile`], sampled exactly by Lewis–Shedler
//! thinning inside the e-commerce model.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced when validating a [`RateProfile`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A rate was not positive and finite.
    InvalidRate(f64),
    /// A piecewise profile was empty, unsorted, or did not start at 0.
    InvalidSchedule(String),
    /// A sinusoidal profile dipped to zero or below, or had a bad period.
    InvalidSinusoid(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::InvalidRate(r) => write!(f, "rate {r} is not positive and finite"),
            ProfileError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            ProfileError::InvalidSinusoid(msg) => write!(f, "invalid sinusoid: {msg}"),
        }
    }
}

impl Error for ProfileError {}

/// An arrival-rate profile `λ(t)`.
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::workload::RateProfile;
///
/// // A day: quiet nights, busy mid-period.
/// let day = RateProfile::sinusoidal(1.0, 0.6, 86_400.0)?;
/// assert!((day.rate_at(0.0) - 1.0).abs() < 1e-12);
/// assert!(day.max_rate() <= 1.6 + 1e-12);
/// # Ok::<(), rejuv_ecommerce::workload::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// A constant rate — the homogeneous Poisson process of the paper.
    Constant(f64),
    /// Piecewise-constant: `(from_time, rate)` segments, sorted by time,
    /// first segment starting at 0. The last segment extends forever.
    Piecewise(Vec<(f64, f64)>),
    /// `base + amplitude · sin(2πt / period)` — a smooth daily cycle.
    Sinusoidal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean (must stay below `base`).
        amplitude: f64,
        /// Cycle length in seconds.
        period: f64,
    },
}

impl RateProfile {
    /// A validated constant profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidRate`] for a non-positive rate.
    pub fn constant(rate: f64) -> Result<Self, ProfileError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ProfileError::InvalidRate(rate));
        }
        Ok(RateProfile::Constant(rate))
    }

    /// A validated piecewise-constant profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidSchedule`] if `segments` is empty,
    /// unsorted, does not start at time 0, or contains an invalid rate.
    pub fn piecewise(segments: Vec<(f64, f64)>) -> Result<Self, ProfileError> {
        if segments.is_empty() {
            return Err(ProfileError::InvalidSchedule("no segments".into()));
        }
        if segments[0].0 != 0.0 {
            return Err(ProfileError::InvalidSchedule(
                "first segment must start at time 0".into(),
            ));
        }
        let mut last = -1.0;
        for &(t, rate) in &segments {
            if !(t.is_finite() && t > last) {
                return Err(ProfileError::InvalidSchedule(format!(
                    "segment times must be finite and strictly increasing (got {t} after {last})"
                )));
            }
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ProfileError::InvalidRate(rate));
            }
            last = t;
        }
        Ok(RateProfile::Piecewise(segments))
    }

    /// A validated sinusoidal profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::InvalidSinusoid`] unless
    /// `0 ≤ amplitude < base` and `period > 0`.
    pub fn sinusoidal(base: f64, amplitude: f64, period: f64) -> Result<Self, ProfileError> {
        if !(base.is_finite() && base > 0.0) {
            return Err(ProfileError::InvalidRate(base));
        }
        if !(amplitude.is_finite() && (0.0..base).contains(&amplitude)) {
            return Err(ProfileError::InvalidSinusoid(format!(
                "amplitude {amplitude} must satisfy 0 <= amplitude < base"
            )));
        }
        if !(period.is_finite() && period > 0.0) {
            return Err(ProfileError::InvalidSinusoid(format!(
                "period {period} must be positive"
            )));
        }
        Ok(RateProfile::Sinusoidal {
            base,
            amplitude,
            period,
        })
    }

    /// The instantaneous rate `λ(t)`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            RateProfile::Constant(rate) => *rate,
            RateProfile::Piecewise(segments) => {
                // Last segment whose start is <= t (validated sorted).
                segments
                    .iter()
                    .take_while(|&&(start, _)| start <= t)
                    .last()
                    .map(|&(_, rate)| rate)
                    .unwrap_or(segments[0].1)
            }
            RateProfile::Sinusoidal {
                base,
                amplitude,
                period,
            } => base + amplitude * (2.0 * std::f64::consts::PI * t / period).sin(),
        }
    }

    /// An upper bound on `λ(t)` over all `t` — the majorizing rate for
    /// Lewis–Shedler thinning.
    pub fn max_rate(&self) -> f64 {
        match self {
            RateProfile::Constant(rate) => *rate,
            RateProfile::Piecewise(segments) => {
                segments.iter().map(|&(_, r)| r).fold(0.0, f64::max)
            }
            RateProfile::Sinusoidal {
                base, amplitude, ..
            } => base + amplitude,
        }
    }

    /// Average rate over `[0, horizon]` (by 1 000-point midpoint rule
    /// for the sinusoid; exact for the other variants).
    pub fn mean_rate(&self, horizon: f64) -> f64 {
        match self {
            RateProfile::Constant(rate) => *rate,
            RateProfile::Piecewise(segments) => {
                let mut total = 0.0;
                for (i, &(start, rate)) in segments.iter().enumerate() {
                    if start >= horizon {
                        break;
                    }
                    let end = segments
                        .get(i + 1)
                        .map(|&(s, _)| s)
                        .unwrap_or(horizon)
                        .min(horizon);
                    total += rate * (end - start);
                }
                total / horizon
            }
            RateProfile::Sinusoidal { .. } => {
                let n = 1_000;
                let h = horizon / n as f64;
                (0..n)
                    .map(|i| self.rate_at((i as f64 + 0.5) * h))
                    .sum::<f64>()
                    / n as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = RateProfile::constant(1.6).unwrap();
        assert_eq!(p.rate_at(0.0), 1.6);
        assert_eq!(p.rate_at(1e9), 1.6);
        assert_eq!(p.max_rate(), 1.6);
        assert_eq!(p.mean_rate(100.0), 1.6);
        assert!(RateProfile::constant(0.0).is_err());
        assert!(RateProfile::constant(f64::NAN).is_err());
    }

    #[test]
    fn piecewise_lookup() {
        let p = RateProfile::piecewise(vec![(0.0, 1.0), (10.0, 3.0), (20.0, 0.5)]).unwrap();
        assert_eq!(p.rate_at(0.0), 1.0);
        assert_eq!(p.rate_at(9.999), 1.0);
        assert_eq!(p.rate_at(10.0), 3.0);
        assert_eq!(p.rate_at(19.0), 3.0);
        assert_eq!(p.rate_at(1e6), 0.5);
        assert_eq!(p.max_rate(), 3.0);
        // Mean over [0, 20): (1*10 + 3*10)/20 = 2.
        assert!((p.mean_rate(20.0) - 2.0).abs() < 1e-12);
        // Mean over [0, 40): (10 + 30 + 0.5*20)/40 = 1.25.
        assert!((p.mean_rate(40.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn piecewise_validation() {
        assert!(RateProfile::piecewise(vec![]).is_err());
        assert!(RateProfile::piecewise(vec![(1.0, 1.0)]).is_err());
        assert!(RateProfile::piecewise(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(RateProfile::piecewise(vec![(0.0, 1.0), (5.0, -1.0)]).is_err());
        assert!(RateProfile::piecewise(vec![(0.0, 1.0), (5.0, 2.0), (3.0, 1.0)]).is_err());
    }

    #[test]
    fn sinusoid_shape() {
        let p = RateProfile::sinusoidal(2.0, 1.0, 100.0).unwrap();
        assert!((p.rate_at(0.0) - 2.0).abs() < 1e-12);
        assert!((p.rate_at(25.0) - 3.0).abs() < 1e-12); // peak at period/4
        assert!((p.rate_at(75.0) - 1.0).abs() < 1e-12); // trough
        assert_eq!(p.max_rate(), 3.0);
        // Over a whole period the sinusoid averages to its base.
        assert!((p.mean_rate(100.0) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sinusoid_validation() {
        assert!(RateProfile::sinusoidal(1.0, 1.0, 10.0).is_err()); // amplitude == base
        assert!(RateProfile::sinusoidal(1.0, -0.1, 10.0).is_err());
        assert!(RateProfile::sinusoidal(1.0, 0.5, 0.0).is_err());
        assert!(RateProfile::sinusoidal(0.0, 0.0, 10.0).is_err());
        assert!(RateProfile::sinusoidal(1.0, 0.0, 10.0).is_ok());
    }
}
