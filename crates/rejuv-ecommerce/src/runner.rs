//! Replication runner and parallel load sweeps (the §5 experimental
//! protocol).
//!
//! Every experiment in the paper runs "500,000 transactions divided into
//! five replications of 100,000 transactions each" and reports, per
//! offered-load point, the cross-replication average response time and
//! fraction of transactions lost.

use crate::config::SystemConfig;
use crate::model::EcommerceSystem;
use crate::RunMetrics;
use rejuv_core::RejuvenationDetector;
use rejuv_sim::{Executor, RngStreams};
use rejuv_stats::ReplicationSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A factory producing one fresh detector per replication, or `None` to
/// run without rejuvenation.
pub type DetectorFactory<'a> = &'a (dyn Fn() -> Option<Box<dyn RejuvenationDetector>> + Sync);

/// Cross-replication result for one experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Offered load in CPUs (`λ/µ`).
    pub offered_load_cpus: f64,
    /// Per-replication mean response times.
    pub response_time: ReplicationSet,
    /// Per-replication loss fractions.
    pub loss_fraction: ReplicationSet,
    /// Per-replication rejuvenation counts.
    pub rejuvenations: ReplicationSet,
    /// Per-replication GC counts.
    pub gc_events: ReplicationSet,
}

impl ExperimentResult {
    /// Cross-replication average response time — one y-value of the
    /// paper's response-time figures.
    pub fn mean_response_time(&self) -> f64 {
        self.response_time.mean()
    }

    /// Cross-replication average loss fraction — one y-value of the
    /// paper's transaction-loss figures.
    pub fn mean_loss_fraction(&self) -> f64 {
        self.loss_fraction.mean()
    }

    /// Student-t confidence interval for the mean response time — the
    /// honest interval for few-replication protocols.
    ///
    /// # Errors
    ///
    /// Propagates [`rejuv_stats::StatsError`] for fewer than two
    /// replications or an invalid confidence level.
    pub fn response_time_interval(
        &self,
        confidence: f64,
    ) -> Result<(f64, f64), rejuv_stats::StatsError> {
        self.response_time.t_confidence_interval(confidence)
    }

    /// Student-t confidence interval for the loss fraction.
    ///
    /// # Errors
    ///
    /// Same as [`Self::response_time_interval`].
    pub fn loss_fraction_interval(
        &self,
        confidence: f64,
    ) -> Result<(f64, f64), rejuv_stats::StatsError> {
        self.loss_fraction.t_confidence_interval(confidence)
    }
}

/// One point of a load sweep, pairing the load with its result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load in CPUs.
    pub load_cpus: f64,
    /// The replicated result at this load.
    pub result: ExperimentResult,
}

/// Runs replicated experiments of the §3 model.
///
/// # Example
///
/// ```
/// use rejuv_ecommerce::{Runner, SystemConfig};
///
/// // A small smoke-scale version of the paper's protocol.
/// let runner = Runner::new(2, 2_000, 42);
/// let cfg = SystemConfig::paper_at_load(4.0)?;
/// let result = runner.run_point(cfg, &|| None);
/// assert_eq!(result.response_time.len(), 2);
/// assert_eq!(result.loss_fraction.mean(), 0.0); // no detector, no loss
/// # Ok::<(), rejuv_ecommerce::config::SystemConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    replications: usize,
    transactions_per_replication: u64,
    master_seed: u64,
    /// Transactions discarded at the start of every replication before
    /// metrics are collected (transient removal).
    warmup_transactions: u64,
}

impl Runner {
    /// Creates a runner with the given number of replications, each of
    /// `transactions_per_replication` transactions.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(replications: usize, transactions_per_replication: u64, master_seed: u64) -> Self {
        assert!(replications > 0, "need at least one replication");
        assert!(
            transactions_per_replication > 0,
            "need at least one transaction"
        );
        Runner {
            replications,
            transactions_per_replication,
            master_seed,
            warmup_transactions: 0,
        }
    }

    /// The paper's protocol: 5 replications × 100 000 transactions.
    pub fn paper(master_seed: u64) -> Self {
        Runner::new(5, 100_000, master_seed)
    }

    /// Discards the first `transactions` of every replication before
    /// measuring — the standard transient-removal step of steady-state
    /// output analysis. The detector (if any) still observes the warm-up
    /// traffic, exactly as a monitor attached at system start would.
    pub fn with_warmup(mut self, transactions: u64) -> Self {
        self.warmup_transactions = transactions;
        self
    }

    /// Warm-up transactions discarded per replication.
    pub fn warmup_transactions(&self) -> u64 {
        self.warmup_transactions
    }

    /// Number of replications per point.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// Transactions per replication.
    pub fn transactions_per_replication(&self) -> u64 {
        self.transactions_per_replication
    }

    /// Runs all replications at one configuration and aggregates.
    ///
    /// Replication `r` derives its RNG streams from
    /// `(master_seed, point label, r)`, so results are deterministic and
    /// two detector policies evaluated at the same load see identical
    /// arrival/service randomness (common random numbers).
    pub fn run_point(
        &self,
        config: SystemConfig,
        factory: DetectorFactory<'_>,
    ) -> ExperimentResult {
        aggregate_point(&config, &self.run_point_raw(config, factory))
    }

    /// Runs all replications at one configuration and returns the raw
    /// per-replication metrics (used by the autocorrelation study, which
    /// needs the full response-time series).
    pub fn run_point_raw(
        &self,
        config: SystemConfig,
        factory: DetectorFactory<'_>,
    ) -> Vec<RunMetrics> {
        self.run_point_raw_recording(config, factory, false)
    }

    /// Like [`Self::run_point_raw`] but optionally recording every
    /// response time.
    pub fn run_point_raw_recording(
        &self,
        config: SystemConfig,
        factory: DetectorFactory<'_>,
        record: bool,
    ) -> Vec<RunMetrics> {
        (0..self.replications)
            .map(|r| self.replication_metrics(config, r, factory, record))
            .collect()
    }

    /// Runs exactly one replication — the unit cell of the parallel
    /// executor — and returns its raw metrics.
    ///
    /// Replication `r` at configuration `config` always derives its RNG
    /// streams from `(master_seed, point label, r)`, never from the
    /// calling thread, so a cell's result is a pure function of its
    /// coordinates. This is what makes sweep output bitwise identical
    /// for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `replication >= self.replications()`.
    pub fn replication_metrics(
        &self,
        config: SystemConfig,
        replication: usize,
        factory: DetectorFactory<'_>,
        record: bool,
    ) -> RunMetrics {
        assert!(
            replication < self.replications,
            "replication index {replication} out of range"
        );
        // A label derived from the load keeps replication streams for
        // different sweep points distinct.
        let point_label = (config.offered_load_cpus() * 1_000.0).round() as u64;
        let seed = RngStreams::new(self.master_seed)
            .substreams(point_label)
            .substreams(replication as u64)
            .master_seed();
        let mut system = EcommerceSystem::new(config, seed);
        system.record_response_times(record);
        if let Some(detector) = factory() {
            system.attach_detector(detector);
        }
        if self.warmup_transactions > 0 {
            // Warm-up metrics are discarded; the system (and its
            // detector) carry their state into the measured run.
            let _ = system.run(self.warmup_transactions);
        }
        system.run(self.transactions_per_replication)
    }

    /// Sweeps the offered load (in CPUs) over `loads`, running the full
    /// replication protocol at every point with the default executor
    /// (see [`rejuv_sim::exec`]); results keep the order of `loads`.
    ///
    /// # Panics
    ///
    /// Panics if some load yields an invalid configuration (e.g. zero).
    pub fn load_sweep(
        &self,
        base: &SystemConfig,
        loads: &[f64],
        factory: DetectorFactory<'_>,
    ) -> Vec<LoadPoint> {
        self.load_sweep_with(&Executor::from_env(), base, loads, factory)
    }

    /// Like [`Self::load_sweep`] with an explicit executor.
    ///
    /// The sweep flattens into `loads.len() × replications` independent
    /// cells — every `(load point, replication)` pair — which the
    /// executor drains with its fixed worker pool. Results are gathered
    /// by cell index, so the output is identical for every worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if some load yields an invalid configuration (e.g. zero).
    pub fn load_sweep_with(
        &self,
        executor: &Executor,
        base: &SystemConfig,
        loads: &[f64],
        factory: DetectorFactory<'_>,
    ) -> Vec<LoadPoint> {
        let configs: Vec<SystemConfig> = loads
            .iter()
            .map(|&load| {
                base.with_arrival_rate(load * base.service_rate())
                    .expect("load sweep produced an invalid arrival rate")
            })
            .collect();

        let reps = self.replications;
        let metrics = executor.run(configs.len() * reps, |cell| {
            let (point, replication) = (cell / reps, cell % reps);
            self.replication_metrics(configs[point], replication, factory, false)
        });

        loads
            .iter()
            .zip(configs.iter().zip(metrics.chunks_exact(reps)))
            .map(|(&load, (config, point_metrics))| LoadPoint {
                load_cpus: load,
                result: aggregate_point(config, point_metrics),
            })
            .collect()
    }
}

/// Aggregates one point's per-replication metrics (in replication
/// order) into an [`ExperimentResult`].
///
/// Public so callers that flatten their own cell lists over a
/// [`rejuv_sim::Executor`] (e.g. multi-series sweeps) can reduce raw
/// metrics exactly as [`Runner::run_point`] does.
pub fn aggregate_point(config: &SystemConfig, metrics: &[RunMetrics]) -> ExperimentResult {
    let mut response_time = ReplicationSet::new();
    let mut loss_fraction = ReplicationSet::new();
    let mut rejuvenations = ReplicationSet::new();
    let mut gc_events = ReplicationSet::new();

    for m in metrics {
        response_time.push(m.mean_response_time);
        loss_fraction.push(m.loss_fraction());
        rejuvenations.push(m.rejuvenation_count as f64);
        gc_events.push(m.gc_count as f64);
    }

    ExperimentResult {
        offered_load_cpus: config.offered_load_cpus(),
        response_time,
        loss_fraction,
        rejuvenations,
        gc_events,
    }
}

impl fmt::Display for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replications x {} transactions (seed {})",
            self.replications, self.transactions_per_replication, self.master_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{Sraa, SraaConfig};

    fn sraa_factory(
        n: usize,
        k: usize,
        d: u32,
    ) -> impl Fn() -> Option<Box<dyn RejuvenationDetector>> + Sync {
        move || {
            Some(Box::new(Sraa::new(
                SraaConfig::builder(5.0, 5.0)
                    .sample_size(n)
                    .buckets(k)
                    .depth(d)
                    .build()
                    .unwrap(),
            )))
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = Runner::new(0, 10, 0);
    }

    #[test]
    fn paper_protocol_shape() {
        let r = Runner::paper(1);
        assert_eq!(r.replications(), 5);
        assert_eq!(r.transactions_per_replication(), 100_000);
    }

    #[test]
    fn run_point_is_deterministic() {
        let runner = Runner::new(2, 2_000, 99);
        let cfg = SystemConfig::paper_at_load(6.0).unwrap();
        let f = sraa_factory(2, 5, 3);
        let a = runner.run_point(cfg, &f);
        let b = runner.run_point(cfg, &f);
        assert_eq!(a, b);
    }

    #[test]
    fn replications_differ_from_each_other() {
        let runner = Runner::new(3, 2_000, 7);
        let cfg = SystemConfig::paper_at_load(6.0).unwrap();
        let res = runner.run_point(cfg, &|| None);
        let v = res.response_time.values();
        assert_eq!(v.len(), 3);
        assert!(v[0] != v[1] || v[1] != v[2], "replications must not repeat");
    }

    #[test]
    fn sweep_preserves_order_and_parallel_matches_serial() {
        let runner = Runner::new(2, 1_500, 5);
        let base = SystemConfig::paper_at_load(1.0).unwrap();
        let loads = [0.5, 4.0, 8.0];
        let f = sraa_factory(3, 2, 5);
        let sweep = runner.load_sweep(&base, &loads, &f);
        assert_eq!(sweep.len(), 3);
        for (point, &load) in sweep.iter().zip(&loads) {
            assert_eq!(point.load_cpus, load);
            let direct = runner.run_point(
                base.with_arrival_rate(load * base.service_rate()).unwrap(),
                &f,
            );
            assert_eq!(point.result, direct, "load {load}");
        }
    }

    #[test]
    fn higher_load_means_higher_response_time() {
        let runner = Runner::new(2, 4_000, 11);
        let base = SystemConfig::paper_at_load(1.0).unwrap();
        let sweep = runner.load_sweep(&base, &[1.0, 9.0], &|| None);
        assert!(
            sweep[1].result.mean_response_time() > sweep[0].result.mean_response_time(),
            "9 CPUs must be slower than 1 CPU"
        );
    }

    #[test]
    fn warmup_discards_the_transient() {
        // At high load the system starts empty, so early transactions are
        // unrepresentatively fast; warm-up removal should therefore not
        // *lower* the measured mean RT.
        let cfg = SystemConfig::paper_at_load(9.0).unwrap();
        let cold = Runner::new(3, 8_000, 19).run_point(cfg, &|| None);
        let warm = Runner::new(3, 8_000, 19)
            .with_warmup(4_000)
            .run_point(cfg, &|| None);
        assert!(
            warm.mean_response_time() >= cold.mean_response_time() * 0.9,
            "warm {} vs cold {}",
            warm.mean_response_time(),
            cold.mean_response_time()
        );
        assert_eq!(
            Runner::new(1, 10, 0).with_warmup(5).warmup_transactions(),
            5
        );
    }

    #[test]
    fn warmup_preserves_common_random_numbers() {
        // Same seed, same warm-up: identical results.
        let cfg = SystemConfig::paper_at_load(5.0).unwrap();
        let runner = Runner::new(2, 3_000, 23).with_warmup(1_000);
        assert_eq!(
            runner.run_point(cfg, &|| None),
            runner.run_point(cfg, &|| None)
        );
    }

    #[test]
    fn t_intervals_bracket_the_point_estimates() {
        let runner = Runner::new(4, 3_000, 17);
        let cfg = SystemConfig::paper_at_load(6.0).unwrap();
        let res = runner.run_point(cfg, &|| None);
        let (lo, hi) = res.response_time_interval(0.95).unwrap();
        assert!(lo <= res.mean_response_time() && res.mean_response_time() <= hi);
        let (lo, hi) = res.loss_fraction_interval(0.95).unwrap();
        assert!(lo <= res.mean_loss_fraction() && res.mean_loss_fraction() <= hi);
    }

    #[test]
    fn recording_returns_series() {
        let runner = Runner::new(2, 500, 3);
        let cfg = SystemConfig::mmc(1.6).unwrap();
        let raw = runner.run_point_raw_recording(cfg, &|| None, true);
        assert_eq!(raw.len(), 2);
        for m in &raw {
            assert_eq!(m.response_times.len(), 500);
        }
        // Different replications, different series.
        assert_ne!(raw[0].response_times, raw[1].response_times);
    }
}
