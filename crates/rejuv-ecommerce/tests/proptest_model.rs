//! Property-based tests for the e-commerce model: conservation laws and
//! determinism over the parameter space.

use proptest::prelude::*;
use rejuv_core::{Sraa, SraaConfig};
use rejuv_ecommerce::{EcommerceSystem, SystemConfig};

fn small_run_config() -> impl Strategy<Value = SystemConfig> {
    // Loads from trivially light to deeply overloaded, with and without
    // the degradation mechanisms.
    (0.1f64..2.4, any::<bool>(), any::<bool>()).prop_map(|(lambda, overhead, memory)| {
        SystemConfig::new(
            16,
            lambda,
            0.2,
            overhead.then_some(50),
            if overhead { 2.0 } else { 1.0 },
            memory.then(rejuv_ecommerce::config::MemoryConfig::paper),
        )
        .expect("constructed parameters are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Transaction conservation: completed + lost equals the stop target
    /// exactly when no detector is attached (nothing is ever lost), and
    /// is at least the target with one.
    #[test]
    fn transaction_conservation(cfg in small_run_config(), seed in 0u64..1_000) {
        let mut bare = EcommerceSystem::new(cfg, seed);
        let m = bare.run(2_000);
        prop_assert_eq!(m.completed, 2_000);
        prop_assert_eq!(m.lost, 0);

        let detector = Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(1).buckets(1).depth(1).build().unwrap(),
        );
        let mut guarded = EcommerceSystem::new(cfg, seed);
        guarded.attach_detector(Box::new(detector));
        let m = guarded.run(2_000);
        prop_assert!(m.completed + m.lost >= 2_000);
        // Overshoot is bounded by one rejuvenation's worth of threads.
        prop_assert!(m.completed + m.lost < 2_000 + 10_000);
    }

    /// Response times are positive and the mean lies between the pure
    /// service-time floor and the maximum observed value.
    #[test]
    fn response_time_sanity(cfg in small_run_config(), seed in 0u64..1_000) {
        let mut sys = EcommerceSystem::new(cfg, seed);
        sys.record_response_times(true);
        let m = sys.run(3_000);
        prop_assert!(m.response_times.iter().all(|&r| r > 0.0 && r.is_finite()));
        prop_assert!(m.mean_response_time > 0.0);
        prop_assert!(m.mean_response_time <= m.max_response_time);
        // Without degradation mechanisms the mean can't stray far below
        // the service mean of 5 s.
        prop_assert!(m.mean_response_time > 3.0, "mean = {}", m.mean_response_time);
    }

    /// Determinism across the whole parameter space: same config + seed
    /// => identical metrics.
    #[test]
    fn full_determinism(cfg in small_run_config(), seed in 0u64..1_000) {
        let run = || {
            let mut sys = EcommerceSystem::new(cfg, seed);
            sys.record_response_times(true);
            sys.run(1_500)
        };
        prop_assert_eq!(run(), run());
    }

    /// Simulated time advances and throughput is bounded by the arrival
    /// rate.
    #[test]
    fn throughput_bounded_by_arrivals(cfg in small_run_config(), seed in 0u64..500) {
        let mut sys = EcommerceSystem::new(cfg, seed);
        let m = sys.run(3_000);
        prop_assert!(m.sim_duration_secs > 0.0);
        // Long-run throughput can't exceed the arrival rate by more than
        // the transient in-flight population drain.
        let arrival_rate = cfg.arrival_rate();
        prop_assert!(
            m.throughput() < arrival_rate * 1.5 + 0.5,
            "throughput {} vs λ {}",
            m.throughput(),
            arrival_rate
        );
    }

    /// Heap accounting never goes negative; outside a collection it
    /// never exceeds the GC trigger point (2972 MB + one 10 MB
    /// allocation). During a collection it may overshoot by what the
    /// arrival process can start within one 60 s pause.
    #[test]
    fn heap_bounds(seed in 0u64..300, lambda in 0.2f64..2.4) {
        let cfg = SystemConfig::paper(lambda).unwrap();
        let mut sys = EcommerceSystem::new(cfg, seed);
        // Poisson(λ·60) arrivals can start mid-GC; allow a generous tail.
        let in_gc_slack = (lambda * 60.0 * 3.0 + 100.0) * 10.0;
        for _ in 0..10 {
            sys.run(400);
            prop_assert!(sys.heap_used_mb() >= 0.0);
            if sys.gc_in_progress() {
                prop_assert!(
                    sys.heap_used_mb() <= 2982.0 + 160.0 + in_gc_slack,
                    "in-GC heap = {}",
                    sys.heap_used_mb()
                );
            } else {
                prop_assert!(
                    sys.heap_used_mb() <= 2982.0 + 1e-9,
                    "steady heap = {}",
                    sys.heap_used_mb()
                );
            }
        }
    }
}
