//! Property-based tests for the cluster and workload subsystems.

use proptest::prelude::*;
use rejuv_ecommerce::cluster::{ClusterSystem, RoutingPolicy};
use rejuv_ecommerce::workload::RateProfile;
use rejuv_ecommerce::SystemConfig;

fn any_policy() -> impl Strategy<Value = RoutingPolicy> {
    prop_oneof![
        Just(RoutingPolicy::RoundRobin),
        Just(RoutingPolicy::Random),
        Just(RoutingPolicy::LeastActive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without detectors, every transaction completes and none is
    /// rejected or lost, for any host count, load and policy.
    #[test]
    fn bare_cluster_conserves_transactions(
        hosts in 1usize..6,
        lambda in 0.2f64..4.0,
        policy in any_policy(),
        seed in 0u64..500,
    ) {
        let cfg = SystemConfig::mmc(1.0).unwrap();
        let mut cluster = ClusterSystem::new(cfg, hosts, lambda, policy, 0.0, seed);
        let m = cluster.run(1_500);
        prop_assert_eq!(m.aggregate.completed, 1_500);
        prop_assert_eq!(m.aggregate.lost, 0);
        prop_assert_eq!(m.rejected_no_host, 0);
        prop_assert_eq!(m.rejuvenations_per_host.iter().sum::<u64>(), 0);
    }

    /// Cluster runs are deterministic in (config, seed, policy).
    #[test]
    fn cluster_is_deterministic(
        hosts in 1usize..5,
        policy in any_policy(),
        seed in 0u64..200,
    ) {
        let cfg = SystemConfig::paper(1.0).unwrap();
        let run = || {
            let mut c = ClusterSystem::new(cfg, hosts, hosts as f64 * 1.2, policy, 15.0, seed);
            c.run(1_200)
        };
        prop_assert_eq!(run(), run());
    }

    /// Piecewise profiles look up the correct segment for arbitrary
    /// schedules.
    #[test]
    fn piecewise_rate_lookup(
        rates in proptest::collection::vec(0.1f64..10.0, 1..8),
        query in 0.0f64..1_000.0,
    ) {
        let segments: Vec<(f64, f64)> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as f64 * 100.0, r))
            .collect();
        let profile = RateProfile::piecewise(segments.clone()).unwrap();
        let expected_idx = ((query / 100.0) as usize).min(rates.len() - 1);
        prop_assert_eq!(profile.rate_at(query), rates[expected_idx]);
        // Max rate is the max segment rate.
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        prop_assert_eq!(profile.max_rate(), max);
    }

    /// Sinusoidal profiles stay within [base − amplitude, base + amplitude]
    /// and are periodic.
    #[test]
    fn sinusoid_bounds_and_periodicity(
        base in 0.2f64..10.0,
        frac in 0.0f64..0.99,
        period in 1.0f64..10_000.0,
        t in 0.0f64..100_000.0,
    ) {
        let amplitude = base * frac;
        let p = RateProfile::sinusoidal(base, amplitude, period).unwrap();
        let r = p.rate_at(t);
        prop_assert!(r >= base - amplitude - 1e-9);
        prop_assert!(r <= base + amplitude + 1e-9);
        let r2 = p.rate_at(t + period);
        prop_assert!((r - r2).abs() < 1e-6 * (1.0 + r.abs()), "not periodic: {r} vs {r2}");
    }
}
