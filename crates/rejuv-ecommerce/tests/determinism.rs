//! Regression tests for the executor's determinism guarantee: a sweep's
//! output must be bitwise identical for every worker count, because each
//! `(load point, replication)` cell derives its RNG streams from its
//! coordinates, never from the thread that happens to run it.

use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_ecommerce::cluster::{ClusterMetrics, ClusterSystem, RoutingPolicy};
use rejuv_ecommerce::{LoadPoint, Runner, SystemConfig};
use rejuv_sim::Executor;

fn sraa_factory() -> impl Fn() -> Option<Box<dyn RejuvenationDetector>> + Sync {
    || {
        Some(Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(5)
                .depth(3)
                .build()
                .unwrap(),
        )))
    }
}

fn sweep_with(
    workers: usize,
    factory: &(dyn Fn() -> Option<Box<dyn RejuvenationDetector>> + Sync),
) -> Vec<LoadPoint> {
    let runner = Runner::new(3, 2_000, 2006);
    let base = SystemConfig::paper_at_load(1.0).unwrap();
    // Low, moderate and saturated points so cells have unequal runtimes
    // and a racy executor would be likely to misorder them.
    let loads = [0.5, 4.0, 8.0, 9.5];
    runner.load_sweep_with(&Executor::new(workers), &base, &loads, factory)
}

#[test]
fn sweep_is_bitwise_identical_for_any_worker_count() {
    let factory = sraa_factory();
    let serial = sweep_with(1, &factory);
    for workers in [2, 8] {
        let parallel = sweep_with(workers, &factory);
        assert_eq!(
            serial, parallel,
            "sweep output changed with {workers} workers"
        );
    }
}

#[test]
fn sweep_without_detector_is_bitwise_identical_for_any_worker_count() {
    let none = || None;
    let serial = sweep_with(1, &none);
    for workers in [2, 8] {
        assert_eq!(serial, sweep_with(workers, &none));
    }
}

/// Runs a small cluster experiment grid — (arrival rate × replication)
/// cells, each a 3-host cluster with an SRAA detector per host — through
/// an executor with the given worker count. Every cell derives its seed
/// from its grid coordinates, so the output must not depend on which
/// worker runs it.
fn cluster_grid_with(workers: usize) -> Vec<ClusterMetrics> {
    let rates = [2.0, 6.0, 9.0];
    let replications = 2usize;
    let host_config = SystemConfig::paper_at_load(1.0).unwrap();
    let detector_config = SraaConfig::builder(5.0, 5.0)
        .sample_size(2)
        .buckets(5)
        .depth(3)
        .build()
        .unwrap();
    Executor::new(workers).run(rates.len() * replications, |cell| {
        let rate = rates[cell / replications];
        let replication = (cell % replications) as u64;
        let seed = 0xC1_05_7E_00u64 | (replication << 16) | (cell / replications) as u64;
        let mut cluster =
            ClusterSystem::new(host_config, 3, rate, RoutingPolicy::LeastActive, 30.0, seed);
        cluster.attach_detectors(|_| Box::new(Sraa::new(detector_config)));
        cluster.run(1_500)
    })
}

#[test]
fn cluster_grid_is_bitwise_identical_for_any_worker_count() {
    let serial = cluster_grid_with(1);
    assert!(
        serial
            .iter()
            .any(|m| m.rejuvenations_per_host.iter().sum::<u64>() > 0),
        "grid should exercise at least one rejuvenation"
    );
    for workers in [2, 8] {
        assert_eq!(
            serial,
            cluster_grid_with(workers),
            "cluster grid output changed with {workers} workers"
        );
    }
}

#[test]
fn env_override_does_not_change_results() {
    // `from_env` picks a machine-dependent worker count; whatever it is,
    // the result must match the single-worker reference.
    let factory = sraa_factory();
    let runner = Runner::new(2, 1_500, 7);
    let base = SystemConfig::paper_at_load(1.0).unwrap();
    let loads = [1.0, 9.0];
    let reference = runner.load_sweep_with(&Executor::serial(), &base, &loads, &factory);
    let default = runner.load_sweep(&base, &loads, &factory);
    assert_eq!(reference, default);
}
