//! Cross-consumer-count determinism suite.
//!
//! Consumer count is an execution-strategy knob, never a semantic one:
//! for the same workload, the drain plane must produce byte-identical
//! artefacts no matter how many worker threads drained the shards or
//! which queue backend carried the observations. These tests run the
//! full `{1, 2, 4, 8} consumers x {mutex, ring, fanin} backends` grid
//! over a preloaded deterministic workload — once for a homogeneous
//! SRAA fleet and once for the 4-kind example fleet — and require the
//! event-log trace, the final report JSON, the final checkpoint JSON
//! and every per-shard decision digest to match the serial reference
//! bit for bit.
//!
//! Preloading (pushing every observation before the pool spawns) pins
//! the drain-batch boundaries, which is what makes even the *trace*
//! bytes comparable: each shard's event stream is then a pure function
//! of the workload, and the pool flushes buffered events shard-major at
//! join.

use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_monitor::{
    ConsumerPool, EventLog, FleetConfig, QueueBackend, SharedBuffer, Supervisor, SupervisorConfig,
};
use std::path::Path;

const FLEET_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fleet.toml");
const CONSUMER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BACKENDS: [QueueBackend; 3] = [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn];

fn config(backend: QueueBackend, consumers: usize) -> SupervisorConfig {
    SupervisorConfig {
        queue_capacity: 2_048,
        drain_batch: 16,
        snapshot_every: Some(100),
        backend,
        consumers,
        scalar_drain: false,
    }
}

fn sraa() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

/// Deterministic workload: mostly-healthy values with sustained spike
/// windows so every detector kind fires. Purely a function of
/// `(shard, i)`.
fn value_at(shard: u64, i: u64) -> f64 {
    if ((i + shard * 11) / 31) % 7 == 6 {
        50.0 + (i % 5) as f64
    } else {
        3.0 + ((i + shard * 3) % 6) as f64 * 0.7
    }
}

/// Everything a run leaves behind that must be byte-stable.
struct Artifacts {
    trace: Vec<u8>,
    report: String,
    checkpoint: String,
    digests: Vec<String>,
}

/// Preloads the full workload, drains it through a consumer pool, and
/// collects the run's artefacts.
fn pool_run<F>(build: F, shards: usize, per_shard: u64) -> Artifacts
where
    F: FnOnce() -> Supervisor,
{
    let mut sup = build();
    let buffer = SharedBuffer::new();
    sup.set_log(EventLog::new(Box::new(buffer.clone())));
    for shard in 0..shards {
        let sender = sup.sender(shard);
        for i in 0..per_shard {
            assert!(
                sender.send(value_at(shard as u64, i)),
                "workload must fit the queue capacity (preloaded run)"
            );
        }
    }
    let pool = ConsumerPool::spawn(sup);
    let joined = pool.join().expect("pool drains cleanly");
    let mut sup = joined
        .supervisor
        .expect("owned pool returns the supervisor");
    assert_eq!(
        joined.stats.per_thread_drains.iter().sum::<u64>(),
        per_shard * shards as u64,
        "every observation was drained by some worker"
    );
    sup.take_log()
        .expect("log attached")
        .flush()
        .expect("flush");
    let report = sup.report();
    let snapshot = sup.snapshot().expect("every detector here snapshots");
    Artifacts {
        trace: buffer.contents(),
        report: serde_json::to_string_pretty(&report).expect("render report"),
        checkpoint: serde_json::to_string_pretty(&snapshot).expect("render checkpoint"),
        digests: report.shards.iter().map(|s| s.digest.clone()).collect(),
    }
}

/// Serial reference: identical preload drained by the caller-owned poll
/// loop, no pool, no threads. Its report and digests are ground truth.
fn serial_reference<F>(build: F, shards: usize, per_shard: u64) -> (String, Vec<String>)
where
    F: FnOnce() -> Supervisor,
{
    let mut sup = build();
    for shard in 0..shards {
        let sender = sup.sender(shard);
        for i in 0..per_shard {
            assert!(sender.send(value_at(shard as u64, i)));
        }
    }
    while sup.poll_all().expect("no log attached") > 0 {}
    let report = sup.report();
    (
        serde_json::to_string_pretty(&report).expect("render report"),
        report.shards.iter().map(|s| s.digest.clone()).collect(),
    )
}

/// Runs the full consumer-count x backend grid for one fleet shape and
/// checks every artefact against both the serial reference and the
/// first grid cell.
fn grid_is_byte_identical<F>(build: F, shards: usize, per_shard: u64)
where
    F: Fn(SupervisorConfig) -> Supervisor,
{
    let (serial_report, serial_digests) =
        serial_reference(|| build(config(QueueBackend::Mutex, 1)), shards, per_shard);

    let mut baseline: Option<Artifacts> = None;
    for backend in BACKENDS {
        for consumers in CONSUMER_COUNTS {
            let artifacts = pool_run(|| build(config(backend, consumers)), shards, per_shard);
            assert_eq!(
                artifacts.digests, serial_digests,
                "{backend} x{consumers}: digests diverged from the serial reference"
            );
            assert_eq!(
                artifacts.report, serial_report,
                "{backend} x{consumers}: report diverged from the serial reference"
            );
            match &baseline {
                None => baseline = Some(artifacts),
                Some(first) => {
                    assert_eq!(
                        artifacts.trace, first.trace,
                        "{backend} x{consumers}: trace bytes diverged from mutex x1"
                    );
                    assert_eq!(
                        artifacts.report, first.report,
                        "{backend} x{consumers}: report bytes diverged from mutex x1"
                    );
                    assert_eq!(
                        artifacts.checkpoint, first.checkpoint,
                        "{backend} x{consumers}: checkpoint bytes diverged from mutex x1"
                    );
                }
            }
        }
    }
    let baseline = baseline.expect("grid is non-empty");
    assert!(
        !baseline.trace.is_empty(),
        "the workload must actually record events"
    );
}

#[test]
fn homogeneous_fleet_artifacts_are_identical_across_consumer_counts() {
    grid_is_byte_identical(
        |config| Supervisor::with_shards(config, 5, |_| sraa()),
        5,
        600,
    );
}

#[test]
fn mixed_fleet_artifacts_are_identical_across_consumer_counts() {
    let fleet = FleetConfig::load(Path::new(FLEET_PATH)).expect("example fleet parses");
    let shards = fleet.shard_count();
    assert!(shards >= 4, "the example fleet mixes four detector kinds");
    grid_is_byte_identical(
        move |config| Supervisor::with_specs(config, fleet.specs()).expect("fleet builds"),
        shards,
        500,
    );
}
