//! Exhaustive restore-rejection coverage: every way a checkpoint can
//! disagree with the configured supervisor — snapshot version, shard
//! count, per-shard detector kind (all ordered kind pairs), and
//! same-kind spec drift — must return its typed [`RestoreError`]
//! *without mutating supervisor state*: the report (digests included)
//! is byte-identical before and after the failed restore.

use rejuv_core::{DetectorKind, DetectorSpec};
use rejuv_monitor::{
    RestoreError, Supervisor, SupervisorConfig, SNAPSHOT_VERSION, SNAPSHOT_VERSION_DLQ,
};

fn supervisor_of(kinds: &[DetectorKind]) -> Supervisor {
    let specs: Vec<DetectorSpec> = kinds.iter().map(|&k| DetectorSpec::new(k)).collect();
    Supervisor::with_specs(SupervisorConfig::default(), &specs).expect("default specs build")
}

/// Feeds a deterministic stream so the supervisor has non-trivial
/// digests and counters to preserve.
fn warm_up(sup: &mut Supervisor) {
    for i in 0..120u64 {
        let shard = (i as usize) % sup.shard_count();
        let value = if i % 11 == 0 {
            70.0
        } else {
            4.0 + (i % 3) as f64
        };
        sup.process_sync(shard, value).unwrap();
    }
}

#[test]
fn every_kind_pair_mismatch_is_rejected_without_mutation() {
    for &donor_kind in &DetectorKind::ALL {
        for &target_kind in &DetectorKind::ALL {
            if donor_kind == target_kind {
                continue;
            }
            let mut donor = supervisor_of(&[donor_kind]);
            warm_up(&mut donor);
            let checkpoint = donor.snapshot().expect("every kind snapshots");

            let mut target = supervisor_of(&[target_kind]);
            warm_up(&mut target);
            let before = target.report();

            let err = target
                .restore(&checkpoint)
                .expect_err("cross-kind restore must fail");
            assert!(
                matches!(err, RestoreError::Detector { shard: 0, .. }),
                "{donor_kind:?} checkpoint into {target_kind:?} supervisor: \
                 expected a Detector kind error, got {err:?}"
            );
            assert_eq!(
                target.report(),
                before,
                "failed {donor_kind:?}->{target_kind:?} restore must leave no trace"
            );
        }
    }
}

#[test]
fn kind_mismatch_on_a_later_shard_names_that_shard() {
    // First shard agrees, second does not: validation must reach shard 1
    // and must not have touched shard 0 when it fails.
    let mut donor = supervisor_of(&[DetectorKind::Sraa, DetectorKind::Clta]);
    warm_up(&mut donor);
    let checkpoint = donor.snapshot().unwrap();

    let mut target = supervisor_of(&[DetectorKind::Sraa, DetectorKind::Cusum]);
    warm_up(&mut target);
    let before = target.report();
    let err = target.restore(&checkpoint).expect_err("shard 1 mismatches");
    assert!(matches!(err, RestoreError::Detector { shard: 1, .. }));
    assert_eq!(target.report(), before);
}

#[test]
fn version_mismatch_is_rejected_without_mutation() {
    let mut donor = supervisor_of(&[DetectorKind::Sraa]);
    warm_up(&mut donor);
    // `SNAPSHOT_VERSION_DLQ` (v4) is the one *higher* version restore
    // accepts — everything else must be rejected.
    for bad_version in [0, SNAPSHOT_VERSION - 1, SNAPSHOT_VERSION_DLQ + 1, 99] {
        let mut checkpoint = donor.snapshot().unwrap();
        checkpoint.version = bad_version;
        let mut target = supervisor_of(&[DetectorKind::Sraa]);
        warm_up(&mut target);
        let before = target.report();
        assert_eq!(
            target.restore(&checkpoint),
            Err(RestoreError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: bad_version,
            })
        );
        assert_eq!(target.report(), before);
    }
}

#[test]
fn shard_count_mismatch_is_rejected_without_mutation() {
    let mut donor = supervisor_of(&[DetectorKind::Sraa, DetectorKind::Clta]);
    warm_up(&mut donor);
    let checkpoint = donor.snapshot().unwrap();
    for target_kinds in [
        &[DetectorKind::Sraa][..],
        &[DetectorKind::Sraa, DetectorKind::Clta, DetectorKind::Cusum][..],
    ] {
        let mut target = supervisor_of(target_kinds);
        warm_up(&mut target);
        let before = target.report();
        assert_eq!(
            target.restore(&checkpoint),
            Err(RestoreError::ShardCountMismatch {
                expected: target_kinds.len(),
                found: 2,
            })
        );
        assert_eq!(target.report(), before);
    }
}

#[test]
fn same_kind_knob_drift_is_rejected_without_mutation() {
    // Same detector kind everywhere, but shard 1's knobs drifted:
    // restore must refuse with SpecMismatch naming the shard, values
    // and leave the target untouched.
    let base = DetectorSpec::new(DetectorKind::Sraa);
    let mut drifted = base;
    drifted.depth = base.depth + 2;

    let mut donor = Supervisor::with_specs(SupervisorConfig::default(), &[base, drifted]).unwrap();
    warm_up(&mut donor);
    let checkpoint = donor.snapshot().unwrap();

    let mut target = Supervisor::with_specs(SupervisorConfig::default(), &[base, base]).unwrap();
    warm_up(&mut target);
    let before = target.report();
    assert_eq!(
        target.restore(&checkpoint),
        Err(RestoreError::SpecMismatch {
            shard: 1,
            expected: Box::new(base),
            found: Box::new(drifted),
        })
    );
    assert_eq!(target.report(), before);
}
