//! Backend conformance for [`ObsQueue`]: the lock-free ring, the
//! fan-in ring and the mutex queue must be observationally identical.
//!
//! Property tests drive all backends through the same arbitrary
//! sequence of push / batch-push / blocking-push / drain operations and
//! require identical drained `(value, at)` sequences, accept/drop
//! counts and lengths at every step — the contract that makes
//! `--queue` a pure execution-strategy knob (digests, reports and
//! replays cannot diverge if the drained sequences cannot). A second
//! property pins batch pushes to the same semantics as repeated single
//! pushes. Threaded tests then cover what single-threaded determinism
//! cannot: loss-free shutdown drains through a [`ConsumerThread`] and
//! per-shard supervisor digest equality across backends under real
//! producer/consumer concurrency.

use proptest::prelude::*;
use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_monitor::{
    ConsumerThread, ObsQueue, QueueBackend, Supervisor, SupervisorConfig, WorkNotifier,
};
use std::sync::Arc;

/// One step of the deterministic interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// `push_at` — may drop when full.
    Push(f64, f64),
    /// `push_batch` — accepts a prefix, drops the rest.
    PushBatch(Vec<f64>),
    /// `push_blocking_at`, with the single-threaded convention that a
    /// full queue is first relieved by draining one sample (applied
    /// identically to both backends, so blocking never deadlocks the
    /// test and the op still exercises the blocking entry points).
    PushBlocking(f64, f64),
    /// `drain_into` with the given batch limit.
    Drain(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..100.0, 0.0f64..50.0).prop_map(|(v, at)| Op::Push(v, at)),
        proptest::collection::vec(0.0f64..100.0, 0..12).prop_map(Op::PushBatch),
        (0.0f64..100.0, 0.0f64..50.0).prop_map(|(v, at)| Op::PushBlocking(v, at)),
        (1usize..8).prop_map(Op::Drain),
    ]
}

/// Applies one op to a queue, appending whatever it drains to `out`.
fn apply(q: &ObsQueue, op: &Op, out: &mut Vec<(f64, f64)>) {
    match op {
        Op::Push(v, at) => {
            q.push_at(*v, *at);
        }
        Op::PushBatch(values) => {
            q.push_batch(values.iter().map(|&v| (v, v * 0.5)));
        }
        Op::PushBlocking(v, at) => {
            if q.len() == q.capacity() {
                q.drain_into(out, 1);
            }
            q.push_blocking_at(*v, *at);
        }
        Op::Drain(max) => {
            q.drain_into(out, *max);
        }
    }
}

proptest! {
    /// Any single-threaded interleaving of pushes, batch pushes,
    /// blocking pushes and drains leaves both backends in agreement:
    /// same drained samples (values *and* timestamps, bit-for-bit),
    /// same accept/drop accounting, same occupancy after every step.
    #[test]
    fn backends_agree_on_arbitrary_interleavings(
        capacity in 1usize..10,
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mutex = ObsQueue::with_backend(capacity, QueueBackend::Mutex);
        let ring = ObsQueue::with_backend(capacity, QueueBackend::Ring);
        let fanin = ObsQueue::with_backend(capacity, QueueBackend::FanIn);
        let (mut out_m, mut out_r, mut out_f) = (Vec::new(), Vec::new(), Vec::new());
        for op in &ops {
            apply(&mutex, op, &mut out_m);
            apply(&ring, op, &mut out_r);
            apply(&fanin, op, &mut out_f);
            prop_assert_eq!(mutex.len(), ring.len());
            prop_assert_eq!(mutex.len(), fanin.len());
        }
        // Final drain: a shutdown must lose nothing on any backend.
        mutex.drain_into(&mut out_m, usize::MAX);
        ring.drain_into(&mut out_r, usize::MAX);
        fanin.drain_into(&mut out_f, usize::MAX);
        prop_assert!(mutex.is_empty() && ring.is_empty() && fanin.is_empty());
        let bits = |s: &[(f64, f64)]| -> Vec<(u64, u64)> {
            s.iter().map(|&(v, at)| (v.to_bits(), at.to_bits())).collect()
        };
        prop_assert_eq!(bits(&out_m), bits(&out_r));
        prop_assert_eq!(bits(&out_m), bits(&out_f));
        prop_assert_eq!(mutex.accepted(), ring.accepted());
        prop_assert_eq!(mutex.dropped(), ring.dropped());
        prop_assert_eq!(mutex.accepted(), fanin.accepted());
        prop_assert_eq!(mutex.dropped(), fanin.dropped());
        prop_assert_eq!(
            out_m.len() as u64,
            mutex.accepted(),
            "every accepted sample was drained exactly once"
        );
    }

    /// `push_batch` is exactly repeated `push_at`: same accepted
    /// prefix, same drop count, same drained samples — on each backend.
    #[test]
    fn batch_push_equals_repeated_singles(
        backend_pick in 0usize..3,
        capacity in 1usize..10,
        prefill in 0usize..10,
        values in proptest::collection::vec(0.0f64..100.0, 0..20),
    ) {
        let backend = [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn][backend_pick];
        let batched = ObsQueue::with_backend(capacity, backend);
        let singles = ObsQueue::with_backend(capacity, backend);
        for i in 0..prefill.min(capacity) {
            batched.push(i as f64);
            singles.push(i as f64);
        }
        let accepted = batched.push_batch(values.iter().map(|&v| (v, v + 0.25)));
        let mut accepted_singles = 0;
        for &v in &values {
            accepted_singles += usize::from(singles.push_at(v, v + 0.25));
        }
        prop_assert_eq!(accepted, accepted_singles);
        prop_assert_eq!(batched.dropped(), singles.dropped());
        let (mut out_b, mut out_s) = (Vec::new(), Vec::new());
        batched.drain_into(&mut out_b, usize::MAX);
        singles.drain_into(&mut out_s, usize::MAX);
        // Bitwise: the NaN-timestamped prefill must compare equal too.
        let bits = |s: &[(f64, f64)]| -> Vec<(u64, u64)> {
            s.iter().map(|&(v, at)| (v.to_bits(), at.to_bits())).collect()
        };
        prop_assert_eq!(bits(&out_b), bits(&out_s));
    }
}

fn detector() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

/// The deterministic per-shard workload of the threaded tests.
fn synthetic(shard: u64, i: u64) -> f64 {
    3.0 + ((i * 7 + shard * 13) % 23) as f64 * 0.6 + if i.is_multiple_of(311) { 40.0 } else { 0.0 }
}

/// Runs a threaded multi-shard supervisor workload on one backend:
/// batched blocking producers, a parked consumer thread, shutdown
/// drain. Returns the per-shard decision digests.
fn threaded_digests(backend: QueueBackend) -> Vec<String> {
    const SHARDS: usize = 3;
    const PER_SHARD: u64 = 20_000;
    let config = SupervisorConfig {
        queue_capacity: 64,
        drain_batch: 16,
        backend,
        ..SupervisorConfig::default()
    };
    let supervisor = Supervisor::with_shards(config, SHARDS, |_| detector());
    let senders: Vec<_> = (0..SHARDS).map(|s| supervisor.sender(s)).collect();
    let consumer = ConsumerThread::spawn(supervisor);
    std::thread::scope(|scope| {
        for (shard, sender) in senders.iter().enumerate() {
            scope.spawn(move || {
                let mut i = 0u64;
                let mut batch = Vec::with_capacity(29);
                while i < PER_SHARD {
                    let n = 29.min(PER_SHARD - i);
                    batch.clear();
                    batch.extend((i..i + n).map(|k| (synthetic(shard as u64, k), f64::NAN)));
                    sender.send_batch_blocking(batch.iter().copied());
                    i += n;
                }
            });
        }
    });
    let supervisor = consumer
        .join()
        .expect("no log attached")
        .expect("owned consumer returns the supervisor");
    let report = supervisor.report();
    assert_eq!(
        report.total_processed,
        SHARDS as u64 * PER_SHARD,
        "shutdown drain is loss-free on {backend}"
    );
    assert_eq!(report.total_dropped, 0, "blocking producers never drop");
    report.shards.iter().map(|s| s.digest.clone()).collect()
}

/// Under real concurrency — parked consumer, blocking batched
/// producers, shutdown drain — all three backends process every sample
/// and land on identical per-shard decision digests.
#[test]
fn threaded_stress_digests_match_across_backends() {
    let mutex = threaded_digests(QueueBackend::Mutex);
    let ring = threaded_digests(QueueBackend::Ring);
    let fanin = threaded_digests(QueueBackend::FanIn);
    assert_eq!(mutex, ring, "ring must be digest-equivalent to mutex");
    assert_eq!(mutex, fanin, "fanin must be digest-equivalent to mutex");
}

/// A consumer blocked on the notifier still sees a loss-free shutdown:
/// samples pushed before `shutdown()` are drained, on every backend.
#[test]
fn shutdown_drain_is_loss_free_on_both_backends() {
    for backend in [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn] {
        let queue = ObsQueue::with_backend(32, backend);
        let notifier = Arc::new(WorkNotifier::new());
        queue.attach_notifier(Arc::clone(&notifier));
        let consumer_q = queue.clone();
        let consumer_n = Arc::clone(&notifier);
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            loop {
                while consumer_q.drain_into(&mut out, 8) > 0 {}
                if consumer_n.wait() == rejuv_monitor::Wakeup::Shutdown {
                    break;
                }
            }
            // Final drain after the shutdown signal.
            while consumer_q.drain_into(&mut out, 8) > 0 {}
            out
        });
        for i in 0..500u64 {
            queue.push_blocking(i as f64);
        }
        notifier.shutdown();
        let out = consumer.join().unwrap();
        assert_eq!(out.len(), 500, "{backend}: shutdown lost samples");
        assert!(
            out.iter().enumerate().all(|(i, &(v, _))| v == i as f64),
            "{backend}: FIFO order violated"
        );
    }
}
