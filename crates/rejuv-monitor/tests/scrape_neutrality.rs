//! Scrapes are read-only: a monitored run must end up byte-identical
//! whether or not anything ever looked at it.
//!
//! Property tests interleave exposition snapshots (the exact capture +
//! render path `/metrics` serves) at arbitrary points of an arbitrary
//! ingest/drain schedule, across all three queue backends and 1/2/4
//! configured consumers, and require the run's every artifact — event
//! log, final report, decision digests, checkpoint — to match a twin
//! run that never scraped, byte for byte. A threaded test then covers
//! what single-threaded determinism cannot: a real `MetricsServer`
//! hammered by an HTTP scraper thread while blocking producers and a
//! shared-mode drain plane are running, against a listener-free twin.

use proptest::prelude::*;
use rejuv_monitor::expo::render;
use rejuv_monitor::{
    ConsumerThread, EventLog, ExpoSnapshot, MetricsServer, MonitorEvent, QueueBackend,
    SharedBuffer, SharedSupervisor, Supervisor, SupervisorConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BACKENDS: [QueueBackend; 3] = [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn];
const CONSUMERS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 3;

fn detector() -> Box<dyn rejuv_core::RejuvenationDetector> {
    Box::new(rejuv_core::Sraa::new(
        rejuv_core::SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(4)
            .depth(2)
            .build()
            .unwrap(),
    ))
}

/// One step of the schedule under test.
#[derive(Debug, Clone)]
enum Op {
    /// Ingest one observation into a shard's queue.
    Ingest(usize, f64),
    /// Drain one round through every shard.
    Poll,
    /// Capture + render an exposition snapshot — the `/metrics` path.
    /// Applied only to the scraped twin.
    Scrape,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..SHARDS, 0.0f64..60.0).prop_map(|(s, v)| Op::Ingest(s, v)),
        Just(Op::Poll),
        Just(Op::Scrape),
    ]
}

/// Every artifact a run leaves behind, rendered to bytes.
#[derive(Debug, Clone, PartialEq)]
struct Artifacts {
    trace: Vec<u8>,
    report: String,
    digests: Vec<String>,
    checkpoint: Option<String>,
}

/// Runs a schedule, scraping at the marked points only when `scrape`
/// is set, and collects the artifacts.
fn run_schedule(backend: QueueBackend, consumers: usize, ops: &[Op], scrape: bool) -> Artifacts {
    let config = SupervisorConfig {
        queue_capacity: 64,
        drain_batch: 8,
        snapshot_every: Some(50),
        backend,
        consumers,
        scalar_drain: false,
    };
    let mut sup = Supervisor::with_shards(config, SHARDS, |_| detector());
    let buffer = SharedBuffer::new();
    let mut log = EventLog::new(Box::new(buffer.clone()));
    log.record(&MonitorEvent::Start {
        shards: SHARDS as u32,
        detector: "SRAA".to_owned(),
        queue_capacity: config.queue_capacity as u64,
        drain_batch: config.drain_batch as u64,
        snapshot_every: config.snapshot_every,
    })
    .expect("write run header");
    sup.set_log(log);

    for op in ops {
        match op {
            Op::Ingest(shard, value) => {
                // The 64-slot queue can fill between polls; relieve it
                // the same way in both twins so acceptance is identical.
                if !sup.ingest(*shard, *value) {
                    sup.poll_all().unwrap();
                    sup.ingest(*shard, *value);
                }
            }
            Op::Poll => {
                sup.poll_all().unwrap();
            }
            Op::Scrape => {
                if scrape {
                    let body = render(&ExpoSnapshot::capture(&sup));
                    assert!(body.starts_with("# HELP"));
                }
            }
        }
    }
    while sup.poll_all().unwrap() > 0 {}
    if scrape {
        let _ = render(&ExpoSnapshot::capture(&sup));
    }
    let checkpoint = sup
        .snapshot()
        .map(|s| serde_json::to_string_pretty(&s).unwrap());
    sup.take_log().unwrap().flush().unwrap();
    let report = sup.report();
    Artifacts {
        trace: buffer.contents(),
        report: serde_json::to_string_pretty(&report).unwrap(),
        digests: report.shards.iter().map(|s| s.digest.clone()).collect(),
        checkpoint,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaving scrapes anywhere in an arbitrary ingest/drain
    /// schedule changes no artifact, on any backend at any configured
    /// consumer count.
    #[test]
    fn scrapes_change_no_artifact(
        backend_pick in 0usize..BACKENDS.len(),
        consumers_pick in 0usize..CONSUMERS.len(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let backend = BACKENDS[backend_pick];
        let consumers = CONSUMERS[consumers_pick];
        let scraped = run_schedule(backend, consumers, &ops, true);
        let quiet = run_schedule(backend, consumers, &ops, false);
        prop_assert_eq!(&scraped.trace, &quiet.trace, "event log diverged");
        prop_assert_eq!(&scraped.report, &quiet.report, "report diverged");
        prop_assert_eq!(&scraped.digests, &quiet.digests, "digests diverged");
        prop_assert_eq!(&scraped.checkpoint, &quiet.checkpoint, "checkpoint diverged");
    }
}

/// The deterministic per-shard workload of the threaded test.
fn synthetic(shard: u64, i: u64) -> f64 {
    3.0 + ((i * 5 + shard * 11) % 19) as f64 * 0.7 + if i.is_multiple_of(211) { 42.0 } else { 0.0 }
}

/// Runs a shared-mode supervisor workload — blocking batched producers,
/// `ConsumerThread` drain plane — optionally with a live HTTP responder
/// scraped continuously, and returns `(report, digests)`. The queue is
/// wide enough to hold a full shard stream, so `producer_waits` stays
/// deterministically zero and reports are byte-comparable.
fn threaded_run(backend: QueueBackend, listen: bool) -> (String, Vec<String>) {
    const PER_SHARD: u64 = 10_000;
    let config = SupervisorConfig {
        queue_capacity: PER_SHARD as usize,
        drain_batch: 32,
        snapshot_every: None,
        backend,
        consumers: 2,
        scalar_drain: false,
    };
    let shared = SharedSupervisor::new(Supervisor::with_shards(config, SHARDS, |_| detector()));
    let consumer = ConsumerThread::spawn_shared(&shared);
    let server = listen.then(|| {
        MetricsServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            shared.clone(),
            Some(consumer.stats_handle()),
        )
        .expect("bind an ephemeral port")
    });
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = server.as_ref().map(|server| {
        let addr = server.local_addr();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            let mut served = 0u32;
            while !stop.load(Ordering::SeqCst) {
                if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
                    stream
                        .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
                        .unwrap();
                    let mut reply = String::new();
                    stream.read_to_string(&mut reply).unwrap();
                    assert!(reply.contains("rejuv_exposition_scrapes_total"));
                    served += 1;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            served
        })
    });

    let senders: Vec<_> = (0..SHARDS)
        .map(|s| shared.with(|sup| sup.sender(s)))
        .collect();
    std::thread::scope(|scope| {
        for (shard, sender) in senders.iter().enumerate() {
            scope.spawn(move || {
                let mut batch = Vec::with_capacity(37);
                let mut i = 0u64;
                while i < PER_SHARD {
                    let n = 37.min(PER_SHARD - i);
                    batch.clear();
                    batch.extend((i..i + n).map(|k| (synthetic(shard as u64, k), f64::NAN)));
                    sender.send_batch_blocking(batch.iter().copied());
                    i += n;
                }
            });
        }
    });
    let (_, _stats) = consumer.join_stats().expect("no log attached");
    stop.store(true, Ordering::SeqCst);
    if let Some(handle) = scraper {
        let served = handle.join().expect("scraper never panics");
        assert!(served > 0, "the scraper thread never got a scrape in");
    }
    if let Some(server) = server {
        server.shutdown();
    }
    let sup = shared
        .try_into_inner()
        .expect("drain plane and responder released their handles");
    let report = sup.report();
    assert_eq!(report.total_processed, SHARDS as u64 * PER_SHARD);
    (
        comparable_report(&report),
        report.shards.iter().map(|s| s.digest.clone()).collect(),
    )
}

/// Renders a report for cross-run comparison, dropping the one piece of
/// telemetry that is thread-scheduling noise rather than a function of
/// the observation stream: the `drain_batch_size` histogram differs
/// between any two threaded runs, scraper or not. Everything else —
/// counters, gauges, value histograms, per-shard accounting, digests —
/// must still match byte for byte.
fn comparable_report(report: &rejuv_monitor::MonitorReport) -> String {
    use serde_json::Value;
    let mut value = serde_json::to_value(report).unwrap();
    if let Value::Object(root) = &mut value {
        if let Some(Value::Object(metrics)) = root.get_mut("metrics") {
            if let Some(Value::Object(histograms)) = metrics.get_mut("histograms") {
                histograms.remove("drain_batch_size");
            }
        }
    }
    serde_json::to_string_pretty(&value).unwrap()
}

/// A live responder under real concurrent scraping leaves the run's
/// report and digests byte-identical to a listener-free twin, on every
/// backend.
#[test]
fn http_scraper_under_load_changes_nothing() {
    for backend in BACKENDS {
        let (scraped_report, scraped_digests) = threaded_run(backend, true);
        let (quiet_report, quiet_digests) = threaded_run(backend, false);
        assert_eq!(
            scraped_digests, quiet_digests,
            "{backend}: digests diverged under live scraping"
        );
        assert_eq!(
            scraped_report, quiet_report,
            "{backend}: report diverged under live scraping"
        );
    }
}
