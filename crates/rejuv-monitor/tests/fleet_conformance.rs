//! Golden-file conformance suite for mixed-fleet replay.
//!
//! A small recorded trace for the 4-shard example fleet
//! (`examples/fleet.toml`: sraa/saraa/clta/cusum) and its expected
//! report are checked in under `tests/golden/`. The tests pin three
//! byte-level contracts against refactors:
//!
//! 1. *recording*: re-running the deterministic workload produces the
//!    checked-in trace byte-for-byte (event-log format stability),
//! 2. *replay*: replaying the checked-in trace produces the checked-in
//!    report byte-for-byte (decision + digest stability),
//! 3. *resume*: replaying from the checked-in mid-run checkpoint
//!    produces the same report bytes (checkpoint semantics stability).
//!
//! To regenerate after an *intentional* format or digest change:
//!
//! ```text
//! REJUV_REGEN_GOLDEN=1 cargo test -p rejuv-monitor --test fleet_conformance
//! ```

use rejuv_monitor::{
    read_events, replay_fleet_events, EventLog, FleetConfig, MonitorEvent, SharedBuffer,
    Supervisor, SupervisorConfig, SupervisorSnapshot,
};
use std::path::Path;

const FLEET_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fleet.toml");
const TRACE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_trace.jsonl"
);
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_report.json"
);
const CHECKPOINT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_checkpoint.json"
);

fn config() -> SupervisorConfig {
    SupervisorConfig {
        queue_capacity: 256,
        drain_batch: 16,
        snapshot_every: Some(200),
        ..SupervisorConfig::default()
    }
}

/// The deterministic workload: a pure function of the observation
/// index, mostly-healthy values with periodic sustained spikes so every
/// detector kind does real work.
fn value_at(i: u64) -> f64 {
    if (i / 37) % 9 == 8 {
        55.0 + (i % 5) as f64
    } else {
        3.0 + (i % 6) as f64 * 0.7
    }
}

/// Runs the recorded workload live: returns the trace bytes, the first
/// mid-run checkpoint, and the final report.
fn record_live(fleet: &FleetConfig) -> (Vec<u8>, SupervisorSnapshot, rejuv_monitor::MonitorReport) {
    let config = config();
    let mut sup = Supervisor::with_specs(config, fleet.specs()).expect("example fleet builds");
    let buffer = SharedBuffer::new();
    let mut log = EventLog::new(Box::new(buffer.clone()));
    log.record(&MonitorEvent::FleetStart {
        shards: fleet.shard_count() as u32,
        specs: fleet.specs().to_vec(),
        queue_capacity: config.queue_capacity as u64,
        drain_batch: config.drain_batch as u64,
        snapshot_every: config.snapshot_every,
    })
    .expect("write run header");
    sup.set_log(log);

    let shards = fleet.shard_count() as u64;
    let mut checkpoint = None;
    for i in 0..1600u64 {
        assert!(sup.ingest((i % shards) as usize, value_at(i)));
        if i % 23 == 0 {
            sup.poll_all().unwrap();
        }
        if i == 799 {
            // Mid-run checkpoint at a fully drained point, exactly as a
            // quiescent live daemon would persist one: every queue
            // empty, every shard on a drain-batch boundary.
            while sup.poll_all().unwrap() > 0 {}
            checkpoint = sup.snapshot();
        }
    }
    while sup.poll_all().unwrap() > 0 {}
    sup.take_log().unwrap().flush().unwrap();

    let checkpoint = checkpoint.expect("every kind in the example fleet snapshots");
    (buffer.contents(), checkpoint, sup.report())
}

fn render_report(report: &rejuv_monitor::MonitorReport) -> String {
    serde_json::to_string_pretty(report).expect("render report") + "\n"
}

fn render_checkpoint(snapshot: &SupervisorSnapshot) -> String {
    serde_json::to_string_pretty(snapshot).expect("render checkpoint") + "\n"
}

fn regen_requested() -> bool {
    std::env::var_os("REJUV_REGEN_GOLDEN").is_some()
}

fn read_golden(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {path}: {e}\n\
             (regenerate with REJUV_REGEN_GOLDEN=1)"
        )
    })
}

#[test]
fn golden_files_stay_byte_identical() {
    let fleet = FleetConfig::load(Path::new(FLEET_PATH)).expect("example fleet parses");
    assert!(
        fleet
            .specs()
            .iter()
            .map(|s| s.kind)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            >= 3,
        "the golden fleet must mix at least three detector kinds"
    );

    let (trace, checkpoint, live_report) = record_live(&fleet);

    if regen_requested() {
        std::fs::write(TRACE_PATH, &trace).expect("write golden trace");
        std::fs::write(REPORT_PATH, render_report(&live_report)).expect("write golden report");
        std::fs::write(CHECKPOINT_PATH, render_checkpoint(&checkpoint))
            .expect("write golden checkpoint");
        println!("regenerated golden files under tests/golden/");
        return;
    }

    // 1. Recording stability: the live run reproduces the checked-in
    //    trace bytes exactly.
    assert_eq!(
        trace,
        read_golden(TRACE_PATH),
        "live recording diverged from the golden trace \
         (REJUV_REGEN_GOLDEN=1 to accept an intentional change)"
    );

    // 2. Replay stability: replaying the checked-in trace reproduces
    //    the checked-in report bytes exactly.
    let events = read_events(std::io::Cursor::new(read_golden(TRACE_PATH))).expect("parse trace");
    let MonitorEvent::FleetStart { specs, .. } = &events[0] else {
        panic!("golden trace must begin with a FleetStart header");
    };
    assert_eq!(specs.as_slice(), fleet.specs(), "header matches the fleet");
    let replayed = replay_fleet_events(&events, config(), specs, None).expect("replay");
    let report_bytes = render_report(&replayed.report()).into_bytes();
    assert_eq!(
        report_bytes,
        read_golden(REPORT_PATH),
        "replay report diverged from the golden report"
    );

    // The golden run is a real mixed-fleet workout, not a trivial one.
    let report = replayed.report();
    assert!(report.by_detector.len() >= 3);
    assert!(report.total_rejuvenations > 0);

    // 3. Resume stability: replaying from the checked-in mid-run
    //    checkpoint yields the same report bytes as the full replay.
    let checkpoint_text = String::from_utf8(read_golden(CHECKPOINT_PATH)).unwrap();
    let snapshot: SupervisorSnapshot =
        serde_json::from_str(&checkpoint_text).expect("parse golden checkpoint");
    let resumed = replay_fleet_events(&events, config(), specs, Some(&snapshot)).expect("resume");
    assert_eq!(
        render_report(&resumed.report()).into_bytes(),
        read_golden(REPORT_PATH),
        "resumed replay diverged from the golden report"
    );
}
