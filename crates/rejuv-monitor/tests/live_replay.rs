//! End-to-end replay determinism against the real §3 e-commerce model:
//! a live run feeds the monitoring runtime through a `MonitorBridge`
//! while recording an event log; replaying that log through a fresh
//! supervisor must reproduce the live report byte for byte.

use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_ecommerce::{EcommerceSystem, SystemConfig};
use rejuv_monitor::{
    read_events, replay_events, EventLog, MonitorEvent, SharedBuffer, SharedSupervisor, Supervisor,
    SupervisorConfig,
};

fn detector() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

#[test]
fn live_model_run_replays_byte_identically() {
    let config = SupervisorConfig {
        snapshot_every: Some(1_000),
        ..SupervisorConfig::default()
    };
    let buffer = SharedBuffer::new();
    let mut supervisor = Supervisor::with_shards(config, 1, |_| detector());
    let mut log = EventLog::new(Box::new(buffer.clone()));
    log.record(&MonitorEvent::Start {
        shards: 1,
        detector: "SRAA".to_owned(),
        queue_capacity: config.queue_capacity as u64,
        drain_batch: config.drain_batch as u64,
        snapshot_every: config.snapshot_every,
    })
    .unwrap();
    supervisor.set_log(log);

    // A saturated run so the detector actually fires.
    let shared = SharedSupervisor::new(supervisor);
    let mut system = EcommerceSystem::new(SystemConfig::paper_at_load(9.5).unwrap(), 42);
    system.attach_detector(Box::new(shared.bridge(0)));
    let metrics = system.run(6_000);
    assert!(metrics.rejuvenation_count > 0, "detector should fire");
    drop(system);

    let mut supervisor = shared.try_into_inner().expect("bridges dropped");
    supervisor.take_log().unwrap().flush().unwrap();
    let live_report = supervisor.report();
    assert_eq!(
        live_report.total_rejuvenations, metrics.rejuvenation_count,
        "every model rejuvenation flowed through the runtime"
    );

    let events = read_events(std::io::Cursor::new(buffer.contents())).unwrap();
    let Some(MonitorEvent::Start {
        shards,
        queue_capacity,
        drain_batch,
        snapshot_every,
        ..
    }) = events.first()
    else {
        panic!("log must start with a Start header");
    };
    let replay_config = SupervisorConfig {
        queue_capacity: *queue_capacity as usize,
        drain_batch: *drain_batch as usize,
        snapshot_every: *snapshot_every,
        ..SupervisorConfig::default()
    };
    let replayed = replay_events(&events, replay_config, *shards as usize, |_| detector()).unwrap();
    let replay_report = replayed.report();
    assert_eq!(live_report, replay_report);
    assert_eq!(
        serde_json::to_string(&live_report).unwrap(),
        serde_json::to_string(&replay_report).unwrap()
    );
}
