//! Dead-letter-queue conformance: with `--dlq` semantics enabled, the
//! ingestion plane must never *silently* lose an observation, and a
//! saturated-then-replayed run must be indistinguishable — report,
//! digests, histograms — from a run that never saturated at all.
//!
//! Two suites:
//!
//! 1. A property test drives lossy concurrent producers against every
//!    queue backend x {1, 2, 4} consumer pool and checks the closed
//!    accounting identity per shard:
//!    `accepted + dead_lettered + dlq_overflow == offered` (with the
//!    silent-drop counter pinned at zero).
//! 2. A determinism suite preloads a workload far past the queue
//!    capacity — so most of it dead-letters — lets the pool drain and
//!    replay it, and requires the final report to be byte-identical to
//!    an undropped serial reference, on every backend and consumer
//!    count. Replay at drain-batch boundaries in capture order is what
//!    makes this hold.

use proptest::prelude::*;
use rejuv_core::{DetectorKind, DetectorSpec};
use rejuv_monitor::{ConsumerPool, QueueBackend, Supervisor, SupervisorConfig};

const BACKENDS: [QueueBackend; 3] = [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn];
const CONSUMER_COUNTS: [usize; 3] = [1, 2, 4];

fn supervisor(
    backend: QueueBackend,
    consumers: usize,
    queue_capacity: usize,
    shards: usize,
) -> Supervisor {
    let specs: Vec<DetectorSpec> = (0..shards)
        .map(|i| {
            DetectorSpec::new(if i % 2 == 0 {
                DetectorKind::Sraa
            } else {
                DetectorKind::Clta
            })
        })
        .collect();
    Supervisor::with_specs(
        SupervisorConfig {
            queue_capacity,
            drain_batch: 8,
            backend,
            consumers,
            ..SupervisorConfig::default()
        },
        &specs,
    )
    .expect("default specs build")
}

/// Deterministic workload value, a pure function of `(shard, i)`.
fn value_at(shard: u64, i: u64) -> f64 {
    if (i + shard * 17).is_multiple_of(29) {
        55.0 + (i % 7) as f64
    } else {
        3.0 + ((i + shard * 5) % 9) as f64 * 0.5
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lossy producers hammering a tiny queue from another thread while
    /// the pool drains: whatever interleaving the scheduler picks, every
    /// offered sample is accounted for — accepted into the queue,
    /// pending in the DLQ, or counted as DLQ overflow. Nothing is
    /// silently dropped, on any backend at any consumer count.
    #[test]
    fn accounting_identity_closes_under_lossy_concurrency(
        per_shard in 200u64..600,
        queue_capacity in 8usize..33,
        dlq_capacity in 4usize..65,
    ) {
        const SHARDS: usize = 2;
        for backend in BACKENDS {
            for consumers in CONSUMER_COUNTS {
                let mut sup = supervisor(backend, consumers, queue_capacity, SHARDS);
                sup.enable_dlq(dlq_capacity);
                let senders: Vec<_> = (0..SHARDS).map(|s| sup.sender(s)).collect();
                let pool = ConsumerPool::spawn(sup);
                std::thread::scope(|scope| {
                    for (shard, sender) in senders.iter().enumerate() {
                        scope.spawn(move || {
                            for i in 0..per_shard {
                                // Lossy send: the return value is
                                // deliberately ignored — the identity
                                // below must hold regardless.
                                let _ = sender.send(value_at(shard as u64, i));
                            }
                        });
                    }
                });
                let sup = pool
                    .join()
                    .expect("pool drains cleanly")
                    .supervisor
                    .expect("owned pool returns the supervisor");
                let report = sup.report();
                prop_assert_eq!(
                    report.total_dropped, 0,
                    "{} x{}: a DLQ means zero silent drops", backend, consumers
                );
                for shard in 0..SHARDS {
                    let stats = sup.dlq_stats(shard).expect("DLQ attached");
                    prop_assert_eq!(
                        report.shards[shard].accepted
                            + stats.pending as u64
                            + stats.overflow,
                        per_shard,
                        "{} x{} shard {}: accounting identity violated ({:?})",
                        backend, consumers, shard, stats
                    );
                    prop_assert_eq!(
                        stats.pending as u64,
                        stats.captured - stats.replayed,
                        "{} x{} shard {}: dead-lettered != captured - replayed",
                        backend, consumers, shard
                    );
                }
            }
        }
    }
}

/// Serial ground truth: the same workload through a queue big enough to
/// never saturate, drained by the caller's poll loop.
fn undropped_reference(shards: usize, per_shard: u64) -> String {
    let mut sup = supervisor(
        QueueBackend::Mutex,
        1,
        (per_shard as usize * shards).max(64),
        shards,
    );
    for shard in 0..shards {
        let sender = sup.sender(shard);
        for i in 0..per_shard {
            assert!(
                sender.send(value_at(shard as u64, i)),
                "must never saturate"
            );
        }
    }
    while sup.poll_all().expect("no log attached") > 0 {}
    serde_json::to_string_pretty(&sup.report()).expect("render report")
}

/// A saturated run drains + replays to the same report bytes as the
/// undropped reference: preload 100x the queue capacity (so ~99% of the
/// workload dead-letters), then let the pool replay it at drain-batch
/// boundaries in capture order.
#[test]
fn replayed_saturated_runs_report_identically_to_undropped_runs() {
    const SHARDS: usize = 2;
    const PER_SHARD: u64 = 800;
    const QUEUE_CAPACITY: usize = 8;
    let reference = undropped_reference(SHARDS, PER_SHARD);
    for backend in BACKENDS {
        for consumers in CONSUMER_COUNTS {
            let mut sup = supervisor(backend, consumers, QUEUE_CAPACITY, SHARDS);
            sup.enable_dlq(PER_SHARD as usize);
            // Preload lossily *before* the pool spawns: the queue holds
            // 8, the dead-letter queue the other 792 — guaranteed
            // saturation, deterministic capture order.
            for shard in 0..SHARDS {
                let sender = sup.sender(shard);
                for i in 0..PER_SHARD {
                    assert!(
                        sender.send(value_at(shard as u64, i)),
                        "DLQ absorbs the overflow"
                    );
                }
            }
            assert!(
                sup.dlq_totals().pending > 0,
                "{backend} x{consumers}: the preload must actually saturate"
            );
            let pool = ConsumerPool::spawn(sup);
            let sup = pool
                .join()
                .expect("pool drains cleanly")
                .supervisor
                .expect("owned pool returns the supervisor");
            let totals = sup.dlq_totals();
            assert_eq!(totals.overflow, 0, "{backend} x{consumers}");
            assert_eq!(totals.pending, 0, "{backend} x{consumers}: replay drained");
            assert_eq!(totals.captured, totals.replayed, "{backend} x{consumers}");
            assert!(totals.captured > 0, "{backend} x{consumers}");
            let report = serde_json::to_string_pretty(&sup.report()).expect("render report");
            assert_eq!(
                report, reference,
                "{backend} x{consumers}: a replayed run must be \
                 indistinguishable from one that never saturated"
            );
        }
    }
}
