//! Golden-file conformance suite for the Prometheus text exposition.
//!
//! The same deterministic 4-kind fleet workload that pins the event-log
//! and report formats (`fleet_conformance.rs`) also pins the `/metrics`
//! body: the rendered exposition for the example fleet is checked in
//! under `tests/golden/fleet_metrics.prom` and must stay byte-identical
//! across refactors. The suite additionally asserts the body passes the
//! in-crate exposition linter (HELP/TYPE discipline, family contiguity,
//! cumulative `le` buckets ending in `+Inf == _count`), that rendering
//! is a pure function of the snapshot, and that capturing a snapshot
//! never perturbs the supervisor's own artifacts.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! REJUV_REGEN_GOLDEN=1 cargo test -p rejuv-monitor --test expo_conformance
//! ```

use rejuv_monitor::expo::{lint, render};
use rejuv_monitor::{ExpoSnapshot, FleetConfig, Supervisor, SupervisorConfig};
use std::path::Path;

const FLEET_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fleet.toml");
const METRICS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_metrics.prom"
);

fn config() -> SupervisorConfig {
    SupervisorConfig {
        queue_capacity: 256,
        drain_batch: 16,
        snapshot_every: Some(200),
        ..SupervisorConfig::default()
    }
}

/// The same deterministic workload as the fleet conformance suite: a
/// pure function of the observation index, mostly-healthy values with
/// periodic sustained spikes so every detector kind does real work.
fn value_at(i: u64) -> f64 {
    if (i / 37) % 9 == 8 {
        55.0 + (i % 5) as f64
    } else {
        3.0 + (i % 6) as f64 * 0.7
    }
}

/// Runs the recorded workload and returns the supervisor at its end
/// state, fully drained.
fn run_workload() -> Supervisor {
    let fleet = FleetConfig::load(Path::new(FLEET_PATH)).expect("example fleet parses");
    let mut sup = Supervisor::with_specs(config(), fleet.specs()).expect("example fleet builds");
    let shards = fleet.shard_count() as u64;
    for i in 0..1600u64 {
        assert!(sup.ingest((i % shards) as usize, value_at(i)));
        if i % 23 == 0 {
            sup.poll_all().unwrap();
        }
    }
    while sup.poll_all().unwrap() > 0 {}
    sup
}

fn regen_requested() -> bool {
    std::env::var_os("REJUV_REGEN_GOLDEN").is_some()
}

fn read_golden(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {path}: {e}\n\
             (regenerate with REJUV_REGEN_GOLDEN=1)"
        )
    })
}

#[test]
fn golden_metrics_body_stays_byte_identical() {
    let sup = run_workload();
    let body = render(&ExpoSnapshot::capture(&sup).with_scrapes(1));

    if regen_requested() {
        std::fs::write(METRICS_PATH, &body).expect("write golden metrics body");
        println!("regenerated golden file {METRICS_PATH}");
        return;
    }

    assert_eq!(
        body.into_bytes(),
        read_golden(METRICS_PATH),
        "rendered /metrics body diverged from the golden exposition \
         (REJUV_REGEN_GOLDEN=1 to accept an intentional change)"
    );
}

#[test]
fn golden_metrics_body_passes_the_linter() {
    let sup = run_workload();
    let body = render(&ExpoSnapshot::capture(&sup).with_scrapes(1));
    lint(&body).expect("exposition body is well-formed");
    // The golden run is a real mixed-fleet workout: every shard shows
    // up, and at least one family of each type is present.
    for shard in 0..sup.shard_count() {
        assert!(
            body.contains(&format!("{{shard=\"{shard}\",")),
            "shard {shard} missing from the exposition"
        );
    }
    for kind in ["counter", "gauge", "histogram"] {
        assert!(
            body.lines().any(|l| l.ends_with(&format!(" {kind}"))),
            "no {kind} family in the exposition"
        );
    }
}

#[test]
fn rendering_is_a_pure_function_of_the_run() {
    let a = render(&ExpoSnapshot::capture(&run_workload()).with_scrapes(7));
    let b = render(&ExpoSnapshot::capture(&run_workload()).with_scrapes(7));
    assert_eq!(a, b, "two identical runs rendered different expositions");
}

#[test]
fn capturing_a_snapshot_leaves_the_report_untouched() {
    let mut scraped = run_workload();
    let quiet = run_workload();
    let before = serde_json::to_string_pretty(&scraped.report()).unwrap();
    for _ in 0..5 {
        let _ = render(&ExpoSnapshot::capture(&scraped));
    }
    // Also after further ingestion: scrapes interleaved with work must
    // not change where the run ends up.
    assert!(scraped.ingest(0, 3.0));
    while scraped.poll_all().unwrap() > 0 {}
    let _ = render(&ExpoSnapshot::capture(&scraped));
    assert_eq!(
        before,
        serde_json::to_string_pretty(&quiet.report()).unwrap(),
        "capturing snapshots perturbed the report"
    );
}

/// CI hook: lints an exposition body scraped from a *live* `monitord`
/// process. A no-op unless `REJUV_LINT_FILE` names a file, so the test
/// is invisible in ordinary runs.
#[test]
fn lint_exposition_file() {
    let Some(path) = std::env::var_os("REJUV_LINT_FILE") else {
        return;
    };
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", Path::new(&path).display()));
    lint(&body).unwrap_or_else(|e| {
        panic!(
            "scraped exposition {} failed the linter: {e}",
            Path::new(&path).display()
        )
    });
    assert!(
        body.contains("rejuv_exposition_scrapes_total"),
        "scraped body is missing the scrape counter"
    );
}
