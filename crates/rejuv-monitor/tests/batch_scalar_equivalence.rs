//! Batch-kernel versus scalar-drain A/B suite.
//!
//! `SupervisorConfig::scalar_drain` routes `drain_shard` through the
//! original per-sample loop instead of the batch kernels
//! (`observe_batch` + bulk histogram records + the vectorised
//! timestamp-diff pass). The knob is a debug/ablation switch, never a
//! semantic one: these tests run the same preloaded workload through
//! both paths — across every queue backend and consumer count, for a
//! homogeneous SRAA fleet and the 4-kind example fleet — and require
//! the event-log trace, the final report JSON, the final checkpoint
//! JSON and every per-shard decision digest to match *byte for byte*.
//!
//! Preloading (pushing every observation before the pool spawns) pins
//! the drain-batch boundaries, so even the trace bytes are a pure
//! function of the workload and the comparison is exact.

use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_monitor::{
    ConsumerPool, EventLog, FleetConfig, QueueBackend, SharedBuffer, Supervisor, SupervisorConfig,
};
use std::path::Path;

const FLEET_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fleet.toml");
const CONSUMER_COUNTS: [usize; 3] = [1, 2, 4];
const BACKENDS: [QueueBackend; 3] = [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn];

fn config(backend: QueueBackend, consumers: usize, scalar_drain: bool) -> SupervisorConfig {
    SupervisorConfig {
        queue_capacity: 2_048,
        drain_batch: 16,
        snapshot_every: Some(100),
        backend,
        consumers,
        scalar_drain,
    }
}

fn sraa() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

/// Deterministic workload: mostly-healthy values with sustained spike
/// windows so detectors fire. Purely a function of `(shard, i)`.
fn value_at(shard: u64, i: u64) -> f64 {
    if ((i + shard * 11) / 31) % 7 == 6 {
        50.0 + (i % 5) as f64
    } else {
        3.0 + ((i + shard * 3) % 6) as f64 * 0.7
    }
}

/// Everything a run leaves behind that must be byte-stable.
struct Artifacts {
    trace: Vec<u8>,
    report: String,
    checkpoint: String,
    digests: Vec<String>,
}

/// Preloads the full workload, drains it through a consumer pool, and
/// collects the run's artefacts.
fn pool_run<F>(build: F, shards: usize, per_shard: u64) -> Artifacts
where
    F: FnOnce() -> Supervisor,
{
    let mut sup = build();
    let buffer = SharedBuffer::new();
    sup.set_log(EventLog::new(Box::new(buffer.clone())));
    for shard in 0..shards {
        let sender = sup.sender(shard);
        for i in 0..per_shard {
            assert!(
                sender.send(value_at(shard as u64, i)),
                "workload must fit the queue capacity (preloaded run)"
            );
        }
    }
    let pool = ConsumerPool::spawn(sup);
    let joined = pool.join().expect("pool drains cleanly");
    let mut sup = joined
        .supervisor
        .expect("owned pool returns the supervisor");
    sup.take_log()
        .expect("log attached")
        .flush()
        .expect("flush");
    let report = sup.report();
    let snapshot = sup.snapshot().expect("every detector here snapshots");
    Artifacts {
        trace: buffer.contents(),
        report: serde_json::to_string_pretty(&report).expect("render report"),
        checkpoint: serde_json::to_string_pretty(&snapshot).expect("render checkpoint"),
        digests: report.shards.iter().map(|s| s.digest.clone()).collect(),
    }
}

/// Runs every `{backend, consumer-count}` cell twice — batch kernel and
/// scalar drain — and requires the pairs to agree byte for byte.
fn kernel_ab_is_byte_identical<F>(build: F, shards: usize, per_shard: u64)
where
    F: Fn(SupervisorConfig) -> Supervisor,
{
    for backend in BACKENDS {
        for consumers in CONSUMER_COUNTS {
            let batch = pool_run(
                || build(config(backend, consumers, false)),
                shards,
                per_shard,
            );
            let scalar = pool_run(
                || build(config(backend, consumers, true)),
                shards,
                per_shard,
            );
            assert_eq!(
                batch.digests, scalar.digests,
                "{backend} x{consumers}: batch kernel and scalar drain digests diverged"
            );
            assert_eq!(
                batch.trace, scalar.trace,
                "{backend} x{consumers}: trace bytes diverged between kernels"
            );
            assert_eq!(
                batch.report, scalar.report,
                "{backend} x{consumers}: report bytes diverged between kernels"
            );
            assert_eq!(
                batch.checkpoint, scalar.checkpoint,
                "{backend} x{consumers}: checkpoint bytes diverged between kernels"
            );
            assert!(
                !batch.trace.is_empty(),
                "the workload must actually record events"
            );
        }
    }
}

#[test]
fn homogeneous_fleet_batch_and_scalar_drain_agree() {
    kernel_ab_is_byte_identical(
        |config| Supervisor::with_shards(config, 5, |_| sraa()),
        5,
        600,
    );
}

#[test]
fn mixed_fleet_batch_and_scalar_drain_agree() {
    let fleet = FleetConfig::load(Path::new(FLEET_PATH)).expect("example fleet parses");
    let shards = fleet.shard_count();
    assert!(shards >= 4, "the example fleet mixes four detector kinds");
    kernel_ab_is_byte_identical(
        move |config| Supervisor::with_specs(config, fleet.specs()).expect("fleet builds"),
        shards,
        500,
    );
}

/// The synchronous ingest/poll path (no pool, no threads) must also be
/// kernel-agnostic: `process_sync` drains through the same
/// `drain_shard`, so flipping `scalar_drain` may not move a single
/// digest bit or decision.
#[test]
fn sync_path_batch_and_scalar_drain_agree() {
    let run = |scalar_drain: bool| {
        let mut sup =
            Supervisor::with_shards(config(QueueBackend::Mutex, 1, scalar_drain), 3, |_| sraa());
        let mut fired = Vec::new();
        for i in 0..2_000u64 {
            for shard in 0..3 {
                // Healthy traffic for the first three quarters, then a
                // sustained degradation so the chains definitely walk to
                // a trigger — the A/B must agree on *firing* runs too.
                let value = if i < 1_500 {
                    value_at(shard as u64, i)
                } else {
                    55.0 + (i % 7) as f64
                };
                let decision = sup.process_sync(shard, value).expect("no log attached");
                if decision.is_rejuvenate() {
                    fired.push((shard, i));
                }
            }
        }
        let report = sup.report();
        (
            fired,
            serde_json::to_string_pretty(&report).expect("render report"),
        )
    };
    let (batch_fired, batch_report) = run(false);
    let (scalar_fired, scalar_report) = run(true);
    assert_eq!(batch_fired, scalar_fired, "sync decisions diverged");
    assert_eq!(batch_report, scalar_report, "sync report bytes diverged");
    assert!(
        !batch_fired.is_empty(),
        "workload must trigger rejuvenations"
    );
}
