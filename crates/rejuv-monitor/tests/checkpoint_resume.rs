//! End-to-end checkpoint/resume: a run that checkpoints mid-stream to a
//! file must be continuable by a *fresh* supervisor built from that file
//! — same decisions, same digests, same serialised report as the
//! uninterrupted run.

use rejuv_core::{RejuvenationDetector, Saraa, SaraaConfig};
use rejuv_monitor::{
    load_snapshot, read_events, replay_events_resumed, save_snapshot, EventLog, MonitorEvent,
    SharedBuffer, Supervisor, SupervisorConfig,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn detector() -> Box<dyn RejuvenationDetector> {
    Box::new(Saraa::new(
        SaraaConfig::builder(5.0, 5.0)
            .initial_sample_size(4)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        queue_capacity: 512,
        drain_batch: 32,
        ..SupervisorConfig::default()
    }
}

/// The deterministic workload: shard 1 degrades towards the end.
fn sample(i: u64) -> (usize, f64, f64) {
    let shard = (i % 2) as usize;
    let value = if shard == 1 && i > 600 {
        55.0
    } else {
        3.0 + (i % 6) as f64
    };
    (shard, value, i as f64 * 0.25)
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rejuv-ckpt-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Feeds the full workload through a supervisor that records a trace
/// and persists checkpoints to `ckpt` every 100 observations; returns
/// it with the trace buffer.
fn full_run(ckpt: PathBuf) -> (Supervisor, SharedBuffer) {
    let buffer = SharedBuffer::new();
    let mut supervisor = Supervisor::with_shards(config(), 2, |_| detector());
    let mut log = EventLog::new(Box::new(buffer.clone()));
    log.record(&MonitorEvent::Start {
        shards: 2,
        detector: "SARAA".to_owned(),
        queue_capacity: config().queue_capacity as u64,
        drain_batch: config().drain_batch as u64,
        snapshot_every: None,
    })
    .unwrap();
    supervisor.set_log(log);
    supervisor.set_checkpoint(100, Box::new(move |snap| save_snapshot(&ckpt, snap)));

    for i in 0..1_000u64 {
        let (shard, value, at) = sample(i);
        supervisor.ingest_at(shard, value, at);
        if i % 11 == 0 {
            supervisor.poll_all().unwrap();
        }
        if i == 700 {
            // Stop checkpointing here so the file keeps a genuinely
            // *mid-run* snapshot (the simulated crash point).
            while supervisor.poll_all().unwrap() > 0 {}
            let _ = supervisor.take_checkpoint();
        }
    }
    while supervisor.poll_all().unwrap() > 0 {}
    supervisor.take_log().unwrap().flush().unwrap();
    (supervisor, buffer)
}

#[test]
fn resuming_from_a_mid_run_checkpoint_file_continues_the_digests() {
    let ckpt = scratch_file("mid_run.json");
    let (live, buffer) = full_run(ckpt.clone());
    let live_report = live.report();
    assert!(
        live_report.total_rejuvenations > 0,
        "the degraded shard must fire"
    );

    // The file holds the *last cadence* checkpoint — strictly mid-run.
    let snapshot = load_snapshot(&ckpt).unwrap();
    let covered: u64 = snapshot.shards.iter().map(|s| s.processed).sum();
    assert!(
        (100..1_000).contains(&covered),
        "checkpoint must be mid-run, covered {covered}"
    );

    // A fresh supervisor resumed from the file and fed the recorded
    // suffix reproduces the uninterrupted run's report byte-for-byte.
    let events = read_events(std::io::Cursor::new(buffer.contents())).unwrap();
    let resumed =
        replay_events_resumed(&events, config(), 2, |_| detector(), Some(&snapshot)).unwrap();
    let resumed_report = resumed.report();
    assert_eq!(live_report, resumed_report);
    assert_eq!(
        serde_json::to_string(&live_report).unwrap(),
        serde_json::to_string(&resumed_report).unwrap(),
        "digests, counters and histograms must continue the original run"
    );

    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn direct_restore_continues_the_stream_without_a_trace() {
    // Uninterrupted reference.
    let mut reference = Supervisor::with_shards(config(), 2, |_| detector());
    for i in 0..1_000u64 {
        let (shard, value, at) = sample(i);
        reference.process_sync_at(shard, value, at).unwrap();
    }

    // Interrupted run: checkpoint into memory at observation 500, build
    // a brand-new supervisor from the snapshot, feed only the suffix.
    let mut first_half = Supervisor::with_shards(config(), 2, |_| detector());
    for i in 0..500u64 {
        let (shard, value, at) = sample(i);
        first_half.process_sync_at(shard, value, at).unwrap();
    }
    let captured = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&captured);
    first_half.set_checkpoint(
        1,
        Box::new(move |snap| {
            *slot.lock().unwrap() = Some(snap.clone());
            Ok(())
        }),
    );
    first_half.checkpoint_now().unwrap();
    let snapshot = captured.lock().unwrap().take().unwrap();
    drop(first_half);

    let mut second_half = Supervisor::with_shards(config(), 2, |_| detector());
    second_half.restore(&snapshot).unwrap();
    for i in 500..1_000u64 {
        let (shard, value, at) = sample(i);
        second_half.process_sync_at(shard, value, at).unwrap();
    }

    let expected = reference.report();
    let continued = second_half.report();
    assert_eq!(
        expected
            .shards
            .iter()
            .map(|s| &s.digest)
            .collect::<Vec<_>>(),
        continued
            .shards
            .iter()
            .map(|s| &s.digest)
            .collect::<Vec<_>>(),
        "decision digests must prove the resumed run continues the original"
    );
    assert_eq!(expected, continued, "the full reports match too");
}
