//! Property-based tests for heterogeneous fleets: an arbitrary mixed
//! [`FleetConfig`] must survive serialise→parse unchanged, and an
//! arbitrary mixed-fleet [`SupervisorSnapshot`] must survive
//! restore→snapshot (and a JSON round trip) unchanged — the fleet-level
//! extension of `rejuv-core`'s per-detector snapshot round-trip suite.

use proptest::prelude::*;
use rejuv_core::{DetectorKind, DetectorSpec};
use rejuv_monitor::{FleetConfig, Supervisor, SupervisorConfig, SupervisorSnapshot};

/// An arbitrary valid spec: any detector kind with knobs drawn from
/// ranges every kind's builder accepts, so `FleetConfig::new` never
/// rejects a generated fleet.
fn spec_strategy() -> impl Strategy<Value = DetectorSpec> {
    (
        0usize..DetectorKind::ALL.len(),
        (1.0f64..10.0, 0.5f64..10.0),
        (1usize..40, 1usize..6, 1u32..5),
        (1.0f64..3.0, 0.0f64..1.5, 0.5f64..8.0),
        (0.05f64..1.0, 1.0f64..4.0),
    )
        .prop_map(
            |(
                kind,
                (mu, sigma),
                (sample_size, buckets, depth),
                (quantile, reference, decision),
                (weight, limit),
            )| {
                let mut spec = DetectorSpec::new(DetectorKind::ALL[kind]);
                spec.mu = mu;
                spec.sigma = sigma;
                spec.sample_size = sample_size;
                spec.buckets = buckets;
                spec.depth = depth;
                spec.quantile = quantile;
                spec.reference = reference;
                spec.decision = decision;
                spec.weight = weight;
                spec.limit = limit;
                spec
            },
        )
}

fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
    proptest::collection::vec(spec_strategy(), 1..8)
        .prop_map(|specs| FleetConfig::new(specs).expect("generated specs are valid"))
}

proptest! {
    /// `to_toml` renders with shortest-round-trip float formatting, so
    /// parsing the rendered file must reproduce the fleet exactly —
    /// every kind, every knob, bit-for-bit floats.
    #[test]
    fn fleet_config_toml_round_trips(fleet in fleet_strategy()) {
        let text = fleet.to_toml();
        let back = FleetConfig::parse(&text).expect("rendered fleet config parses");
        prop_assert_eq!(back, fleet);
    }

    /// A mixed-fleet checkpoint restored into a fresh same-fleet
    /// supervisor and re-snapshotted must be unchanged, including after
    /// a JSON round trip — digests, counters, metrics and the carried
    /// per-shard specs all survive.
    #[test]
    fn mixed_fleet_snapshot_round_trips(
        fleet in fleet_strategy(),
        values in proptest::collection::vec(0.0f64..60.0, 0..300),
    ) {
        let config = SupervisorConfig::default();
        let mut live = Supervisor::with_specs(config, fleet.specs()).unwrap();
        let shards = fleet.shard_count();
        for (i, &v) in values.iter().enumerate() {
            live.process_sync(i % shards, v).unwrap();
        }
        let snapshot = live.snapshot().expect("every kind snapshots");

        let json = serde_json::to_string(&snapshot).expect("snapshot serialises");
        let reparsed: SupervisorSnapshot =
            serde_json::from_str(&json).expect("snapshot deserialises");
        prop_assert_eq!(&reparsed, &snapshot, "JSON round trip must be lossless");

        let mut fresh = Supervisor::with_specs(config, fleet.specs()).unwrap();
        fresh.restore(&reparsed).expect("same-fleet restore succeeds");
        let again = fresh.snapshot().expect("snapshot after restore");
        prop_assert_eq!(&again, &snapshot);
    }
}
