//! Deterministic crash-simulation sweep (PR-gate subset).
//!
//! Requires `--features failpoints`; without the feature this file
//! compiles to nothing. The fast subset below arms every catalog site
//! under two master seeds and must finish well inside a minute; the
//! full ≥256-traces-per-guarantee sweep runs the same engine with more
//! seeds from CI's non-blocking job (`monitord --dst --dst-seeds 8`).
#![cfg(feature = "failpoints")]

use rejuv_monitor::assurance::dst::{run, DstOptions};
use rejuv_monitor::assurance::failpoints::CATALOG;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rejuv-dst-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fast_sweep_covers_every_site_and_upholds_all_guarantees() {
    let dir = scratch("fast");
    let opts = DstOptions {
        dir: dir.clone(),
        seeds: 2,
        base_seed: 0xD57,
        sites: None,
    };
    let summary = run(&opts).expect("sweep runs");
    for line in summary.lines() {
        eprintln!("{line}");
    }
    assert!(
        summary.violations.is_empty(),
        "guarantee violations:\n{}",
        summary.violations.join("\n")
    );
    assert!(
        summary.uncovered.is_empty(),
        "sites never crashed: {:?}",
        summary.uncovered
    );
    assert_eq!(summary.covered.len(), CATALOG.len());
    // Every crash trace feeds all four oracles; the clean calibration
    // runs add more. A sweep that silently stopped checking would show
    // up here.
    for guarantee in ["G1", "G2", "G3", "G4"] {
        let checks = summary.checks.get(guarantee).copied().unwrap_or(0);
        assert!(
            checks >= summary.crashes,
            "{guarantee} checked only {checks} times for {} crashes",
            summary.crashes
        );
    }
    assert!(summary.crashes as usize >= CATALOG.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn site_filtered_sweep_stays_scoped() {
    let dir = scratch("filtered");
    let opts = DstOptions {
        dir: dir.clone(),
        seeds: 1,
        base_seed: 7,
        sites: Some(vec!["checkpoint.renamed".to_owned()]),
    };
    let summary = run(&opts).expect("sweep runs");
    assert!(
        summary.violations.is_empty(),
        "violations:\n{}",
        summary.violations.join("\n")
    );
    assert!(summary.covered.contains("checkpoint.renamed"));
    assert_eq!(summary.covered.len(), 1, "only the requested site armed");
    assert!(
        summary.uncovered.is_empty(),
        "coverage is not enforced for filtered sweeps"
    );
    std::fs::remove_dir_all(&dir).ok();
}
