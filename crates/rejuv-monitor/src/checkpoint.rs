//! Crash-safe persistence of supervisor checkpoints.
//!
//! A checkpoint file is the monitor's own rejuvenation insurance: the
//! detectors only assure performance if *their* state survives a
//! monitor restart, so the file on disk must never be observable in a
//! half-written state. [`save_snapshot`] writes the JSON to a sibling
//! temporary file, syncs it to stable storage, and atomically renames
//! it over the target — a crash (or `SIGTERM`) at any instant leaves
//! either the previous complete checkpoint or the new complete
//! checkpoint, never a torn one. [`load_snapshot`] reads a file written
//! that way and validates it parses as a [`SupervisorSnapshot`];
//! topology and version validation happen in
//! [`crate::Supervisor::restore`].
//!
//! Since format v2 the snapshot carries one
//! [`rejuv_core::DetectorSpec`] per shard (when the supervisor was
//! built from a fleet config), so a checkpoint file records the full
//! fleet topology and restore rejects per-shard kind *and* knob drift.

use crate::assurance::failpoints::fp;
use crate::supervisor::SupervisorSnapshot;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The sibling temporary path `save_snapshot` stages through:
/// `<file>.tmp` in the same directory, so the final rename never
/// crosses a filesystem boundary (cross-device renames are not atomic).
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically persists a checkpoint as pretty-printed JSON.
///
/// Write-temp-then-rename: the bytes are fully written and fsynced to
/// `<path>.tmp` before the rename publishes them, so a reader (or a
/// resuming monitor) can never observe a partially written checkpoint
/// at `path`.
///
/// # Errors
///
/// Propagates file creation, write, sync and rename failures; on error
/// the previous checkpoint at `path`, if any, is left untouched.
pub fn save_snapshot(path: &Path, snapshot: &SupervisorSnapshot) -> io::Result<()> {
    let text = serde_json::to_string_pretty(snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let staging = staging_path(path);
    let mut file = File::create(&staging)?;
    fp!("checkpoint.staging-created");
    file.write_all(text.as_bytes())?;
    file.write_all(b"\n")?;
    fp!("checkpoint.written-unsynced");
    // Data must be durable *before* the rename makes it the checkpoint:
    // rename-then-crash with unsynced data could publish a hollow file.
    file.sync_all()?;
    drop(file);
    fp!("checkpoint.synced");
    std::fs::rename(&staging, path)?;
    fp!("checkpoint.renamed");
    Ok(())
}

/// Loads a checkpoint written by [`save_snapshot`].
///
/// Any `<path>.tmp` staging leftover from a crash mid-save is ignored —
/// only the atomically published file is ever read.
///
/// # Errors
///
/// Propagates open/read failures; `InvalidData` if the file does not
/// parse as a [`SupervisorSnapshot`].
pub fn load_snapshot(path: &Path) -> io::Result<SupervisorSnapshot> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint {}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{Supervisor, SupervisorConfig};
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn sraa() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rejuv-checkpoint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("ckpt.json");
        let mut sup = Supervisor::with_shards(SupervisorConfig::default(), 2, |_| sraa());
        for i in 0..25 {
            sup.process_sync(i % 2, 40.0).unwrap();
        }
        let snap = sup.snapshot().unwrap();
        save_snapshot(&path, &snap).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), snap);
        assert!(
            !staging_path(&path).exists(),
            "staging file is consumed by the rename"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_never_exposes_a_torn_checkpoint() {
        let dir = scratch_dir("torn");
        let path = dir.join("ckpt.json");
        let sup = Supervisor::with_shards(SupervisorConfig::default(), 1, |_| sraa());
        let old = sup.snapshot().unwrap();
        save_snapshot(&path, &old).unwrap();

        // Simulate a crash that died after partially writing the
        // staging file but before the rename: the published checkpoint
        // must still be the old, complete one.
        std::fs::write(staging_path(&path), b"{\"version\":1,\"shar").unwrap();
        assert_eq!(
            load_snapshot(&path).unwrap(),
            old,
            "a torn staging file is never observed through the real path"
        );

        // And the next successful save simply replaces the leftovers.
        let mut sup = Supervisor::with_shards(SupervisorConfig::default(), 1, |_| sraa());
        sup.process_sync(0, 60.0).unwrap();
        let new = sup.snapshot().unwrap();
        save_snapshot(&path, &new).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), new);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_a_mid_json_truncation_and_restore_stays_untouched() {
        let dir = scratch_dir("midcut");
        let path = dir.join("ckpt.json");
        let mut sup = Supervisor::with_shards(SupervisorConfig::default(), 2, |_| sraa());
        for i in 0..40 {
            sup.process_sync(i % 2, 45.0).unwrap();
        }
        save_snapshot(&path, &sup.snapshot().unwrap()).unwrap();

        // Cut the published file mid-JSON (a torn copy, an interrupted
        // download, a filesystem that lied about durability).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("ckpt.json"),
            "diagnostic names the offending file: {err}"
        );

        // A supervisor asked to resume from the torn file must be left
        // exactly as it was — the load already failed, so nothing is
        // ever handed to restore.
        let fresh = Supervisor::with_shards(SupervisorConfig::default(), 2, |_| sraa());
        let before = serde_json::to_string(&fresh.report()).unwrap();
        assert!(load_snapshot(&path).is_err());
        assert_eq!(serde_json::to_string(&fresh.report()).unwrap(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_trailing_garbage() {
        let dir = scratch_dir("trailing");
        let path = dir.join("ckpt.json");
        let sup = Supervisor::with_shards(SupervisorConfig::default(), 1, |_| sraa());
        save_snapshot(&path, &sup.snapshot().unwrap()).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"}} trailing junk");
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = scratch_dir("garbage");
        let path = dir.join("ckpt.json");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
