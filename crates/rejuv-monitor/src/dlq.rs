//! Per-shard dead-letter queue for observations that lossy pushes
//! would otherwise silently drop.
//!
//! The paper's detectors (SRAA/SARAA/CLTA) estimate µX/σX from the
//! observation stream; every sample a saturated [`ObsQueue`] discards
//! biases those estimates exactly when the system is degrading — the
//! moment detection quality matters most. With a [`DeadLetterQueue`]
//! attached, the queue facade *captures* the actual `(value, at)`
//! samples instead of dropping them, and the drain path *replays* them
//! back into the shard (in capture order, at drain-batch boundaries)
//! once back-pressure clears.
//!
//! # Ordering invariant
//!
//! The logical per-shard stream is always `main queue ++ dead-letter
//! queue`. To keep that true, a lossy push consults the DLQ *first*:
//! while any sample is pending in the DLQ, new lossy pushes append to
//! the DLQ even if the main queue has room. Replay happens at the top
//! of each drain, re-filling the main queue from the DLQ front before
//! samples are popped. Together these preserve the per-producer FIFO
//! order that the decision digests are defined over, so a run that
//! saturates-and-replays produces the same report bytes as one that
//! never saturated.
//!
//! # Accounting
//!
//! The queue's `accepted` counter counts a sample once, when it enters
//! the *main* queue (replayed samples are counted at replay). With
//! `pending = captured - replayed`, every offered sample is in exactly
//! one bucket:
//!
//! ```text
//! accepted + pending + overflow == offered
//! ```
//!
//! `overflow` — a full DLQ — is the only true loss, and it is counted,
//! never silent. The DLQ never blocks a producer.
//!
//! [`ObsQueue`]: crate::queue::ObsQueue

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::bus::{EventBus, OpEvent};

/// A point-in-time accounting view of a [`DeadLetterQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DlqStats {
    /// Samples currently held (captured but not yet replayed).
    pub pending: usize,
    /// Lifetime samples captured from lossy pushes.
    pub captured: u64,
    /// Lifetime samples replayed back into the main queue.
    pub replayed: u64,
    /// Lifetime samples lost because the DLQ itself was full.
    pub overflow: u64,
}

/// A bounded FIFO of `(value, at)` samples a full shard queue would
/// have dropped. Attached to an [`ObsQueue`](crate::queue::ObsQueue)
/// via [`Supervisor::enable_dlq`](crate::supervisor::Supervisor::enable_dlq).
#[derive(Debug)]
pub struct DeadLetterQueue {
    shard: u32,
    capacity: usize,
    state: Mutex<VecDeque<(f64, f64)>>,
    /// Lock-free mirror of `state.len()` so the push fast path can
    /// skip the mutex while the DLQ is empty.
    pending_hint: AtomicUsize,
    captured: AtomicU64,
    replayed: AtomicU64,
    overflow: AtomicU64,
    bus: Mutex<Option<Arc<EventBus>>>,
}

impl DeadLetterQueue {
    /// A dead-letter queue for shard `shard` holding at most
    /// `capacity` pending samples.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(shard: u32, capacity: usize) -> Self {
        assert!(capacity > 0, "dead-letter capacity must be positive");
        Self {
            shard,
            capacity,
            state: Mutex::new(VecDeque::new()),
            pending_hint: AtomicUsize::new(0),
            captured: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            bus: Mutex::new(None),
        }
    }

    /// The shard index this DLQ serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Maximum pending samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently pending (captured, not yet replayed). May be
    /// momentarily stale under concurrency; exact when quiescent.
    pub fn pending(&self) -> usize {
        self.pending_hint.load(Ordering::Acquire)
    }

    /// Point-in-time accounting view.
    pub fn stats(&self) -> DlqStats {
        DlqStats {
            pending: self.pending(),
            captured: self.captured.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }

    /// Attaches an operational event bus; capture/replay/overflow
    /// transitions publish [`OpEvent`]s to it.
    pub fn set_bus(&self, bus: Arc<EventBus>) {
        *self.bus.lock().expect("dlq bus lock poisoned") = Some(bus);
    }

    fn publish(&self, event: OpEvent) {
        if let Some(bus) = self.bus.lock().expect("dlq bus lock poisoned").as_ref() {
            bus.publish(event);
        }
    }

    /// Captures one sample the main queue rejected. Returns `false`
    /// only on DLQ overflow (the sample is lost, with accounting).
    pub(crate) fn capture_one(&self, value: f64, at: f64) -> bool {
        let mut it = std::iter::once((value, at));
        self.capture_iter(&mut it, 1) == 1
    }

    /// Captures up to `want` samples from `it`, oldest first. Returns
    /// the number captured; the shortfall is counted as overflow and
    /// the corresponding samples are left unconsumed in `it` (the
    /// caller discards them).
    pub(crate) fn capture_iter(
        &self,
        it: &mut dyn Iterator<Item = (f64, f64)>,
        want: usize,
    ) -> usize {
        if want == 0 {
            return 0;
        }
        let mut state = self.state.lock().expect("dlq state lock poisoned");
        let was_empty = state.is_empty();
        let take = want.min(self.capacity - state.len());
        state.extend(it.take(take));
        self.pending_hint.store(state.len(), Ordering::Release);
        drop(state);
        let lost = want - take;
        if take > 0 {
            self.captured.fetch_add(take as u64, Ordering::Relaxed);
            if was_empty {
                self.publish(OpEvent::QueueSaturated { shard: self.shard });
            }
            self.publish(OpEvent::SamplesDeadLettered {
                shard: self.shard,
                count: take as u64,
            });
        }
        if lost > 0 {
            self.overflow.fetch_add(lost as u64, Ordering::Relaxed);
            self.publish(OpEvent::DlqOverflow {
                shard: self.shard,
                count: lost as u64,
            });
        }
        take
    }

    /// Replays pending samples through `push`, which receives an
    /// iterator over the pending samples (oldest first) plus their
    /// count and returns how many it actually accepted. Only the
    /// accepted prefix is removed from the DLQ.
    pub(crate) fn replay_with<F>(&self, push: F) -> usize
    where
        F: FnOnce(&mut dyn Iterator<Item = (f64, f64)>, usize) -> usize,
    {
        let mut state = self.state.lock().expect("dlq state lock poisoned");
        let pending = state.len();
        if pending == 0 {
            return 0;
        }
        let took = {
            let mut it = state.iter().copied();
            push(&mut it, pending)
        };
        if took > 0 {
            state.drain(..took);
            self.pending_hint.store(state.len(), Ordering::Release);
            self.replayed.fetch_add(took as u64, Ordering::Relaxed);
            drop(state);
            self.publish(OpEvent::DlqReplayed {
                shard: self.shard,
                count: took as u64,
            });
        }
        took
    }

    /// The pending samples, oldest first (for checkpointing).
    pub fn contents(&self) -> Vec<(f64, f64)> {
        self.state
            .lock()
            .expect("dlq state lock poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Clears pending samples and zeroes all lifetime counters (used
    /// when restoring from a checkpoint that predates this DLQ).
    pub(crate) fn reset(&self) {
        let mut state = self.state.lock().expect("dlq state lock poisoned");
        state.clear();
        self.pending_hint.store(0, Ordering::Release);
        self.captured.store(0, Ordering::Relaxed);
        self.replayed.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
    }

    /// Replaces pending samples and lifetime counters wholesale (used
    /// when restoring from a v4 checkpoint). Pending samples beyond
    /// `capacity` are kept: a checkpoint written by a larger DLQ must
    /// not lose data on restore.
    pub(crate) fn restore(
        &self,
        samples: &[(f64, f64)],
        captured: u64,
        replayed: u64,
        overflow: u64,
    ) {
        let mut state = self.state.lock().expect("dlq state lock poisoned");
        state.clear();
        state.extend(samples.iter().copied());
        self.pending_hint.store(state.len(), Ordering::Release);
        self.captured.store(captured, Ordering::Relaxed);
        self.replayed.store(replayed, Ordering::Relaxed);
        self.overflow.store(overflow, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_then_overflow_accounts_every_sample() {
        let dlq = DeadLetterQueue::new(0, 2);
        assert!(dlq.capture_one(1.0, 0.1));
        assert!(dlq.capture_one(2.0, 0.2));
        assert!(!dlq.capture_one(3.0, 0.3), "third sample overflows");
        let stats = dlq.stats();
        assert_eq!(stats.pending, 2);
        assert_eq!(stats.captured, 2);
        assert_eq!(stats.overflow, 1);
        assert_eq!(dlq.contents(), vec![(1.0, 0.1), (2.0, 0.2)]);
    }

    #[test]
    fn partial_batch_capture_counts_the_shortfall() {
        let dlq = DeadLetterQueue::new(3, 3);
        let samples = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0), (5.0, 5.0)];
        let mut it = samples.iter().copied();
        assert_eq!(dlq.capture_iter(&mut it, samples.len()), 3);
        let stats = dlq.stats();
        assert_eq!((stats.captured, stats.overflow), (3, 2));
        assert_eq!(dlq.contents(), vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
    }

    #[test]
    fn replay_removes_only_the_accepted_prefix() {
        let dlq = DeadLetterQueue::new(0, 8);
        for i in 0..4 {
            assert!(dlq.capture_one(i as f64, i as f64));
        }
        // Downstream only has room for two.
        let took = dlq.replay_with(|it, want| {
            assert_eq!(want, 4);
            it.take(2).count()
        });
        assert_eq!(took, 2);
        let stats = dlq.stats();
        assert_eq!(stats.pending, 2);
        assert_eq!(stats.replayed, 2);
        assert_eq!(dlq.contents(), vec![(2.0, 2.0), (3.0, 3.0)]);
        // Second replay drains the rest.
        assert_eq!(dlq.replay_with(|it, want| it.take(want).count()), 2);
        assert_eq!(dlq.pending(), 0);
        assert_eq!(dlq.stats().replayed, 4);
    }

    #[test]
    fn bus_events_track_the_lifecycle() {
        let bus = Arc::new(EventBus::new());
        let sub = bus.subscribe(16);
        let dlq = DeadLetterQueue::new(7, 1);
        dlq.set_bus(Arc::clone(&bus));
        assert!(dlq.capture_one(1.0, 0.0));
        assert!(!dlq.capture_one(2.0, 0.0));
        dlq.replay_with(|it, want| it.take(want).count());
        assert_eq!(
            sub.drain(),
            vec![
                OpEvent::QueueSaturated { shard: 7 },
                OpEvent::SamplesDeadLettered { shard: 7, count: 1 },
                OpEvent::DlqOverflow { shard: 7, count: 1 },
                OpEvent::DlqReplayed { shard: 7, count: 1 },
            ]
        );
    }

    #[test]
    fn restore_replaces_state_and_counters() {
        let dlq = DeadLetterQueue::new(0, 4);
        assert!(dlq.capture_one(9.0, 9.0));
        dlq.restore(&[(1.0, 1.0), (2.0, 2.0)], 10, 7, 3);
        let stats = dlq.stats();
        assert_eq!(stats.pending, 2);
        assert_eq!((stats.captured, stats.replayed, stats.overflow), (10, 7, 3));
        dlq.reset();
        assert_eq!(dlq.stats(), DlqStats::default());
    }
}
