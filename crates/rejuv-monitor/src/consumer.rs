//! The parked consumer thread — event-driven ingestion.
//!
//! The original runtime drained queues from a caller-owned poll loop:
//! `while supervisor.poll_all()? > 0 {}` plus `yield_now`, which pegs a
//! core whenever producers go quiet. [`ConsumerThread`] replaces that
//! with a dedicated thread that *parks* on a [`WorkNotifier`] condvar
//! whenever every shard queue is empty; the first push into an empty
//! queue wakes it (see [`crate::queue::ObsQueue::attach_notifier`]).
//! Between batches the consumer costs zero CPU.
//!
//! Shutdown is explicit and loss-free: [`ConsumerThread::join`] signals
//! the notifier, the thread drains every queue to empty one final time,
//! and ownership of the supervisor (when the thread owned it) returns
//! to the caller for the end-of-run report. Producers must stop pushing
//! before `join` for the final drain to be complete.

use crate::assurance::failpoints::fp;
use crate::bridge::SharedSupervisor;
use crate::pool::{ConsumerPool, PoolStats};
use crate::supervisor::Supervisor;
use std::io;

/// A drain plane that sleeps between batches instead of spinning.
///
/// Since the consumer-pool runtime this is a façade over
/// [`ConsumerPool`]: it spawns `supervisor.config().consumers` worker
/// threads (default 1) with whole-shard ownership and bounded
/// work-stealing, keeping the original one-call spawn/join surface.
pub struct ConsumerThread {
    pool: ConsumerPool,
}

impl std::fmt::Debug for ConsumerThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsumerThread")
            .field("parks", &self.parks())
            .finish_non_exhaustive()
    }
}

impl ConsumerThread {
    /// Spawns a consumer pool that owns `supervisor` outright. Clone
    /// the shard senders *before* calling this;
    /// [`ConsumerThread::join`] hands the supervisor back.
    pub fn spawn(supervisor: Supervisor) -> Self {
        ConsumerThread {
            pool: ConsumerPool::spawn(supervisor),
        }
    }

    /// Spawns consumers over a [`SharedSupervisor`], coexisting with
    /// synchronous [`crate::MonitorBridge`]s. `join` returns `None`;
    /// the shared handle keeps owning the supervisor.
    pub fn spawn_shared(shared: &SharedSupervisor) -> Self {
        ConsumerThread {
            pool: ConsumerPool::spawn_shared(shared),
        }
    }

    /// Times a consumer actually went to sleep waiting for work,
    /// summed over the pool's workers.
    pub fn parks(&self) -> u64 {
        self.pool.parks()
    }

    /// Current drain-plane telemetry (steal/park/per-worker counters).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// A cloneable telemetry handle for scraper threads; see
    /// [`ConsumerPool::stats_handle`](crate::ConsumerPool::stats_handle).
    pub fn stats_handle(&self) -> crate::pool::PoolStatsHandle {
        self.pool.stats_handle()
    }

    /// Signals shutdown, waits for the final loss-free drain, and
    /// returns the supervisor when the pool owned one
    /// ([`ConsumerThread::spawn`]); `None` for the shared flavour.
    ///
    /// # Errors
    ///
    /// Propagates event-log / checkpoint-sink failures from the drain
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if a consumer worker itself panicked.
    pub fn join(self) -> io::Result<Option<Supervisor>> {
        self.join_stats().map(|(supervisor, _)| supervisor)
    }

    /// Like [`ConsumerThread::join`], but also returns the pool's final
    /// drain-plane telemetry so callers (e.g. `monitord`) can report
    /// steals, parks and per-worker drains after shutdown.
    ///
    /// # Errors
    ///
    /// Propagates event-log / checkpoint-sink failures from the drain
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if a consumer worker itself panicked.
    pub fn join_stats(self) -> io::Result<(Option<Supervisor>, PoolStats)> {
        fp!("consumer.join");
        self.pool
            .join()
            .map(|joined| (joined.supervisor, joined.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn sraa() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn owned_consumer_drains_everything_and_returns_supervisor() {
        let supervisor = Supervisor::with_shards(
            SupervisorConfig {
                queue_capacity: 64,
                drain_batch: 16,
                ..SupervisorConfig::default()
            },
            3,
            |_| sraa(),
        );
        let senders: Vec<_> = (0..3).map(|s| supervisor.sender(s)).collect();
        let consumer = ConsumerThread::spawn(supervisor);
        std::thread::scope(|scope| {
            for sender in &senders {
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        sender.send_blocking(3.0 + (i % 5) as f64);
                    }
                });
            }
        });
        let supervisor = consumer.join().unwrap().expect("owned flavour");
        let report = supervisor.report();
        assert_eq!(report.total_processed, 15_000);
        assert_eq!(report.total_dropped, 0);
    }

    #[test]
    fn consumer_parks_while_idle_instead_of_spinning() {
        let supervisor = Supervisor::with_shards(SupervisorConfig::default(), 1, |_| sraa());
        let sender = supervisor.sender(0);
        let consumer = ConsumerThread::spawn(supervisor);
        // Let the consumer find the queues empty and go to sleep.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(consumer.parks() >= 1, "idle consumer parked");
        // A push into the empty queue wakes it; wait for the drain.
        sender.send(42.0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while sender.backlog() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(sender.backlog(), 0, "the wakeup drained the push");
        let supervisor = consumer.join().unwrap().expect("owned");
        assert_eq!(supervisor.processed(0), 1);
    }

    #[test]
    fn shared_consumer_coexists_with_bridges() {
        let supervisor = Supervisor::with_shards(SupervisorConfig::default(), 2, |_| sraa());
        let shared = SharedSupervisor::new(supervisor);
        let consumer = ConsumerThread::spawn_shared(&shared);
        let mut bridge = shared.bridge(0);
        let sender = shared.with(|s| s.sender(1));
        for i in 0..200 {
            bridge.observe(4.0 + (i % 3) as f64);
            sender.send(5.0);
        }
        assert!(consumer.join().unwrap().is_none(), "shared flavour");
        let report = shared.report();
        assert_eq!(report.shards[0].processed, 200, "bridge path");
        assert_eq!(report.shards[1].processed, 200, "sender path drained");
    }
}
