//! The fleet configuration file format: one detector spec per shard.
//!
//! A [`FleetConfig`] assigns every monitored shard (host) its own
//! [`DetectorSpec`] — kind, SLA baseline and knobs — so one supervisor
//! can run a *mixed* fleet, the deployment shape the ROADMAP's
//! "heterogeneous shards" item asks for. The on-disk format is a
//! minimal TOML-like dialect parsed without any dependency, mirroring
//! the hand-rolled key=value style of `rejuv-core`'s config builders:
//!
//! ```text
//! # fleet.toml — 4 hosts, three detector families
//! [fleet]
//! shards = 4
//!
//! [defaults]
//! mu = 5.0            # SLA baseline applied to every shard
//! sigma = 5.0
//!
//! [shard 0]
//! detector = sraa
//! sample_size = 2
//! buckets = 5
//! depth = 3
//!
//! [shard 1]
//! detector = saraa
//! sample_size = 4
//!
//! [shard 2]
//! detector = clta
//! quantile = 1.96
//!
//! [shard 3]
//! detector = cusum
//! reference = 0.5
//! decision = 5.0
//! ```
//!
//! Rules:
//!
//! * `[fleet] shards = N` fixes the shard count; otherwise it is the
//!   highest `[shard i]` index + 1. Shards without a section run the
//!   `[defaults]` spec unchanged.
//! * `[defaults]` keys are layered under every shard section; a shard's
//!   own keys win. `detector` selects the kind (default `sraa`), and a
//!   kind switch re-seeds the kind's default knobs before any explicit
//!   keys apply.
//! * `#` starts a comment; values may be bare or double-quoted; every
//!   spec is validated through the `rejuv-core` builders at parse time.
//!
//! [`FleetConfig::to_toml`] renders a parseable file that round-trips
//! losslessly (shortest-round-trip float formatting), the property the
//! fleet proptest suite pins down.

use rejuv_core::{ConfigError, DetectorKind, DetectorSpec, RejuvenationDetector};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Per-shard detector assignments for one supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    specs: Vec<DetectorSpec>,
}

/// Why a fleet config file was rejected.
#[derive(Debug)]
pub enum FleetError {
    /// The file defines no shards at all.
    Empty,
    /// A line is not a section header, key=value pair, comment or blank.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// An unrecognised `[section]` name.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The offending section name.
        section: String,
    },
    /// Two sections configure the same shard index.
    DuplicateShard {
        /// The shard index configured twice.
        shard: usize,
    },
    /// A `[shard i]` index is outside `0..shards`.
    ShardOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// The declared fleet size.
        shards: usize,
    },
    /// An unrecognised key in a section.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A value failed to parse as its key's type.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value was rejected.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// A shard's assembled spec failed detector validation.
    Invalid {
        /// The offending shard index.
        shard: usize,
        /// The builder error.
        source: ConfigError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Empty => write!(f, "fleet config defines no shards"),
            FleetError::Malformed { line } => {
                write!(f, "line {line}: expected `[section]` or `key = value`")
            }
            FleetError::UnknownSection { line, section } => write!(
                f,
                "line {line}: unknown section [{section}] (expected [fleet], [defaults] or [shard N])"
            ),
            FleetError::DuplicateShard { shard } => {
                write!(f, "shard {shard} is configured twice")
            }
            FleetError::ShardOutOfRange { shard, shards } => write!(
                f,
                "shard {shard} is outside the declared fleet of {shards} shard(s)"
            ),
            FleetError::UnknownKey { line, key } => write!(f, "line {line}: unknown key `{key}`"),
            FleetError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value `{value}` for key `{key}`")
            }
            FleetError::Invalid { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Which section a parsed line belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    Fleet,
    Defaults,
    Shard(usize),
}

/// A raw `key = value` pair with its source line (for error messages).
type RawEntry = (String, String, usize);

impl FleetConfig {
    /// Wraps explicit per-shard specs, validating each.
    ///
    /// # Errors
    ///
    /// [`FleetError::Empty`] for an empty list,
    /// [`FleetError::Invalid`] for a spec its builder rejects.
    pub fn new(specs: Vec<DetectorSpec>) -> Result<FleetConfig, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::Empty);
        }
        for (shard, spec) in specs.iter().enumerate() {
            spec.validate()
                .map_err(|source| FleetError::Invalid { shard, source })?;
        }
        Ok(FleetConfig { specs })
    }

    /// A homogeneous fleet: `shards` copies of one spec (what the old
    /// `monitord --detector` flag expresses).
    ///
    /// # Errors
    ///
    /// As [`FleetConfig::new`].
    pub fn homogeneous(spec: DetectorSpec, shards: usize) -> Result<FleetConfig, FleetError> {
        FleetConfig::new(vec![spec; shards])
    }

    /// Parses the TOML-like fleet file format (see the module docs).
    ///
    /// # Errors
    ///
    /// A typed [`FleetError`] naming the offending line, key or shard.
    pub fn parse(text: &str) -> Result<FleetConfig, FleetError> {
        let mut declared: Option<usize> = None;
        let mut defaults: Vec<RawEntry> = Vec::new();
        let mut sections: BTreeMap<usize, Vec<RawEntry>> = BTreeMap::new();
        let mut current: Option<Section> = None;

        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = strip_comment(raw).trim();
            if content.is_empty() {
                continue;
            }
            if let Some(name) = content
                .strip_prefix('[')
                .and_then(|rest| rest.strip_suffix(']'))
            {
                let section = parse_section(name.trim(), line)?;
                if let Section::Shard(shard) = section {
                    if sections.contains_key(&shard) {
                        return Err(FleetError::DuplicateShard { shard });
                    }
                    sections.insert(shard, Vec::new());
                }
                current = Some(section);
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(FleetError::Malformed { line });
            };
            let key = key.trim().to_owned();
            let value = unquote(value.trim()).to_owned();
            match current {
                None => return Err(FleetError::Malformed { line }),
                Some(Section::Fleet) => match key.as_str() {
                    "shards" => {
                        declared = Some(value.parse().map_err(|_| FleetError::BadValue {
                            line,
                            key,
                            value: value.clone(),
                        })?);
                    }
                    _ => return Err(FleetError::UnknownKey { line, key }),
                },
                Some(Section::Defaults) => defaults.push((key, value, line)),
                Some(Section::Shard(shard)) => {
                    sections
                        .get_mut(&shard)
                        .expect("section registered")
                        .push((key, value, line));
                }
            }
        }

        let implied = sections.keys().next_back().map_or(0, |&max| max + 1);
        let shards = declared.unwrap_or(implied);
        if shards == 0 {
            return Err(FleetError::Empty);
        }
        if implied > shards {
            return Err(FleetError::ShardOutOfRange {
                shard: implied - 1,
                shards,
            });
        }

        let empty: Vec<RawEntry> = Vec::new();
        let mut specs = Vec::with_capacity(shards);
        for shard in 0..shards {
            let own = sections.get(&shard).unwrap_or(&empty);
            // The kind decides which defaults seed the spec, so find it
            // first: the shard's own `detector` key wins over the
            // defaults section's.
            let kind_entry = own
                .iter()
                .chain(defaults.iter())
                .find(|(key, _, _)| key == "detector");
            let kind = match kind_entry {
                None => DetectorKind::Sraa,
                Some((key, value, line)) => {
                    DetectorKind::parse(value).ok_or_else(|| FleetError::BadValue {
                        line: *line,
                        key: key.clone(),
                        value: value.clone(),
                    })?
                }
            };
            let mut spec = DetectorSpec::new(kind);
            for (key, value, line) in defaults.iter().chain(own.iter()) {
                apply_key(&mut spec, key, value, *line)?;
            }
            spec.validate()
                .map_err(|source| FleetError::Invalid { shard, source })?;
            specs.push(spec);
        }
        Ok(FleetConfig { specs })
    }

    /// Reads and parses a fleet file.
    ///
    /// # Errors
    ///
    /// I/O errors from reading; `InvalidData` wrapping the
    /// [`FleetError`] message for parse failures.
    pub fn load(path: &Path) -> io::Result<FleetConfig> {
        let text = std::fs::read_to_string(path)?;
        FleetConfig::parse(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("fleet config {}: {e}", path.display()),
            )
        })
    }

    /// The per-shard specs, indexed by shard.
    pub fn specs(&self) -> &[DetectorSpec] {
        &self.specs
    }

    /// Number of shards the fleet defines.
    pub fn shard_count(&self) -> usize {
        self.specs.len()
    }

    /// Builds every shard's detector (specs were validated at
    /// construction, so this cannot fail).
    pub fn detectors(&self) -> Vec<Box<dyn RejuvenationDetector>> {
        self.specs
            .iter()
            .map(|s| s.build().expect("specs are validated at construction"))
            .collect()
    }

    /// A compact human summary, e.g. `"sraa x2, clta x1, cusum x1"`.
    pub fn summary(&self) -> String {
        let mut counts: Vec<(DetectorKind, usize)> = Vec::new();
        for spec in &self.specs {
            match counts.iter_mut().find(|(k, _)| *k == spec.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((spec.kind, 1)),
            }
        }
        counts
            .iter()
            .map(|(kind, n)| format!("{kind} x{n}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Renders a config file that [`FleetConfig::parse`] reads back to
    /// an equal `FleetConfig`. Every shard is written in full (no
    /// `[defaults]` factoring), with shortest-round-trip float
    /// formatting, so serialise→parse is lossless.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[fleet]\n");
        out.push_str(&format!("shards = {}\n", self.specs.len()));
        for (shard, spec) in self.specs.iter().enumerate() {
            out.push_str(&format!("\n[shard {shard}]\n"));
            out.push_str(&format!("detector = {}\n", spec.kind));
            out.push_str(&format!("mu = {:?}\n", spec.mu));
            out.push_str(&format!("sigma = {:?}\n", spec.sigma));
            out.push_str(&format!("sample_size = {}\n", spec.sample_size));
            out.push_str(&format!("buckets = {}\n", spec.buckets));
            out.push_str(&format!("depth = {}\n", spec.depth));
            out.push_str(&format!("quantile = {:?}\n", spec.quantile));
            out.push_str(&format!("reference = {:?}\n", spec.reference));
            out.push_str(&format!("decision = {:?}\n", spec.decision));
            out.push_str(&format!("weight = {:?}\n", spec.weight));
            out.push_str(&format!("limit = {:?}\n", spec.limit));
        }
        out
    }
}

/// Strips a trailing `#` comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut quoted = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => quoted = !quoted,
            '#' if !quoted => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Removes one matching pair of surrounding double quotes, if present.
fn unquote(value: &str) -> &str {
    value
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or(value)
}

fn parse_section(name: &str, line: usize) -> Result<Section, FleetError> {
    match name {
        "fleet" => return Ok(Section::Fleet),
        "defaults" => return Ok(Section::Defaults),
        _ => {}
    }
    // `[shard N]` or `[shard.N]` — any whitespace (spaces or tabs, as
    // some editors insert) around the separator is accepted.
    let index = name
        .strip_prefix("shard")
        .map(|rest| rest.trim_start_matches(|c: char| c.is_whitespace() || c == '.'))
        .and_then(|rest| rest.parse::<usize>().ok());
    match index {
        Some(shard) => Ok(Section::Shard(shard)),
        None => Err(FleetError::UnknownSection {
            line,
            section: name.to_owned(),
        }),
    }
}

/// Applies one `key = value` pair onto a spec.
fn apply_key(
    spec: &mut DetectorSpec,
    key: &str,
    value: &str,
    line: usize,
) -> Result<(), FleetError> {
    fn parsed<T: std::str::FromStr>(key: &str, value: &str, line: usize) -> Result<T, FleetError> {
        value.parse().map_err(|_| FleetError::BadValue {
            line,
            key: key.to_owned(),
            value: value.to_owned(),
        })
    }
    match key {
        // The kind was resolved before defaults were layered.
        "detector" => {}
        "mu" => spec.mu = parsed(key, value, line)?,
        "sigma" => spec.sigma = parsed(key, value, line)?,
        "sample_size" => spec.sample_size = parsed(key, value, line)?,
        "buckets" => spec.buckets = parsed(key, value, line)?,
        "depth" => spec.depth = parsed(key, value, line)?,
        "quantile" => spec.quantile = parsed(key, value, line)?,
        "reference" => spec.reference = parsed(key, value, line)?,
        "decision" => spec.decision = parsed(key, value, line)?,
        "weight" => spec.weight = parsed(key, value, line)?,
        "limit" => spec.limit = parsed(key, value, line)?,
        _ => {
            return Err(FleetError::UnknownKey {
                line,
                key: key.to_owned(),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIXED: &str = r#"
# A 4-shard mixed fleet.
[fleet]
shards = 4

[defaults]
mu = 5.0
sigma = 5.0

[shard 0]
detector = sraa
sample_size = 2
buckets = 5
depth = 3

[shard 1]
detector = saraa   # inline comment
sample_size = 4

[shard 2]
detector = "clta"
quantile = 1.96

[shard 3]
detector = cusum
reference = 0.5
decision = 5.0
"#;

    #[test]
    fn parses_a_mixed_fleet() {
        let fleet = FleetConfig::parse(MIXED).unwrap();
        assert_eq!(fleet.shard_count(), 4);
        let kinds: Vec<DetectorKind> = fleet.specs().iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DetectorKind::Sraa,
                DetectorKind::Saraa,
                DetectorKind::Clta,
                DetectorKind::Cusum,
            ]
        );
        assert_eq!(fleet.specs()[1].sample_size, 4);
        assert_eq!(fleet.specs()[2].quantile, 1.96);
        assert_eq!(fleet.summary(), "sraa x1, saraa x1, clta x1, cusum x1");
        let names: Vec<&str> = fleet.detectors().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["SRAA", "SARAA", "CLTA", "CUSUM"]);
    }

    #[test]
    fn defaults_fill_unconfigured_shards() {
        let text = "[fleet]\nshards = 3\n[defaults]\ndetector = clta\nmu = 4.0\n";
        let fleet = FleetConfig::parse(text).unwrap();
        assert_eq!(fleet.shard_count(), 3);
        for spec in fleet.specs() {
            assert_eq!(spec.kind, DetectorKind::Clta);
            assert_eq!(spec.mu, 4.0);
            assert_eq!(spec.sample_size, 30, "kind defaults seed the spec");
        }
    }

    #[test]
    fn shard_count_is_implied_by_the_highest_index() {
        let text = "[shard 0]\ndetector = sraa\n[shard 2]\ndetector = ewma\n";
        let fleet = FleetConfig::parse(text).unwrap();
        assert_eq!(fleet.shard_count(), 3);
        assert_eq!(
            fleet.specs()[1].kind,
            DetectorKind::Sraa,
            "gap runs defaults"
        );
        assert_eq!(fleet.specs()[2].kind, DetectorKind::Ewma);
    }

    #[test]
    fn kind_switch_reseeds_kind_defaults_before_shard_keys() {
        // The defaults section sets a SARAA-ish sample size; shard 0
        // switches to CLTA, which must start from CLTA's defaults and
        // then apply both layers' explicit keys.
        let text = "[defaults]\nsample_size = 7\n[shard 0]\ndetector = clta\n";
        let fleet = FleetConfig::parse(text).unwrap();
        assert_eq!(fleet.specs()[0].kind, DetectorKind::Clta);
        assert_eq!(
            fleet.specs()[0].sample_size,
            7,
            "explicit defaults keys still apply over kind defaults"
        );
        assert_eq!(fleet.specs()[0].quantile, 1.96);
    }

    #[test]
    fn typed_errors_name_the_offence() {
        assert!(matches!(FleetConfig::parse(""), Err(FleetError::Empty)));
        assert!(matches!(
            FleetConfig::parse("[garbage]\n"),
            Err(FleetError::UnknownSection { line: 1, .. })
        ));
        assert!(matches!(
            FleetConfig::parse("[shard 0]\ndetector = markov\n"),
            Err(FleetError::BadValue { line: 2, .. })
        ));
        assert!(matches!(
            FleetConfig::parse("[shard 0]\nwindow = 3\n"),
            Err(FleetError::UnknownKey { line: 2, .. })
        ));
        assert!(matches!(
            FleetConfig::parse("[shard 0]\ndetector = sraa\n[shard 0]\n"),
            Err(FleetError::DuplicateShard { shard: 0 })
        ));
        assert!(matches!(
            FleetConfig::parse("[fleet]\nshards = 1\n[shard 4]\n"),
            Err(FleetError::ShardOutOfRange {
                shard: 4,
                shards: 1
            })
        ));
        assert!(matches!(
            FleetConfig::parse("[shard 0]\ndetector = sraa\nsample_size = 0\n"),
            Err(FleetError::Invalid { shard: 0, .. })
        ));
        assert!(matches!(
            FleetConfig::parse("no section\n"),
            Err(FleetError::Malformed { line: 1 })
        ));
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        // A Windows-edited fleet file: every line ends \r\n (including
        // after inline comments and quoted values).
        let crlf = MIXED.replace('\n', "\r\n");
        assert_eq!(
            FleetConfig::parse(&crlf).unwrap(),
            FleetConfig::parse(MIXED).unwrap()
        );
        // A final line without a trailing newline but with a stray \r.
        let fleet = FleetConfig::parse("[shard 0]\r\ndetector = clta\r").unwrap();
        assert_eq!(fleet.specs()[0].kind, DetectorKind::Clta);
    }

    #[test]
    fn tabs_and_trailing_whitespace_around_keys_parse() {
        // Tab-indented keys, tabs around `=`, trailing spaces/tabs
        // after values, and a tab inside the section header.
        let text = "[fleet]\t\nshards\t=\t2  \n[shard\t0]\n\tdetector = clta\t\n\
                    [shard . 1]  \n  detector\t= cusum  \t\n";
        let fleet = FleetConfig::parse(text).unwrap();
        assert_eq!(fleet.shard_count(), 2);
        assert_eq!(fleet.specs()[0].kind, DetectorKind::Clta);
        assert_eq!(fleet.specs()[1].kind, DetectorKind::Cusum);
    }

    #[test]
    fn to_toml_round_trips() {
        let fleet = FleetConfig::parse(MIXED).unwrap();
        let rendered = fleet.to_toml();
        let back = FleetConfig::parse(&rendered).unwrap();
        assert_eq!(fleet, back);
        // And rendering is a fixed point.
        assert_eq!(rendered, back.to_toml());
    }

    #[test]
    fn homogeneous_matches_a_repeated_spec() {
        let spec = DetectorSpec::new(DetectorKind::Ewma);
        let fleet = FleetConfig::homogeneous(spec, 3).unwrap();
        assert_eq!(fleet.shard_count(), 3);
        assert!(fleet.specs().iter().all(|s| *s == spec));
        assert!(FleetConfig::homogeneous(spec, 0).is_err());
    }
}
