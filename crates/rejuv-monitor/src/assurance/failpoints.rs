//! Feature-gated crash-simulation failpoints.
//!
//! Every durability-critical site of the monitor runtime — fsync,
//! rename, drain, steal, park, unpark, notify, shutdown — carries an
//! `fp!("site-name")` marker. Without the `failpoints` cargo feature
//! the macro expands to *nothing* (the call site is `cfg`-stripped, so
//! default builds pay zero overhead and stay byte-identical). With the
//! feature, each marker calls [`hit`], which is a single relaxed atomic
//! load until a deterministic-simulation session arms a site; an armed
//! site counts down a seeded hit index and then simulates a crash by
//! panicking with a [`FailpointCrash`] payload the harness catches.
//!
//! The [`CATALOG`] is the static registry of every site name; tests
//! enumerate it to prove each site is exercised by at least one
//! kill/resume trace (see [`crate::assurance::dst`]).

/// Marks a crash-simulation site. Expands to nothing unless the crate
/// is built with `--features failpoints`.
macro_rules! fp {
    ($site:literal) => {
        #[cfg(feature = "failpoints")]
        {
            $crate::assurance::failpoints::hit($site);
        }
    };
}

pub(crate) use fp;

/// Every registered failpoint site, one entry per `fp!` marker in the
/// runtime. Grouped by file; names are `<area>.<event>`.
pub const CATALOG: &[&str] = &[
    // checkpoint.rs — the atomic write-temp/fsync/rename pipeline.
    "checkpoint.staging-created",
    "checkpoint.written-unsynced",
    "checkpoint.synced",
    "checkpoint.renamed",
    // supervisor.rs — batch drains and the checkpoint protocol.
    "supervisor.drain-applied",
    "supervisor.checkpoint-flush",
    "supervisor.checkpoint-emit",
    // queue.rs — the consumer wakeup handshake (all backends share it).
    "queue.notify-work",
    "queue.wait-park",
    // queue.rs — mutex backend.
    "queue.mutex.push",
    "queue.mutex.park",
    "queue.mutex.drain",
    "queue.mutex.unpark",
    // queue.rs — lock-free SPSC ring backend.
    "queue.ring.push",
    "queue.ring.park",
    "queue.ring.drain",
    "queue.ring.unpark",
    // queue.rs — multi-producer fan-in backend.
    "queue.fanin.publish",
    "queue.fanin.park",
    "queue.fanin.drain",
    "queue.fanin.unpark",
    // pool.rs — the work-stealing drain plane.
    "pool.drain-slot",
    "pool.steal-claimed",
    "pool.checkpoint-gate",
    "pool.shutdown-sweep",
    // consumer.rs — the spawn/join façade.
    "consumer.join",
];

/// Whether the crate was compiled with the `failpoints` feature (i.e.
/// whether `fp!` sites exist at runtime at all).
pub fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
pub use armed::*;

#[cfg(feature = "failpoints")]
mod armed {
    use super::CATALOG;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// The panic payload of a simulated crash; the DST harness catches
    /// unwinds and distinguishes this (and its cascades) from genuine
    /// bugs via [`fired`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FailpointCrash {
        /// The site that fired.
        pub site: &'static str,
    }

    /// Fast-path gate: `hit` is a single relaxed load while false.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    static STATE: Mutex<Option<Session>> = Mutex::new(None);

    struct Session {
        /// Hits per site since [`session_begin`], armed or not.
        counts: BTreeMap<&'static str, u64>,
        /// The armed site and its remaining countdown, if any.
        armed: Option<(String, u64)>,
        /// The site whose countdown reached zero, if any.
        fired: Option<&'static str>,
    }

    fn with_session<R>(f: impl FnOnce(&mut Session) -> R) -> Option<R> {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_mut().map(f)
    }

    /// Begins a counting/arming session: every subsequent [`hit`] is
    /// counted per site until [`session_end`]. Sessions are global to
    /// the process; the DST harness serialises traces behind one lock.
    pub fn session_begin() {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(Session {
            counts: BTreeMap::new(),
            armed: None,
            fired: None,
        });
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Ends the session and returns the per-site hit counts it saw.
    pub fn session_end() -> Vec<(&'static str, u64)> {
        let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
        ACTIVE.store(false, Ordering::SeqCst);
        match guard.take() {
            Some(session) => session.counts.into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Arms `site` to crash on its `nth` hit (1-based) within the
    /// current session. Requires an active session.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not in the [`CATALOG`], `nth` is zero, or no
    /// session is active — all harness bugs, not runtime conditions.
    pub fn arm(site: &str, nth: u64) {
        assert!(nth > 0, "failpoint hit index is 1-based");
        let site = CATALOG
            .iter()
            .copied()
            .find(|s| *s == site)
            .unwrap_or_else(|| panic!("unknown failpoint site {site:?}"));
        with_session(|s| {
            s.armed = Some((site.to_owned(), nth));
            s.fired = None;
        })
        .expect("failpoints::arm requires an active session");
    }

    /// Disarms the currently armed site, if any (counting continues).
    pub fn disarm() {
        with_session(|s| s.armed = None);
    }

    /// The site that fired a simulated crash in this session, if any.
    pub fn fired() -> Option<&'static str> {
        with_session(|s| s.fired).flatten()
    }

    /// Whether a counting/arming session is currently active. The DST
    /// harness's panic hook silences unwinds (the simulated crash and
    /// its poisoned-lock cascades) only while this is true.
    pub fn session_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Session hit count of one site so far.
    pub fn hits(site: &str) -> u64 {
        with_session(|s| s.counts.get(site).copied().unwrap_or(0)).unwrap_or(0)
    }

    /// The slow half of an `fp!` expansion. Counts the hit and, when
    /// the site is armed and its countdown expires, simulates a crash
    /// by panicking with a [`FailpointCrash`] payload.
    pub fn hit(site: &'static str) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let crash = with_session(|s| {
            *s.counts.entry(site).or_insert(0) += 1;
            match &mut s.armed {
                Some((armed, left)) if armed == site => {
                    *left -= 1;
                    if *left == 0 {
                        s.armed = None;
                        s.fired = Some(site);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        })
        .unwrap_or(false);
        if crash {
            // The lock is released; poisoning nothing of ours.
            std::panic::panic_any(FailpointCrash { site });
        }
    }

    /// Arms a failpoint from the `REJUV_FP` environment variable
    /// (`site[:nth]`), beginning a session. Lets a real `monitord`
    /// process be crashed at a named site for manual kill/resume
    /// experiments; returns whether anything was armed.
    pub fn arm_from_env() -> bool {
        let Ok(spec) = std::env::var("REJUV_FP") else {
            return false;
        };
        let (site, nth) = match spec.split_once(':') {
            Some((site, nth)) => (
                site.to_owned(),
                nth.parse().unwrap_or_else(|_| {
                    panic!("REJUV_FP hit index {nth:?} is not a positive integer")
                }),
            ),
            None => (spec, 1),
        };
        session_begin();
        arm(&site, nth);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for site in CATALOG {
            assert!(seen.insert(*site), "duplicate failpoint site {site}");
        }
    }

    #[test]
    fn enabled_matches_the_compiled_feature() {
        assert_eq!(enabled(), cfg!(feature = "failpoints"));
    }
}
