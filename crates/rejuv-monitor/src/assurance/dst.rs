//! Deterministic crash-simulation harness (requires `failpoints`).
//!
//! For each registered failpoint × seeded schedule, [`run`]:
//!
//! 1. **Calibrates** — executes a deterministic workload with the
//!    failpoint session counting hits per site (no arming), and checks
//!    the clean run's artifacts against the guarantee oracles.
//! 2. **Crashes** — re-runs the workload with one site armed to panic
//!    on a seeded hit index, catching the unwind (the simulated crash
//!    plus any poisoned-lock cascades it causes in worker threads).
//! 3. **Tears the trace** — truncates the JSONL event log to a seeded
//!    length between the last *flushed* byte and the last *written*
//!    byte, modelling the page-cache data a real crash destroys (the
//!    cut can land mid-line, torn-final-line recovery included).
//! 4. **Resumes and judges** — loads whatever checkpoint survived,
//!    replays the surviving trace fresh and resumed, runs a real
//!    continuation workload from the restored state, and feeds it all
//!    to the four oracles in [`crate::assurance::oracle`].
//!
//! Three workload shapes cover the whole [`CATALOG`]: a synchronous
//! single-consumer run per queue backend (checkpoint pipeline, push/
//! drain/unpark sites), a multi-consumer work-stealing pool run
//! (notify, park, steal, gated checkpoint, shutdown sweep, join), and
//! a back-pressure run per backend (producer park sites, via a full
//! queue with a blocking producer).
//!
//! Everything is derived from the trace's seed — no wall clock, no
//! process entropy — so a failing `(scenario, site, seed)` triple
//! replays exactly. Failpoint state is process-global, so [`run`]
//! serialises itself behind one lock.

use crate::assurance::failpoints::{self, CATALOG};
use crate::assurance::oracle::{
    check_g1_checkpoint_integrity, check_g2_replay_convergence, check_g3_no_loss,
    check_g4_rejection_is_pure, Violation,
};
use crate::checkpoint::save_snapshot;
use crate::consumer::ConsumerThread;
use crate::event::{read_events_tolerant, EventLog, MonitorEvent};
use crate::queue::{ObsQueue, QueueBackend};
use crate::supervisor::{MonitorReport, Supervisor, SupervisorConfig, SupervisorSnapshot};
use rand::Rng;
use rejuv_core::{DetectorKind, DetectorSpec};
use rejuv_sim::RngStreams;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Crash-fidelity trace sink
// ---------------------------------------------------------------------

/// A `Write` sink over a real file that tracks how many bytes were
/// written versus explicitly flushed. A panic-based "crash" is kinder
/// than a real one — buffered writers flush on drop during unwind — so
/// the harness writes the trace through this sink and, after catching
/// the crash, truncates the file to a seeded length in
/// `[flushed, written]`: everything since the last flush is fair game
/// for the page cache to have lost.
#[derive(Debug, Clone)]
struct TrackedWriter {
    inner: Arc<Mutex<TrackedInner>>,
}

#[derive(Debug)]
struct TrackedInner {
    file: File,
    written: u64,
    flushed: u64,
}

impl TrackedWriter {
    fn create(path: &Path) -> io::Result<TrackedWriter> {
        Ok(TrackedWriter {
            inner: Arc::new(Mutex::new(TrackedInner {
                file: File::create(path)?,
                written: 0,
                flushed: 0,
            })),
        })
    }

    /// `(written, flushed)` byte counts, robust to a poisoning crash.
    fn lens(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.written, inner.flushed)
    }
}

impl Write for TrackedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.write_all(buf)?;
        inner.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.flush()?;
        inner.flushed = inner.written;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Parking slot for the pool scenario's consumer handle: the driver
/// thread may crash mid-run, and whoever catches the unwind must still
/// be able to shut the worker threads down instead of leaking them.
type ConsumerSlot = Arc<Mutex<Option<ConsumerThread>>>;

/// One deterministic workload shape; between them the three shapes hit
/// every site in the [`CATALOG`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Synchronous ingest/poll fleet on one backend. Every checkpoint
    /// is quiescent, so G2 is checked at byte identity.
    Single(QueueBackend),
    /// Multi-consumer work-stealing pool with preloaded backlogs (for
    /// deterministic steals) and lossy-but-loss-free producers.
    Pool,
    /// A short `Single`-style run for artifacts, then a full queue with
    /// a blocking producer to reach the producer park sites.
    Backpressure(QueueBackend),
}

const SCENARIOS: &[Scenario] = &[
    Scenario::Single(QueueBackend::Mutex),
    Scenario::Single(QueueBackend::Ring),
    Scenario::Single(QueueBackend::FanIn),
    Scenario::Pool,
    Scenario::Backpressure(QueueBackend::Mutex),
    Scenario::Backpressure(QueueBackend::Ring),
    Scenario::Backpressure(QueueBackend::FanIn),
];

impl Scenario {
    fn name(self) -> String {
        match self {
            Scenario::Single(b) => format!("single-{}", b.name()),
            Scenario::Pool => "pool".to_owned(),
            Scenario::Backpressure(b) => format!("backpressure-{}", b.name()),
        }
    }

    /// Shard specs; shards 0 and 1 always differ in kind so the G4
    /// state-swap corruption is guaranteed to be rejectable.
    fn specs(self) -> Vec<DetectorSpec> {
        match self {
            Scenario::Single(_) => vec![
                DetectorSpec::with_baseline(DetectorKind::Sraa, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Cusum, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Saraa, 5.0, 5.0),
            ],
            Scenario::Pool => vec![
                DetectorSpec::with_baseline(DetectorKind::Sraa, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Cusum, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Saraa, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Sraa, 6.0, 4.0),
            ],
            Scenario::Backpressure(_) => vec![
                DetectorSpec::with_baseline(DetectorKind::Sraa, 5.0, 5.0),
                DetectorSpec::with_baseline(DetectorKind::Cusum, 5.0, 5.0),
            ],
        }
    }

    fn config(self) -> SupervisorConfig {
        match self {
            Scenario::Single(backend) => SupervisorConfig {
                queue_capacity: 64,
                drain_batch: 8,
                snapshot_every: Some(40),
                backend,
                consumers: 1,
                scalar_drain: false,
            },
            Scenario::Pool => SupervisorConfig {
                queue_capacity: 4_096,
                drain_batch: 32,
                snapshot_every: None,
                backend: QueueBackend::Mutex,
                consumers: 2,
                scalar_drain: false,
            },
            Scenario::Backpressure(backend) => SupervisorConfig {
                queue_capacity: 64,
                drain_batch: 8,
                snapshot_every: Some(40),
                backend,
                consumers: 1,
                scalar_drain: false,
            },
        }
    }

    /// Checkpoint cadence (total processed observations).
    fn checkpoint_every(self) -> u64 {
        match self {
            Scenario::Single(_) => 50,
            Scenario::Pool => 500,
            Scenario::Backpressure(_) => 60,
        }
    }

    fn steps(self) -> u64 {
        match self {
            Scenario::Single(_) => 1_200,
            Scenario::Pool => 0, // producer-driven, see run_pool
            Scenario::Backpressure(_) => 300,
        }
    }

    /// Runs the workload to completion, writing the trace through
    /// `writer` and checkpoints to `<dir>/ckpt.json`. An armed
    /// failpoint aborts it with a [`failpoints::FailpointCrash`] panic
    /// (possibly cascaded); the caller catches that.
    fn run(
        self,
        dir: &Path,
        seed: u64,
        writer: TrackedWriter,
        slot: &ConsumerSlot,
    ) -> io::Result<MonitorReport> {
        match self {
            Scenario::Single(_) => self.run_sync(seed, dir, writer),
            Scenario::Pool => self.run_pool(seed, dir, writer, slot),
            Scenario::Backpressure(backend) => {
                let report = self.run_sync(seed, dir, writer)?;
                run_backpressure_probe(backend);
                Ok(report)
            }
        }
    }

    /// Builds the supervisor with log + checkpoint sink wired up.
    fn build_supervisor(self, dir: &Path, writer: TrackedWriter) -> io::Result<Supervisor> {
        let specs = self.specs();
        let config = self.config();
        let mut sup = Supervisor::with_specs(config, &specs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let ckpt = dir.join("ckpt.json");
        sup.set_checkpoint(
            self.checkpoint_every(),
            Box::new(move |snap| save_snapshot(&ckpt, snap)),
        );
        let mut log = EventLog::new(Box::new(writer));
        log.record(&MonitorEvent::FleetStart {
            shards: specs.len() as u32,
            specs,
            queue_capacity: config.queue_capacity as u64,
            drain_batch: config.drain_batch as u64,
            snapshot_every: config.snapshot_every,
        })?;
        sup.set_log(log);
        Ok(sup)
    }

    /// The synchronous ingest-then-drain workload: the queue of the
    /// fed shard is emptied before the next step, so every checkpoint
    /// is quiescent and G2 holds at byte identity.
    fn run_sync(self, seed: u64, dir: &Path, writer: TrackedWriter) -> io::Result<MonitorReport> {
        let mut sup = self.build_supervisor(dir, writer)?;
        let shards = sup.shard_count();
        let mut rng = RngStreams::new(seed).stream(label(&format!("dst-{}", self.name())));
        for step in 0..self.steps() {
            let shard = (step % shards as u64) as usize;
            let burst = if step % 7 == 0 { 4 } else { 1 };
            for _ in 0..burst {
                let value = if rng.random::<f64>() < 0.02 {
                    60.0 + rng.random::<f64>() * 5.0
                } else {
                    3.0 + rng.random::<f64>() * 4.0
                };
                let accepted = sup.ingest(shard, value);
                debug_assert!(accepted, "sync workload never fills its queue");
            }
            while sup.poll_shard(shard)? > 0 {}
        }
        while sup.poll_all()? > 0 {}
        sup.checkpoint_now()?;
        Ok(sup.report())
    }

    /// The work-stealing pool workload. Odd shards are preloaded far
    /// beyond the steal threshold before the workers spawn, so worker 0
    /// reliably steals; total load per shard stays under the queue
    /// capacity, so plain `send` is loss-free even if a worker crashes
    /// and nothing ever drains.
    fn run_pool(
        self,
        seed: u64,
        dir: &Path,
        writer: TrackedWriter,
        slot: &ConsumerSlot,
    ) -> io::Result<MonitorReport> {
        let sup = self.build_supervisor(dir, writer)?;
        let shards = sup.shard_count();
        let senders: Vec<_> = (0..shards).map(|s| sup.sender(s)).collect();
        let streams = RngStreams::new(seed);
        let values: Vec<Vec<f64>> = (0..shards)
            .map(|s| {
                let mut rng = streams.stream(label(&format!("dst-pool-shard-{s}")));
                let n = if s % 2 == 1 { 2_000 } else { 50 };
                (0..n)
                    .map(|_| {
                        if rng.random::<f64>() < 0.02 {
                            60.0
                        } else {
                            3.0 + rng.random::<f64>() * 4.0
                        }
                    })
                    .collect()
            })
            .collect();
        // Preload the heavy shards before any worker exists: their
        // owner (worker 1) starts buried while worker 0 idles, which
        // makes the first steal deterministic in practice.
        for (s, vals) in values.iter().enumerate() {
            for &v in vals {
                let accepted = senders[s].send(v);
                debug_assert!(accepted, "pool workload stays under capacity");
            }
        }
        let consumer = ConsumerThread::spawn(sup);
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(consumer);
        // A second, concurrent wave from real producer threads (1000
        // more per shard, still under capacity even unconsumed).
        std::thread::scope(|scope| {
            for (s, sender) in senders.iter().enumerate() {
                let mut rng = streams.stream(label(&format!("dst-pool-wave-{s}")));
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        let v = 3.0 + rng.random::<f64>() * 4.0;
                        sender.send(v);
                    }
                });
            }
        });
        // Wait until the backlog is drained and a worker has actually
        // parked (covers queue.wait-park), bailing early on a crash.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let backlog: usize = senders.iter().map(|s| s.backlog()).sum();
            let parks = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|c| c.parks())
                .unwrap_or(0);
            if (backlog == 0 && parks >= 1)
                || failpoints::fired().is_some()
                || Instant::now() > deadline
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let consumer = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("consumer parked in the slot above");
        let (sup, _stats) = consumer.join_stats()?;
        let mut sup = sup.expect("owned pool returns its supervisor");
        sup.checkpoint_now()?;
        Ok(sup.report())
    }
}

/// Fills a standalone queue to capacity and parks a producer on it:
/// the only way to reach the `queue.*.park` sites. The consumer side
/// (this thread) then drains, waking the producer through the
/// wake-parked-producer handshake.
fn run_backpressure_probe(backend: QueueBackend) {
    let queue = Arc::new(ObsQueue::with_backend(4, backend));
    for i in 0..4 {
        let accepted = queue.push(5.0 + f64::from(i));
        debug_assert!(accepted, "fill fits exactly");
    }
    let producer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || queue.push_blocking(9.0))
    };
    let deadline = Instant::now() + Duration::from_secs(5);
    while queue.waits() == 0 && failpoints::fired().is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Give the producer a moment to actually sleep inside the park.
    std::thread::sleep(Duration::from_millis(5));
    let mut out = Vec::new();
    queue.drain_into(&mut out, 8);
    if let Err(payload) = producer.join() {
        // The armed site fired in the producer thread; surface it to
        // the harness's catch_unwind like any driver-side crash.
        panic::resume_unwind(payload);
    }
    queue.drain_into(&mut out, 8);
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Knobs of one [`run`] sweep.
#[derive(Debug, Clone)]
pub struct DstOptions {
    /// Scratch directory for traces and checkpoints (created if
    /// missing; one subdirectory per trace).
    pub dir: PathBuf,
    /// How many master seeds to sweep; each seed re-runs every
    /// scenario × armed-site combination with fresh schedules.
    pub seeds: u64,
    /// Base master seed (`REJUV_DST_SEED` in `monitord`); seed *i* of
    /// the sweep is a splitmix-style mix of this and *i*.
    pub base_seed: u64,
    /// Only arm sites named here (`None` = the whole catalog). Site
    /// coverage is enforced only for full-catalog sweeps.
    pub sites: Option<Vec<String>>,
}

impl Default for DstOptions {
    fn default() -> Self {
        DstOptions {
            dir: std::env::temp_dir().join(format!("rejuv-dst-{}", std::process::id())),
            seeds: 2,
            base_seed: 0xD57,
            sites: None,
        }
    }
}

/// What one [`run`] sweep did and found.
#[derive(Debug, Clone, Default)]
pub struct DstSummary {
    /// Crash traces executed (a trace = one armed run + resume leg).
    pub traces: u64,
    /// Traces whose armed site actually fired a simulated crash.
    pub crashes: u64,
    /// Oracle checks that passed, per guarantee ("G1" … "G4").
    pub checks: BTreeMap<&'static str, u64>,
    /// Guarantee violations, each prefixed with its trace context.
    pub violations: Vec<String>,
    /// Sites that fired at least one simulated crash.
    pub covered: BTreeSet<&'static str>,
    /// Catalog sites that never fired (empty unless the sweep was
    /// filtered or a workload regressed).
    pub uncovered: Vec<&'static str>,
}

impl DstSummary {
    /// Whether the sweep proves what it set out to prove: no guarantee
    /// violated and (for full-catalog sweeps) every site crashed at
    /// least once.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty() && self.uncovered.is_empty()
    }

    /// Human-readable sweep report, one line per entry.
    pub fn lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "dst: {} traces, {} crashes, {}/{} sites covered",
            self.traces,
            self.crashes,
            self.covered.len(),
            CATALOG.len()
        )];
        for (guarantee, passed) in &self.checks {
            lines.push(format!("dst: {guarantee}: {passed} checks passed"));
        }
        for site in &self.uncovered {
            lines.push(format!("dst: UNCOVERED site {site}"));
        }
        for violation in &self.violations {
            lines.push(format!("dst: VIOLATION {violation}"));
        }
        lines
    }
}

/// Silences panic output while a failpoint session (or the sweep that
/// drives it) is active: the simulated crash and its poisoned-lock
/// cascades are *expected* there, and hundreds of backtraces would
/// drown the sweep's real output. The sweep-level flag covers worker
/// threads still unwinding in the gap between one trace's
/// `session_end` and the next trace's `session_begin`. Installed once
/// per process, delegating to the previous hook otherwise.
static SWEEPS_ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !failpoints::session_active() && SWEEPS_ACTIVE.load(Ordering::Relaxed) == 0 {
                previous(info);
            }
        }));
    });
}

/// RAII marker for [`SWEEPS_ACTIVE`], so an early `?` return in the
/// sweep still re-enables panic output.
struct SweepQuiet;

impl SweepQuiet {
    fn enter() -> Self {
        SWEEPS_ACTIVE.fetch_add(1, Ordering::Relaxed);
        SweepQuiet
    }
}

impl Drop for SweepQuiet {
    fn drop(&mut self) {
        SWEEPS_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Stable text → stream-label hash (FNV-1a), so each harness purpose
/// ("workload", "cut", …) draws from its own independent RNG stream.
fn label(tag: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in tag.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mix_seed(base: u64, index: u64) -> u64 {
    // splitmix64 finalizer over the pair: decorrelates consecutive
    // sweep indices without pulling in an RNG for one number.
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the full deterministic crash sweep and returns what it found.
/// This is the engine behind `monitord --dst` and the `dst_harness`
/// integration test.
///
/// # Errors
///
/// Propagates genuine I/O failures (scratch-dir creation, un-caught
/// workload errors). Guarantee violations are *not* errors — they come
/// back in [`DstSummary::violations`].
///
/// # Panics
///
/// Panics if a calibration (unarmed) run crashes — the workloads must
/// be clean when nothing is armed.
pub fn run(opts: &DstOptions) -> io::Result<DstSummary> {
    // Failpoint arming is process-global state: one sweep at a time.
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    install_quiet_panic_hook();
    let _quiet = SweepQuiet::enter();
    std::fs::create_dir_all(&opts.dir)?;

    let mut summary = DstSummary::default();
    for index in 0..opts.seeds {
        let seed = mix_seed(opts.base_seed, index);
        for &scenario in SCENARIOS {
            let counts = calibrate(scenario, seed, opts, &mut summary)?;
            for (site, count) in counts {
                if count == 0 || !site_selected(opts, site) {
                    continue;
                }
                let schedule = RngStreams::new(seed);
                let mut rng = schedule.stream(label(&format!("nth-{}-{site}", scenario.name())));
                let nth = 1 + (rng.random::<f64>() * count as f64) as u64;
                let nth = nth.clamp(1, count);
                let fired = crash_trace(scenario, seed, site, nth, opts, &mut summary)?;
                if !fired && nth > 1 {
                    // Concurrent scenarios may undershoot the
                    // calibrated count; the first hit always exists.
                    crash_trace(scenario, seed, site, 1, opts, &mut summary)?;
                }
            }
        }
    }
    if opts.sites.is_none() {
        summary.uncovered = CATALOG
            .iter()
            .copied()
            .filter(|site| !summary.covered.contains(site))
            .collect();
    }
    Ok(summary)
}

fn site_selected(opts: &DstOptions, site: &str) -> bool {
    match &opts.sites {
        Some(sites) => sites.iter().any(|s| s == site),
        None => true,
    }
}

/// Unarmed counting run; also feeds the clean artifacts through the
/// oracles (a sweep that only ever checks crashed runs would miss a
/// guarantee broken in the happy path).
fn calibrate(
    scenario: Scenario,
    seed: u64,
    opts: &DstOptions,
    summary: &mut DstSummary,
) -> io::Result<Vec<(&'static str, u64)>> {
    let dir = opts
        .dir
        .join(format!("seed{seed:016x}"))
        .join(scenario.name())
        .join("calibration");
    std::fs::create_dir_all(&dir)?;
    let writer = TrackedWriter::create(&dir.join("trace.jsonl"))?;
    let slot: ConsumerSlot = Arc::new(Mutex::new(None));
    failpoints::session_begin();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        scenario.run(&dir, seed, writer.clone(), &slot)
    }));
    cleanup_consumer(&slot);
    let counts = failpoints::session_end();
    let report =
        outcome.unwrap_or_else(|_| panic!("unarmed {} run must not crash", scenario.name()))?;
    let context = format!("{}/calibration seed={seed:#x}", scenario.name());
    judge_artifacts(scenario, &dir, seed, Some(&report), &context, summary);
    Ok(counts)
}

/// One armed kill/resume trace. Returns whether the site fired.
fn crash_trace(
    scenario: Scenario,
    seed: u64,
    site: &'static str,
    nth: u64,
    opts: &DstOptions,
    summary: &mut DstSummary,
) -> io::Result<bool> {
    let dir = opts
        .dir
        .join(format!("seed{seed:016x}"))
        .join(scenario.name())
        .join(site.replace('/', "_"))
        .join(format!("nth{nth}"));
    std::fs::create_dir_all(&dir)?;
    let trace = dir.join("trace.jsonl");
    let writer = TrackedWriter::create(&trace)?;
    let slot: ConsumerSlot = Arc::new(Mutex::new(None));
    failpoints::session_begin();
    failpoints::arm(site, nth);
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        scenario.run(&dir, seed, writer.clone(), &slot)
    }));
    let fired = failpoints::fired().is_some();
    failpoints::disarm();
    // Shut leftover pool workers down while the quiet panic hook still
    // applies; a cascade here (poisoned locks) is expected.
    cleanup_consumer(&slot);
    failpoints::session_end();
    summary.traces += 1;
    let context = format!("{}/{site} nth={nth} seed={seed:#x}", scenario.name());
    let report = match outcome {
        Ok(Ok(report)) => Some(report),
        Ok(Err(e)) => return Err(e), // workload I/O error: a harness bug
        Err(_) if fired => None,
        Err(_) => {
            summary
                .violations
                .push(format!("{context}: panicked without an armed crash"));
            return Ok(false);
        }
    };
    if fired {
        summary.crashes += 1;
        summary.covered.insert(site);
        // Tear the trace: a seeded cut anywhere in the unflushed tail.
        let (written, flushed) = writer.lens();
        let mut rng =
            RngStreams::new(seed).stream(label(&format!("cut-{}-{site}", scenario.name())));
        let cut = flushed + (rng.random::<f64>() * (written - flushed + 1) as f64) as u64;
        OpenOptions::new()
            .write(true)
            .open(&trace)?
            .set_len(cut.min(written))?;
    }
    judge_artifacts(scenario, &dir, seed, report.as_ref(), &context, summary);
    Ok(fired)
}

/// Joins a pool consumer the crashed driver left behind, swallowing
/// the cascade panics its dead workers cause.
fn cleanup_consumer(slot: &ConsumerSlot) {
    if let Some(consumer) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
        let _ = panic::catch_unwind(AssertUnwindSafe(move || consumer.join_stats()));
    }
}

/// The resume leg: all four oracles over whatever the (possibly
/// crashed) run left on disk. `live_report` is the completed run's
/// report when it ran to completion (calibration, or an armed run
/// whose site never fired).
fn judge_artifacts(
    scenario: Scenario,
    dir: &Path,
    seed: u64,
    live_report: Option<&MonitorReport>,
    context: &str,
    summary: &mut DstSummary,
) {
    let specs = scenario.specs();
    let config = scenario.config();
    // G1: whatever checkpoint is published must be whole.
    let snapshot = match check_g1_checkpoint_integrity(&dir.join("ckpt.json"), specs.len()) {
        Ok(snapshot) => {
            *summary.checks.entry("G1").or_insert(0) += 1;
            snapshot
        }
        Err(v) => {
            summary_push(summary, context, v);
            None
        }
    };

    // G2: the surviving trace replays to the same decisions, resumed
    // or fresh.
    let events = File::open(dir.join("trace.jsonl"))
        .ok()
        .and_then(|f| read_events_tolerant(BufReader::new(f)).ok())
        .map(|(events, _torn)| events)
        .unwrap_or_default();
    match check_g2_replay_convergence(&events, config, &specs, snapshot.as_ref()) {
        Ok(_) => *summary.checks.entry("G2").or_insert(0) += 1,
        Err(v) => summary_push(summary, context, v),
    }

    // G3 on the live run itself, when it completed (baseline zero).
    if let Some(report) = live_report {
        match check_g3_no_loss(report, None, true) {
            Ok(()) => *summary.checks.entry("G3").or_insert(0) += 1,
            Err(v) => summary_push(summary, &format!("{context} (live run)"), v),
        }
    }

    // G3 on a real continuation: restore the surviving checkpoint into
    // a fresh supervisor and run more load through real queues.
    let mut continuation = match Supervisor::with_specs(config, &specs) {
        Ok(sup) => sup,
        Err(e) => {
            summary
                .violations
                .push(format!("{context}: cannot rebuild fleet: {e}"));
            return;
        }
    };
    if let Some(snap) = &snapshot {
        if let Err(e) = continuation.restore(snap) {
            summary_push(
                summary,
                context,
                Violation {
                    guarantee: "G1",
                    detail: format!("intact checkpoint refused by restore: {e}"),
                },
            );
            return;
        }
    }
    if let Err(e) = run_continuation(&mut continuation, seed) {
        summary
            .violations
            .push(format!("{context}: continuation failed: {e}"));
        return;
    }
    match check_g3_no_loss(&continuation.report(), snapshot.as_ref(), true) {
        Ok(()) => *summary.checks.entry("G3").or_insert(0) += 1,
        Err(v) => summary_push(summary, &format!("{context} (continuation)"), v),
    }

    // G4: a seeded corruption of the surviving state must be rejected
    // without leaving a mark on the continuation supervisor.
    let base = match snapshot {
        Some(snap) => snap,
        None => match continuation.snapshot() {
            Some(snap) => snap,
            None => return,
        },
    };
    let mut rng = RngStreams::new(seed).stream(label(&format!("corrupt-{context}")));
    let bad = corrupt_snapshot(base, (rng.random::<f64>() * 4.0) as u64);
    match check_g4_rejection_is_pure(&mut continuation, &bad) {
        Ok(()) => *summary.checks.entry("G4").or_insert(0) += 1,
        Err(v) => summary_push(summary, context, v),
    }
}

fn summary_push(summary: &mut DstSummary, context: &str, violation: Violation) {
    summary.violations.push(format!("{context}: {violation}"));
}

/// Deterministic post-restore load: enough to cross several checkpoint
/// cadences, strictly lossless (every ingest drained before the next).
fn run_continuation(sup: &mut Supervisor, seed: u64) -> io::Result<()> {
    let shards = sup.shard_count();
    let mut rng = RngStreams::new(seed).stream(label("dst-continuation"));
    for step in 0..300u64 {
        let shard = (step % shards as u64) as usize;
        let value = 3.0 + rng.random::<f64>() * 4.0;
        let accepted = sup.ingest(shard, value);
        debug_assert!(accepted, "continuation never fills its queue");
        while sup.poll_shard(shard)? > 0 {}
    }
    while sup.poll_all()? > 0 {}
    Ok(())
}

/// One of four seeded ways to break a snapshot, all of which restore
/// is contractually required to reject: format drift, topology drift,
/// detector-kind drift, and spec-knob drift.
fn corrupt_snapshot(mut snap: SupervisorSnapshot, mode: u64) -> SupervisorSnapshot {
    match mode % 4 {
        0 => snap.version = snap.version.wrapping_add(7),
        1 => {
            snap.shards.pop();
        }
        2 => {
            // Shards 0 and 1 carry different detector kinds in every
            // scenario, so swapping them is a guaranteed kind mismatch.
            snap.shards.swap(0, 1);
        }
        _ => match snap.shards[0].spec.as_mut() {
            Some(spec) => spec.mu += 1.5,
            // +9 keeps the fallback clear of every *accepted* version
            // (v3 and the dead-letter v4) for any current value.
            None => snap.version = snap.version.wrapping_add(9),
        },
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mixing_is_stable_and_spread() {
        assert_eq!(mix_seed(1, 0), mix_seed(1, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }

    #[test]
    fn corruptions_are_rejected_by_restore() {
        let scenario = Scenario::Single(QueueBackend::Mutex);
        let mut sup = Supervisor::with_specs(scenario.config(), &scenario.specs()).unwrap();
        for i in 0..120u64 {
            sup.process_sync((i % 3) as usize, 4.0).unwrap();
        }
        let snap = sup.snapshot().unwrap();
        for mode in 0..4 {
            let bad = corrupt_snapshot(snap.clone(), mode);
            assert!(
                sup.restore(&bad).is_err(),
                "corruption mode {mode} must be rejected"
            );
        }
        sup.restore(&snap).expect("the pristine snapshot restores");
    }
}
