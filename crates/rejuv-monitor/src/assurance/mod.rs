//! Performance-assurance subsystem: crash-simulation failpoints,
//! deterministic kill/resume simulation, and guarantee oracles.
//!
//! The monitoring runtime makes four no-loss promises (§[`oracle`]):
//! checkpoints are never torn, resumed replay converges with
//! uninterrupted replay, shutdown drains every accepted observation,
//! and rejected restores never mutate. This module is the machinery
//! that *checks* them instead of asserting them:
//!
//! * [`failpoints`] — the `fp!` site markers compiled into every
//!   durability-critical path (zero-cost unless the `failpoints`
//!   feature is on) plus the static [`failpoints::CATALOG`].
//! * [`oracle`] — always-compiled checkers `check_g1` … `check_g4`
//!   over the artifacts a run leaves behind.
//! * [`dst`] — the deterministic-simulation harness (feature-gated):
//!   for each failpoint × seeded schedule it runs a workload, crashes
//!   at the site, resumes from the surviving checkpoint + trace, and
//!   feeds the oracles. Driven by `monitord --dst` and the
//!   `dst_harness` integration test.

pub mod failpoints;
pub mod oracle;

#[cfg(feature = "failpoints")]
pub mod dst;
