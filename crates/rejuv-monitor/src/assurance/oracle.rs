//! Named guarantee checkers for the crash-simulation harness.
//!
//! Each oracle inspects the artifacts a crashed-and-resumed run leaves
//! behind — the JSONL trace, the on-disk checkpoint, the final report —
//! and either vouches for one named guarantee or returns a
//! [`Violation`] describing exactly how it broke:
//!
//! * **G1 — a checkpoint file is never torn.** Whatever instant the
//!   crash landed at, the *published* checkpoint path parses, carries
//!   the current [`SNAPSHOT_VERSION`], and matches the fleet topology
//!   ([`check_g1_checkpoint_integrity`]).
//! * **G2 — resumed replay ≡ uninterrupted replay.** Replaying the
//!   surviving trace from the surviving checkpoint converges with
//!   replaying it from scratch: byte-identical reports when the
//!   checkpoint was taken at a quiescent (empty-queue) instant, and
//!   identical decision digests/counters otherwise
//!   ([`check_g2_replay_convergence`]).
//! * **G3 — shutdown drains every accepted observation.** At clean
//!   completion every sample the queues accepted since the resume
//!   baseline has been observed by a detector, and drops are accounted
//!   exactly once: `accepted − processed` never grows past the
//!   baseline's in-flight debt and `dropped` never moves without a
//!   drop ([`check_g3_no_loss`]).
//! * **G4 — restore never mutates on rejection.** A rejected
//!   checkpoint (wrong version, shard count, detector kind, or spec
//!   drift) leaves the supervisor byte-for-byte untouched
//!   ([`check_g4_rejection_is_pure`]).

use crate::event::MonitorEvent;
use crate::supervisor::{
    MonitorReport, Supervisor, SupervisorConfig, SupervisorSnapshot, SNAPSHOT_VERSION,
};
use crate::{checkpoint, replay_fleet_events};
use rejuv_core::DetectorSpec;
use std::fmt;
use std::path::Path;

/// One broken guarantee, as reported by an oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which named guarantee broke: `"G1"` … `"G4"`.
    pub guarantee: &'static str,
    /// What exactly was observed.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.guarantee, self.detail)
    }
}

impl std::error::Error for Violation {}

fn violation(guarantee: &'static str, detail: impl Into<String>) -> Violation {
    Violation {
        guarantee,
        detail: detail.into(),
    }
}

/// **G1.** Loads and validates the published checkpoint at `path`.
///
/// Returns `Ok(None)` when no checkpoint was ever published (a crash
/// before the first cadence crossing leaves nothing, which is fine);
/// `Ok(Some(snapshot))` when the file parses, carries the current
/// format version and describes `expected_shards` shards. Any torn,
/// truncated or topology-drifted file is a violation — the atomic
/// write-temp/fsync/rename pipeline must never publish one.
///
/// # Errors
///
/// [`Violation`] tagged `"G1"` describing the torn or invalid file.
pub fn check_g1_checkpoint_integrity(
    path: &Path,
    expected_shards: usize,
) -> Result<Option<SupervisorSnapshot>, Violation> {
    if !path.exists() {
        return Ok(None);
    }
    let snapshot = checkpoint::load_snapshot(path)
        .map_err(|e| violation("G1", format!("published checkpoint does not load: {e}")))?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(violation(
            "G1",
            format!(
                "checkpoint version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            ),
        ));
    }
    if snapshot.shards.len() != expected_shards {
        return Err(violation(
            "G1",
            format!(
                "checkpoint describes {} shard(s), run had {expected_shards}",
                snapshot.shards.len()
            ),
        ));
    }
    for (i, shard) in snapshot.shards.iter().enumerate() {
        if shard.processed < shard.rejuvenations {
            return Err(violation(
                "G1",
                format!("shard {i}: more rejuvenations than observations"),
            ));
        }
        if shard.accepted < shard.processed {
            return Err(violation(
                "G1",
                format!(
                    "shard {i}: processed {} exceeds accepted {}",
                    shard.processed, shard.accepted
                ),
            ));
        }
    }
    Ok(Some(snapshot))
}

/// What [`check_g2_replay_convergence`] proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum G2Outcome {
    /// No checkpoint survived; the fresh replay alone completed — the
    /// guarantee holds vacuously.
    FreshOnly,
    /// The checkpoint was quiescent (every shard had drained all
    /// accepted samples, nothing dropped): the resumed and fresh
    /// reports were byte-identical.
    ByteIdentical,
    /// The checkpoint carried in-flight queue debt (accepted but not
    /// yet drained samples, which a crash legitimately loses): decision
    /// digests, processed counts and rejuvenations were identical.
    DigestIdentical,
}

/// **G2.** Replays `events` twice — from scratch and resumed from
/// `snapshot` — and checks the runs converge.
///
/// When the snapshot was taken at a quiescent instant (per shard,
/// `accepted == processed` and `dropped == 0`, which is how every
/// checkpoint this crate takes on the synchronous path looks) the two
/// final reports must serialise to identical bytes. A checkpoint taken
/// while queues held in-flight samples resumes the *lifetime* accepted
/// counter including samples the crash destroyed, so the comparison
/// relaxes to the decision-relevant state: per-shard digests, processed
/// counts, and rejuvenation counts.
///
/// # Errors
///
/// [`Violation`] tagged `"G2"` when either replay fails or the runs
/// diverge.
pub fn check_g2_replay_convergence(
    events: &[MonitorEvent],
    config: SupervisorConfig,
    specs: &[DetectorSpec],
    snapshot: Option<&SupervisorSnapshot>,
) -> Result<G2Outcome, Violation> {
    let fresh = replay_fleet_events(events, config, specs, None)
        .map_err(|e| violation("G2", format!("fresh replay failed: {e}")))?;
    let Some(snapshot) = snapshot else {
        return Ok(G2Outcome::FreshOnly);
    };
    let resumed = replay_fleet_events(events, config, specs, Some(snapshot))
        .map_err(|e| violation("G2", format!("resumed replay failed: {e}")))?;
    let fresh = fresh.report();
    let resumed = resumed.report();
    let quiescent = snapshot
        .shards
        .iter()
        .all(|s| s.accepted == s.processed && s.dropped == 0);
    if quiescent {
        let fresh_bytes = serde_json::to_string(&fresh)
            .map_err(|e| violation("G2", format!("cannot serialise fresh report: {e}")))?;
        let resumed_bytes = serde_json::to_string(&resumed)
            .map_err(|e| violation("G2", format!("cannot serialise resumed report: {e}")))?;
        if fresh_bytes != resumed_bytes {
            return Err(violation(
                "G2",
                first_divergence(&fresh, &resumed)
                    .unwrap_or_else(|| "reports differ outside per-shard state".to_owned()),
            ));
        }
        return Ok(G2Outcome::ByteIdentical);
    }
    if let Some(diff) = first_divergence(&fresh, &resumed) {
        return Err(violation("G2", diff));
    }
    Ok(G2Outcome::DigestIdentical)
}

/// The first decision-relevant difference between two reports, if any.
fn first_divergence(fresh: &MonitorReport, resumed: &MonitorReport) -> Option<String> {
    if fresh.shards.len() != resumed.shards.len() {
        return Some(format!(
            "shard count {} vs {}",
            fresh.shards.len(),
            resumed.shards.len()
        ));
    }
    for (f, r) in fresh.shards.iter().zip(&resumed.shards) {
        if f.digest != r.digest {
            return Some(format!(
                "shard {}: digest {} (fresh) vs {} (resumed)",
                f.shard, f.digest, r.digest
            ));
        }
        if f.processed != r.processed {
            return Some(format!(
                "shard {}: processed {} (fresh) vs {} (resumed)",
                f.shard, f.processed, r.processed
            ));
        }
        if f.rejuvenations != r.rejuvenations {
            return Some(format!(
                "shard {}: rejuvenations {} (fresh) vs {} (resumed)",
                f.shard, f.rejuvenations, r.rejuvenations
            ));
        }
    }
    None
}

/// **G3.** Checks the no-loss accounting of a *completed* run against
/// the checkpoint it resumed from (pass `None` for a fresh run; the
/// baseline is then all zeros).
///
/// A checkpoint may legitimately record samples that were accepted into
/// a queue but not yet drained when it was taken — a real crash
/// destroys those, and nothing can observe them afterwards. That debt
/// is the *only* slack the guarantee allows: at clean shutdown every
/// shard must satisfy
///
/// * `accepted − processed == baseline.accepted − baseline.processed`
///   (every sample accepted since the resume was drained and observed),
/// * `dropped >= baseline.dropped` and, when `lossless` is set (the
///   workload used only blocking producers), `dropped ==
///   baseline.dropped` (drops are accounted, never invented).
///
/// # Errors
///
/// [`Violation`] tagged `"G3"` naming the shard whose accounting leaks.
pub fn check_g3_no_loss(
    report: &MonitorReport,
    baseline: Option<&SupervisorSnapshot>,
    lossless: bool,
) -> Result<(), Violation> {
    for (i, shard) in report.shards.iter().enumerate() {
        let (base_accepted, base_processed, base_dropped) = baseline
            .and_then(|s| s.shards.get(i))
            .map(|s| (s.accepted, s.processed, s.dropped))
            .unwrap_or((0, 0, 0));
        let debt = base_accepted - base_processed;
        if shard.accepted < shard.processed {
            return Err(violation(
                "G3",
                format!(
                    "shard {i}: processed {} exceeds accepted {}",
                    shard.processed, shard.accepted
                ),
            ));
        }
        if shard.accepted - shard.processed != debt {
            return Err(violation(
                "G3",
                format!(
                    "shard {i}: {} accepted sample(s) unobserved at shutdown \
                     (baseline in-flight debt was {debt})",
                    shard.accepted - shard.processed
                ),
            ));
        }
        if shard.dropped < base_dropped {
            return Err(violation(
                "G3",
                format!(
                    "shard {i}: dropped count went backwards ({} < {base_dropped})",
                    shard.dropped
                ),
            ));
        }
        if lossless && shard.dropped != base_dropped {
            return Err(violation(
                "G3",
                format!(
                    "shard {i}: {} drop(s) invented under a lossless workload",
                    shard.dropped - base_dropped
                ),
            ));
        }
    }
    Ok(())
}

/// **G4.** Feeds a rejectable snapshot to `supervisor.restore` and
/// checks both halves of the contract: the restore *is* rejected (with
/// the typed [`crate::supervisor::RestoreError`]), and the supervisor's
/// serialised report is byte-for-byte what it was before the attempt —
/// rejection never mutates.
///
/// # Errors
///
/// [`Violation`] tagged `"G4"` when the bad snapshot was accepted or
/// the rejection left a mark.
pub fn check_g4_rejection_is_pure(
    supervisor: &mut Supervisor,
    bad: &SupervisorSnapshot,
) -> Result<(), Violation> {
    let before = serde_json::to_string(&supervisor.report())
        .map_err(|e| violation("G4", format!("cannot serialise report: {e}")))?;
    match supervisor.restore(bad) {
        Ok(()) => {
            return Err(violation(
                "G4",
                "a corrupted snapshot was accepted by restore".to_owned(),
            ))
        }
        Err(_typed) => {}
    }
    let after = serde_json::to_string(&supervisor.report())
        .map_err(|e| violation("G4", format!("cannot serialise report: {e}")))?;
    if before != after {
        return Err(violation(
            "G4",
            "rejected restore mutated the supervisor's report".to_owned(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use rejuv_core::{DetectorKind, DetectorSpec};

    fn specs() -> Vec<DetectorSpec> {
        vec![
            DetectorSpec::with_baseline(DetectorKind::Sraa, 5.0, 5.0),
            DetectorSpec::with_baseline(DetectorKind::Cusum, 5.0, 5.0),
        ]
    }

    fn seeded_supervisor() -> Supervisor {
        let mut sup = Supervisor::with_specs(SupervisorConfig::default(), &specs()).unwrap();
        for i in 0..120u64 {
            let shard = (i % 2) as usize;
            sup.process_sync(shard, if shard == 1 { 55.0 } else { 4.0 })
                .unwrap();
        }
        sup
    }

    #[test]
    fn g1_accepts_a_round_tripped_checkpoint_and_rejects_torn_bytes() {
        let dir = std::env::temp_dir().join(format!("rejuv-oracle-g1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let sup = seeded_supervisor();
        let snap = sup.snapshot().unwrap();
        checkpoint::save_snapshot(&path, &snap).unwrap();
        assert_eq!(
            check_g1_checkpoint_integrity(&path, 2).unwrap(),
            Some(snap.clone())
        );
        assert_eq!(
            check_g1_checkpoint_integrity(&dir.join("absent.json"), 2).unwrap(),
            None
        );

        // A mid-JSON cut is a violation, not a panic.
        let full = serde_json::to_string_pretty(&snap).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = check_g1_checkpoint_integrity(&path, 2).unwrap_err();
        assert_eq!(err.guarantee, "G1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn g3_accepts_clean_accounting_and_flags_unobserved_samples() {
        let sup = seeded_supervisor();
        let report = sup.report();
        check_g3_no_loss(&report, None, true).unwrap();

        let mut leaky = report.clone();
        leaky.shards[0].accepted += 3;
        let err = check_g3_no_loss(&leaky, None, true).unwrap_err();
        assert_eq!(err.guarantee, "G3");
        assert!(err.detail.contains("unobserved"), "{}", err.detail);
    }

    #[test]
    fn g4_passes_on_the_typed_rejections_and_catches_accepted_garbage() {
        let mut sup = seeded_supervisor();
        let mut bad = sup.snapshot().unwrap();
        bad.version += 9;
        check_g4_rejection_is_pure(&mut sup, &bad).unwrap();

        // A snapshot that *is* valid must make the oracle complain that
        // restore accepted it.
        let good = sup.snapshot().unwrap();
        let err = check_g4_rejection_is_pure(&mut sup, &good).unwrap_err();
        assert_eq!(err.guarantee, "G4");
        assert!(err.detail.contains("accepted"), "{}", err.detail);
    }
}
