//! The sharded detector supervisor.
//!
//! A [`Supervisor`] owns N independent monitored streams (*shards* — one
//! per cluster host, service instance, …). Each shard couples a bounded
//! ingestion queue ([`ObsQueue`]) to a boxed
//! [`RejuvenationDetector`]: producers push raw observations through a
//! [`ShardSender`] (possibly from another thread), the supervisor drains
//! them in batches through the detector and accounts for every sample —
//! processed, or dropped to back-pressure. All decisions, counters and
//! the per-shard FNV-1a decision digest are pure functions of each
//! shard's observation sequence, which is what makes a recorded run
//! exactly replayable.
//!
//! Observations may carry simulation timestamps ([`Supervisor::ingest_at`],
//! [`ShardSender::send_at`]): timed samples feed a per-run
//! `inter_observation_latency` histogram and are recorded as
//! [`MonitorEvent::TimedBatch`] so replay reproduces the histogram
//! bit-for-bit. Timestamps never enter the decision digest — a timed and
//! an untimed run over the same values agree on every decision digest.
//!
//! A supervisor can also stream *checkpoints*: a [`CheckpointSink`]
//! receives a full [`SupervisorSnapshot`] every `checkpoint_every`
//! processed observations ([`Supervisor::set_checkpoint`]) or every
//! `secs` seconds of an injectable [`CheckpointClock`]
//! ([`Supervisor::set_checkpoint_timer`]); the event log, if any, is
//! flushed first so the persisted log always covers the checkpoint.
//! [`Supervisor::restore`] rebuilds from a snapshot, rejecting mismatched
//! shard counts, detector kinds or specs, and snapshot versions with a
//! typed [`RestoreError`] instead of silently misapplying state.
//!
//! Fleets need not be homogeneous: [`Supervisor::with_specs`] builds one
//! shard per [`DetectorSpec`] (see [`crate::fleet::FleetConfig`]), each
//! shard's digest is seeded with its detector kind name, and reports
//! carry a per-kind [`DetectorKindReport`] rollup.

use crate::assurance::failpoints::fp;
use crate::bus::{EventBus, OpEvent};
use crate::dlq::{DeadLetterQueue, DlqStats};
use crate::event::{EventLog, MonitorEvent};
use crate::metrics::{Histogram, MetricsRegistry, MetricsReport};
use crate::queue::{ObsQueue, QueueBackend, UNTIMED};
use rejuv_core::{ConfigError, Decision, DetectorSnapshot, DetectorSpec, RejuvenationDetector};
use rejuv_sim::{Observation, ObservationSink};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Histogram bounds for observation values (seconds; the paper's SLA
/// puts µX at 5 s).
const VALUE_BOUNDS: [f64; 7] = [1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0];
/// Histogram bounds for drain batch sizes.
const BATCH_BOUNDS: [f64; 5] = [1.0, 8.0, 64.0, 512.0, 4096.0];
/// Histogram bounds for inter-observation latency, seconds of
/// simulation time between consecutive timed samples of one shard.
const LATENCY_BOUNDS: [f64; 6] = [0.01, 0.05, 0.25, 1.0, 5.0, 25.0];

/// Version tag of [`SupervisorSnapshot`]'s serialised format; bumped on
/// incompatible layout changes so a stale checkpoint file is rejected
/// with a typed error instead of misapplied. Version 2 added the
/// per-shard [`DetectorSpec`] carried for heterogeneous fleets;
/// version 3 moved histogram and counter accumulation into each shard
/// ([`ShardSnapshot`] now carries the per-shard histograms), so a
/// restored run resumes the exact per-shard floating-point state no
/// matter how many consumer threads drained it. Version 4
/// ([`SNAPSHOT_VERSION_DLQ`]) adds the per-shard dead-letter queue
/// contents and counters; it is written only when a DLQ is attached
/// ([`Supervisor::enable_dlq`]), so default runs keep emitting v3
/// byte-identically.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Version tag written when any shard has a dead-letter queue attached:
/// the snapshot additionally carries [`SupervisorSnapshot::dlq`], so no
/// accepted-or-dead-lettered sample is lost across a crash.
pub const SNAPSHOT_VERSION_DLQ: u32 = 4;

/// Tuning knobs of a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Capacity of each shard's ingestion queue; pushes beyond it are
    /// dropped and counted.
    pub queue_capacity: usize,
    /// Maximum observations processed per shard per poll.
    pub drain_batch: usize,
    /// Checkpoint cadence: emit a [`MonitorEvent::Snapshot`] every this
    /// many processed observations per shard (`None` disables).
    pub snapshot_every: Option<u64>,
    /// Which [`QueueBackend`] each shard's ingestion queue runs on.
    /// Purely an execution-strategy knob: digests, reports and replays
    /// are bitwise identical across backends.
    pub backend: QueueBackend,
    /// How many consumer threads a [`crate::ConsumerThread`] (backed by
    /// a [`crate::ConsumerPool`]) spawns to drain the shards. Another
    /// pure execution-strategy knob: whole-shard ownership keeps
    /// per-shard FIFO order, so digests, traces and checkpoints are
    /// bitwise identical across consumer counts. Default 1.
    pub consumers: usize,
    /// Debug knob: drain with the per-sample reference loop (one
    /// virtual `observe` call, digest fold and histogram bucket search
    /// per observation) instead of the batch kernel
    /// ([`rejuv_core::RejuvenationDetector::observe_batch`] plus bulk
    /// histogram recording). The two paths are bitwise-identical in
    /// every artifact — digests, traces, reports, checkpoints — which
    /// is exactly why this flag exists: flipping it is a one-flag A/B
    /// that CI `cmp`s. Default `false` (batch kernel).
    pub scalar_drain: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            queue_capacity: 8_192,
            drain_batch: 512,
            snapshot_every: None,
            backend: QueueBackend::Mutex,
            consumers: 1,
            scalar_drain: false,
        }
    }
}

/// Receives full supervisor checkpoints (see
/// [`Supervisor::set_checkpoint`]); typically persists them atomically
/// via [`crate::checkpoint::save_snapshot`].
pub type CheckpointSink = Box<dyn FnMut(&SupervisorSnapshot) -> io::Result<()> + Send>;

/// A monotonic seconds source for timer-based checkpoints (see
/// [`Supervisor::set_checkpoint_timer`]). Injected rather than read
/// from `std::time` so the cadence is unit-testable with synthetic
/// clock ticks.
pub type CheckpointClock = Box<dyn FnMut() -> f64 + Send>;

/// When the configured checkpoint stream emits.
enum CheckpointCadence {
    /// Every `n` *total* processed observations (across shards).
    Every(u64),
    /// Whenever at least `secs` elapsed on `clock` since the last
    /// checkpoint, evaluated on drain-batch boundaries.
    Timer {
        secs: f64,
        clock: CheckpointClock,
        last_tick: f64,
    },
}

/// The configured checkpoint stream. Crate-visible so the consumer
/// pool can drive the same cadence/emit protocol without owning a
/// `&mut Supervisor`.
pub(crate) struct CheckpointStream {
    cadence: CheckpointCadence,
    /// Total processed observations at the last emitted checkpoint.
    last_total: u64,
    sink: CheckpointSink,
}

impl CheckpointStream {
    /// Whether a checkpoint is due at `total` processed observations.
    /// Timer cadences read their clock exactly once per evaluation.
    pub(crate) fn due(&mut self, total: u64) -> bool {
        match &mut self.cadence {
            CheckpointCadence::Every(every) => total / *every > self.last_total / *every,
            CheckpointCadence::Timer {
                secs,
                clock,
                last_tick,
            } => clock() - *last_tick >= *secs,
        }
    }

    /// Hands `snapshot` to the sink and restarts the cadence window at
    /// `total` (timer cadences re-read their clock).
    pub(crate) fn emit(&mut self, snapshot: &SupervisorSnapshot, total: u64) -> io::Result<()> {
        (self.sink)(snapshot)?;
        self.last_total = total;
        if let CheckpointCadence::Timer {
            clock, last_tick, ..
        } = &mut self.cadence
        {
            *last_tick = clock();
        }
        Ok(())
    }
}

/// One monitored stream: a bounded ingestion queue, a boxed detector,
/// and *all* run accounting for that stream — counters, digest, and the
/// three per-shard histograms. Keeping the histograms per shard (rather
/// than in one shared registry) is what makes reports and checkpoints
/// byte-identical no matter how many consumer threads drained the fleet
/// or in what interleaving: each shard's floating-point accumulation
/// order is fixed by its own observation sequence, and the supervisor
/// folds shards in index order when it builds the merged registry.
/// Crate-visible so the consumer pool can own shards directly.
pub(crate) struct Shard {
    pub(crate) detector: Box<dyn RejuvenationDetector>,
    /// The declarative spec this shard was built from, when the
    /// supervisor was assembled from a fleet config ([`None`] for
    /// detectors handed in as opaque boxes).
    pub(crate) spec: Option<DetectorSpec>,
    pub(crate) queue: ObsQueue,
    /// Observations fed through the detector so far.
    pub(crate) processed: u64,
    /// Rejuvenate decisions returned so far.
    pub(crate) rejuvenations: u64,
    /// FNV-1a over every (value bits, decision) pair, in order.
    pub(crate) digest: u64,
    /// Timestamp of the last *timed* observation, for the
    /// inter-observation latency histogram (`None` before the first).
    pub(crate) last_at: Option<f64>,
    pub(crate) last_decision: Decision,
    /// Per-shard `observation_value` accumulation.
    pub(crate) value_hist: Histogram,
    /// Per-shard `drain_batch_size` accumulation.
    pub(crate) batch_hist: Histogram,
    /// Per-shard `inter_observation_latency` accumulation.
    pub(crate) latency_hist: Histogram,
    /// Detector snapshot events emitted for this shard.
    pub(crate) snapshots: u64,
    /// Synchronous feeds ([`Supervisor::process_sync`]) dropped to
    /// back-pressure.
    pub(crate) sync_drops: u64,
    /// Operational event bus, if one was attached via
    /// [`Supervisor::set_bus`]; the drain path publishes
    /// [`OpEvent::RejuvenationFired`] through it. Purely observational —
    /// never feeds back into decisions or artifacts.
    pub(crate) bus: Option<Arc<EventBus>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// One digest step of the determinism contract: folds a sample's
/// `(value bits, decision)` pair into the running FNV-1a-style digest
/// *word-at-a-time* — one xor-multiply for the value bits taken as one
/// 64-bit word, one for the decision. Two serial multiplies per sample
/// instead of nine: the digest is an inherently serial dependency
/// chain, and at nine multiplies it *was* the drain plane's critical
/// path, capping both drain kernels well below what the detector and
/// histogram work costs. Both the scalar and the batch drain use this
/// same fold, so the A/B byte-equality contract is unaffected.
#[inline]
fn fold_sample(digest: u64, value_bits: u64, fired: bool) -> u64 {
    let digest = (digest ^ value_bits).wrapping_mul(FNV_PRIME);
    (digest ^ fired as u64).wrapping_mul(FNV_PRIME)
}

impl Shard {
    fn apply(&mut self, value: f64) -> Decision {
        let decision = self.detector.observe(value);
        self.processed += 1;
        self.digest = fold_sample(self.digest, value.to_bits(), decision.is_rejuvenate());
        if decision.is_rejuvenate() {
            self.rejuvenations += 1;
        }
        self.last_decision = decision;
        decision
    }

    /// This shard's slice of a [`SupervisorSnapshot`]; `None` when the
    /// detector does not support snapshots.
    pub(crate) fn snapshot_view(&self) -> Option<ShardSnapshot> {
        Some(ShardSnapshot {
            detector: self.detector.snapshot()?,
            spec: self.spec,
            processed: self.processed,
            rejuvenations: self.rejuvenations,
            digest: self.digest,
            accepted: self.queue.accepted(),
            dropped: self.queue.dropped(),
            producer_waits: self.queue.waits(),
            last_at: self.last_at,
            value_hist: self.value_hist.clone(),
            batch_hist: self.batch_hist.clone(),
            latency_hist: self.latency_hist.clone(),
            snapshots: self.snapshots,
            sync_drops: self.sync_drops,
        })
    }

    /// This shard's slice of a [`MonitorReport`].
    pub(crate) fn report_view(&self, index: usize) -> ShardReport {
        ShardReport {
            shard: index as u32,
            detector: self.detector.name().to_owned(),
            processed: self.processed,
            accepted: self.queue.accepted(),
            dropped: self.queue.dropped(),
            producer_waits: self.queue.waits(),
            rejuvenations: self.rejuvenations,
            detector_triggers: self.detector.rejuvenation_count(),
            digest: format!("{:016x}", self.digest),
        }
    }
}

/// Reusable buffers for one drain path (the supervisor owns one, each
/// pool worker owns one): the raw `(value, timestamp)` batch popped
/// from the queue, the bare value slice handed to the detector's batch
/// kernel, and the fired sequence numbers it returns. One allocation
/// set per drain plane, reused across every drained batch.
#[derive(Default)]
pub(crate) struct DrainScratch {
    pub(crate) batch: Vec<(f64, f64)>,
    values: Vec<f64>,
    fired: Vec<u64>,
}

impl DrainScratch {
    pub(crate) fn with_capacity(drain_batch: usize) -> Self {
        DrainScratch {
            batch: Vec::with_capacity(drain_batch),
            values: Vec::with_capacity(drain_batch),
            fired: Vec::new(),
        }
    }
}

/// Drains up to `config.drain_batch` pending observations of one shard
/// through its detector, accumulating all metric state *inside the
/// shard* and appending the events a log would record (batch,
/// rejuvenations, detector snapshot — in that order) to `events` when
/// `logging` is set. Shared verbatim by [`Supervisor::poll_shard`]
/// (which writes the events through immediately) and the consumer
/// pool's workers (which buffer them per shard and flush shard-major at
/// checkpoint/join), so both paths process, count and hash identically
/// by construction. Returns how many observations were processed.
///
/// The hot path is the **batch kernel**: one virtual
/// [`RejuvenationDetector::observe_batch`] call per drained batch, the
/// decision digest folded from the returned fire list, bulk
/// [`Histogram::record_slice`] for the value/latency histograms and a
/// vectorized timestamp-diff pass. `config.scalar_drain` selects the
/// per-sample reference loop instead; both produce bitwise-identical
/// shard state (digest, counters, histograms) and identical events.
pub(crate) fn drain_shard(
    index: usize,
    shard: &mut Shard,
    config: &SupervisorConfig,
    scratch: &mut DrainScratch,
    logging: bool,
    events: &mut Vec<MonitorEvent>,
) -> usize {
    let batch = &mut scratch.batch;
    batch.clear();
    // Top up the main queue from the dead-letter queue (capture order)
    // before popping: the logical stream is `main queue ++ DLQ`, and
    // refilling first keeps every drained batch identical to the batch
    // an undropped run would have drained. No-op without a DLQ.
    shard.queue.replay_dead_letters();
    shard.queue.drain_into(batch, config.drain_batch);
    if batch.is_empty() {
        return 0;
    }
    let seq_start = shard.processed;
    if logging {
        let timed = batch.iter().any(|&(_, at)| at.is_finite());
        events.push(if timed {
            MonitorEvent::TimedBatch {
                shard: index as u32,
                seq: seq_start,
                values: batch.iter().map(|&(v, _)| v).collect(),
                times: batch.iter().map(|&(_, at)| at).collect(),
            }
        } else {
            MonitorEvent::Batch {
                shard: index as u32,
                seq: seq_start,
                values: batch.iter().map(|&(v, _)| v).collect(),
            }
        });
    }
    scratch.fired.clear();
    let fired = &mut scratch.fired;
    if config.scalar_drain {
        // Reference path: one virtual dispatch, digest fold and bucket
        // search per sample. Kept selectable so the batch kernel below
        // is always one flag away from an A/B byte comparison.
        let mut last_at = shard.last_at;
        for &(value, at) in batch.iter() {
            let seq = shard.processed;
            if shard.apply(value).is_rejuvenate() {
                fired.push(seq);
            }
            if at.is_finite() {
                if let Some(prev) = last_at {
                    shard.latency_hist.record(at - prev);
                }
                last_at = Some(at);
            }
            shard.value_hist.record(value);
        }
        shard.last_at = last_at;
    } else {
        // Batch kernel: one virtual call per drained sub-chunk instead
        // of one per sample. The detector contract (`observe_batch` ≡
        // per-sample `observe`, bitwise) lets every per-sample artifact
        // be reconstructed from the fire list: the digest folds (value
        // bits, decision byte) pairs by walking the ascending fired
        // sequence numbers, and the counters/last-decision derive from
        // its length and tail.
        // The batch is processed in small sub-chunks, each one kernel
        // call followed by one fused digest/histogram/latency pass:
        //
        // * the FNV digest is a serial multiply-xor dependency chain,
        //   so the (independent) bucket searches and timestamp diffs
        //   run *inside* the same loop, filling the multiplier's
        //   latency bubbles — a separate digest loop measurably costs
        //   the batch path its whole win;
        // * chunking keeps each kernel call and each fold short enough
        //   that the out-of-order window can overlap chunk `k`'s fold
        //   (latency-bound) with chunk `k+1`'s detector work
        //   (throughput-bound), instead of serialising two long loops.
        //
        // Byte-for-byte the same digest, histograms and fire list as
        // the scalar path: same fold order, same accumulation order,
        // same subtraction per timed pair.
        const DRAIN_CHUNK: usize = 32;
        let all_values = &mut scratch.values;
        all_values.clear();
        all_values.extend(batch.iter().map(|&(v, _)| v));
        let mut digest = shard.digest;
        let mut next_fired = 0;
        let mut last_at = shard.last_at;
        let latency_hist = &mut shard.latency_hist;
        let value_hist = &mut shard.value_hist;
        let pairs = &batch[..];
        let mut start = 0;
        while start < pairs.len() {
            let end = (start + DRAIN_CHUNK).min(pairs.len());
            let values = &all_values[start..end];
            shard
                .detector
                .observe_batch(values, fired, seq_start + start as u64);
            // Each chunk's kernel appends only sequence numbers inside
            // that chunk, and each chunk's fold consumes exactly those
            // — so `next_fired == fired.len()` on entry means this
            // chunk fired nothing, and the fold can drop the per-sample
            // fired compare and sequence arithmetic. Rejuvenations are
            // rare, so this is the overwhelmingly common shape.
            if next_fired == fired.len() {
                value_hist.record_slice_with(values, |i, value| {
                    digest = fold_sample(digest, value.to_bits(), false);
                    // Untimed producers (`at = NaN`) cost one
                    // predictable branch here.
                    let at = pairs[start + i].1;
                    if at.is_finite() {
                        if let Some(prev) = last_at {
                            latency_hist.record(at - prev);
                        }
                        last_at = Some(at);
                    }
                });
            } else {
                let fired_slice = &fired[..];
                value_hist.record_slice_with(values, |i, value| {
                    let seq = seq_start + (start + i) as u64;
                    let fired_here =
                        next_fired < fired_slice.len() && fired_slice[next_fired] == seq;
                    next_fired += fired_here as usize;
                    digest = fold_sample(digest, value.to_bits(), fired_here);
                    let at = pairs[start + i].1;
                    if at.is_finite() {
                        if let Some(prev) = last_at {
                            latency_hist.record(at - prev);
                        }
                        last_at = Some(at);
                    }
                });
            }
            start = end;
        }
        shard.digest = digest;
        shard.last_at = last_at;
        shard.processed += pairs.len() as u64;
        shard.rejuvenations += fired.len() as u64;
        shard.last_decision = if fired.last() == Some(&(shard.processed - 1)) {
            Decision::Rejuvenate
        } else {
            Decision::Continue
        };
    }
    shard.batch_hist.record(batch.len() as f64);
    fp!("supervisor.drain-applied");
    if let Some(bus) = shard.bus.as_ref() {
        for &seq in fired.iter() {
            bus.publish(OpEvent::RejuvenationFired {
                shard: index as u32,
                seq,
            });
        }
    }
    if logging {
        for &seq in fired.iter() {
            events.push(MonitorEvent::Rejuvenated {
                shard: index as u32,
                seq,
            });
        }
    }
    if let Some(every) = config.snapshot_every {
        let crossed = (shard.processed / every) > (seq_start / every);
        if crossed {
            if let Some(state) = shard.detector.snapshot() {
                shard.snapshots += 1;
                if logging {
                    events.push(MonitorEvent::Snapshot {
                        shard: index as u32,
                        seq: shard.processed - 1,
                        state,
                    });
                }
            }
        }
    }
    batch.len()
}

/// Folds per-shard metric state (histograms and derived counters) into
/// a merged registry, in whatever order shards are [`MetricsFold::add`]ed
/// — callers add in shard-index order, which is what pins the merged
/// floating-point sums regardless of drain interleaving. Crate-visible
/// so the consumer pool can fold shards it holds behind per-shard locks.
pub(crate) struct MetricsFold {
    value: Histogram,
    batch: Histogram,
    latency: Histogram,
    processed: u64,
    rejuvenations: u64,
    snapshots: u64,
    sync_drops: u64,
    by_kind: BTreeMap<String, u64>,
}

impl MetricsFold {
    pub(crate) fn new() -> Self {
        MetricsFold {
            value: Histogram::new(&VALUE_BOUNDS),
            batch: Histogram::new(&BATCH_BOUNDS),
            latency: Histogram::new(&LATENCY_BOUNDS),
            processed: 0,
            rejuvenations: 0,
            snapshots: 0,
            sync_drops: 0,
            by_kind: BTreeMap::new(),
        }
    }

    /// Folds one shard in; call in shard-index order.
    pub(crate) fn add(&mut self, shard: &Shard) {
        self.value.merge(&shard.value_hist);
        self.batch.merge(&shard.batch_hist);
        self.latency.merge(&shard.latency_hist);
        self.processed += shard.processed;
        self.rejuvenations += shard.rejuvenations;
        self.snapshots += shard.snapshots;
        self.sync_drops += shard.sync_drops;
        *self
            .by_kind
            .entry(shard.detector.name().to_owned())
            .or_insert(0) += shard.rejuvenations;
    }

    /// Builds the full registry: the base registry (gauges plus any
    /// ad-hoc instruments) overlaid with the folded histograms and the
    /// derived counters. Counter presence mirrors the incremental
    /// behaviour the registry had when drains updated it directly:
    /// `observations_processed` and `rejuvenations` exist once anything
    /// was processed, `snapshots`/`observations_dropped` once nonzero,
    /// and `rejuvenations_{kind}` always exists for every kind present.
    pub(crate) fn apply(self, base: &MetricsRegistry) -> MetricsRegistry {
        let mut merged = base.clone();
        merged.insert_histogram("observation_value", self.value);
        merged.insert_histogram("drain_batch_size", self.batch);
        merged.insert_histogram("inter_observation_latency", self.latency);
        if self.processed > 0 {
            merged.inc("observations_processed", self.processed);
            merged.inc("rejuvenations", self.rejuvenations);
        }
        if self.snapshots > 0 {
            merged.inc("snapshots", self.snapshots);
        }
        if self.sync_drops > 0 {
            merged.inc("observations_dropped", self.sync_drops);
        }
        for (kind, fired) in self.by_kind {
            merged.inc(&format!("rejuvenations_{kind}"), fired);
        }
        merged
    }
}

/// Histogram names derived from per-shard state; excluded from the base
/// registry a restore rebuilds (they are re-merged on every export).
const DERIVED_HISTOGRAMS: [&str; 3] = [
    "observation_value",
    "drain_batch_size",
    "inter_observation_latency",
];
/// Counter names derived from per-shard state, plus every counter
/// starting with `rejuvenations`.
const DERIVED_COUNTERS: [&str; 3] = [
    "observations_processed",
    "snapshots",
    "observations_dropped",
];

/// A producer handle for one shard's ingestion queue.
///
/// Cheap to clone, safe to move to another thread, and usable as a
/// [`rejuv_sim::ObservationSink`], so an engine-driven model can feed a
/// supervisor without depending on this crate's types.
#[derive(Debug, Clone)]
pub struct ShardSender {
    shard: u32,
    queue: ObsQueue,
}

impl ShardSender {
    /// The shard this handle feeds.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Offers one untimed observation; `false` means it was dropped to
    /// back-pressure (and counted).
    pub fn send(&self, value: f64) -> bool {
        self.queue.push(value)
    }

    /// Offers one observation stamped at `at` seconds of simulation
    /// time; `false` means dropped to back-pressure (and counted).
    pub fn send_at(&self, value: f64, at: f64) -> bool {
        self.queue.push_at(value, at)
    }

    /// Sends, waiting until queue space frees up (lossless producers).
    /// Bounded spin, then a condvar park — never an unbounded busy
    /// loop. Returns `false` only when the queue was shut down while
    /// this producer waited (the sample was not enqueued).
    pub fn send_blocking(&self, value: f64) -> bool {
        self.queue.push_blocking(value)
    }

    /// Offers a batch of `(value, at)` samples in one queue operation
    /// (one lock acquisition on the mutex backend, one tail publish on
    /// the ring), returning how many were accepted; the rest are
    /// counted as drops.
    pub fn send_batch<I>(&self, samples: I) -> usize
    where
        I: IntoIterator<Item = (f64, f64)>,
        I::IntoIter: ExactSizeIterator,
    {
        self.queue.push_batch(samples)
    }

    /// Sends a whole batch losslessly, parking between refills whenever
    /// the queue is full — the batched flavour of
    /// [`ShardSender::send_blocking`]. Returns how many samples were
    /// enqueued: short only when the queue was shut down while this
    /// producer waited.
    pub fn send_batch_blocking<I>(&self, samples: I) -> usize
    where
        I: IntoIterator<Item = (f64, f64)>,
        I::IntoIter: ExactSizeIterator,
    {
        self.queue.push_batch_blocking(samples)
    }

    /// Pending (sent, not yet drained) observations in this shard's
    /// queue.
    ///
    /// **Approximate under concurrent drain**: relaxed atomic loads, no
    /// locking — a concurrent consumer can make the value momentarily
    /// stale by up to one drain batch. Exact whenever no drain is in
    /// flight. The consumer pool reads the same hint as its
    /// work-stealing heat signal.
    pub fn backlog(&self) -> usize {
        self.queue.backlog_hint()
    }
}

impl ObservationSink for ShardSender {
    fn push(&mut self, observation: Observation) -> bool {
        self.queue
            .push_at(observation.value, observation.at.as_secs())
    }

    fn push_batch(&mut self, observations: &[Observation]) -> usize {
        self.queue
            .push_batch(observations.iter().map(|o| (o.value, o.at.as_secs())))
    }
}

/// Per-shard slice of a [`MonitorReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Detector kind supervising the shard.
    pub detector: String,
    /// Observations fed through the detector.
    pub processed: u64,
    /// Observations accepted into the queue over its lifetime.
    pub accepted: u64,
    /// Observations dropped to back-pressure.
    pub dropped: u64,
    /// Times a lossless (blocking) producer parked on back-pressure.
    pub producer_waits: u64,
    /// Rejuvenate decisions returned.
    pub rejuvenations: u64,
    /// Lifetime trigger count reported by the detector itself (survives
    /// snapshot/restore; equals `rejuvenations` for a fresh supervisor).
    pub detector_triggers: u64,
    /// FNV-1a digest over the (value, decision) sequence, hex-encoded.
    pub digest: String,
}

/// Per-detector-kind rollup inside a [`MonitorReport`]: in a mixed
/// fleet, how much work each algorithm family did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorKindReport {
    /// Detector kind name ([`RejuvenationDetector::name`]).
    pub detector: String,
    /// Shards running this kind.
    pub shards: u64,
    /// Observations processed by those shards.
    pub processed: u64,
    /// Rejuvenate decisions returned by those shards.
    pub rejuvenations: u64,
}

/// The final metrics report of a monitoring run.
///
/// Serialising this is byte-stable: a replayed run that processed the
/// same per-shard observation sequences produces an identical report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Per-shard accounting.
    pub shards: Vec<ShardReport>,
    /// Per-detector-kind rollup, sorted by kind name (one entry per
    /// kind present in the fleet).
    pub by_detector: Vec<DetectorKindReport>,
    /// Sum of `processed` over all shards.
    pub total_processed: u64,
    /// Sum of `dropped` over all shards.
    pub total_dropped: u64,
    /// Sum of `rejuvenations` over all shards.
    pub total_rejuvenations: u64,
    /// The metrics registry export.
    pub metrics: MetricsReport,
}

/// A complete supervisor checkpoint: every shard's detector state plus
/// the run accounting, restorable via [`Supervisor::restore`].
///
/// Serialisation is hand-written (not derived) so the `dlq` field is
/// *omitted* when empty: a supervisor without dead-letter queues keeps
/// producing checkpoints byte-identical to the v3 derived layout.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorSnapshot {
    /// Serialised-format version; see [`SNAPSHOT_VERSION`] and
    /// [`SNAPSHOT_VERSION_DLQ`].
    pub version: u32,
    /// Per-shard detector snapshots and counters, by shard index.
    pub shards: Vec<ShardSnapshot>,
    /// The metrics registry export at checkpoint time.
    pub metrics: MetricsReport,
    /// Dead-letter state of every shard with a DLQ attached (empty for
    /// v3 checkpoints). Entries are present even when no samples are
    /// pending, so lifetime capture/replay/overflow counters survive a
    /// crash too.
    pub dlq: Vec<DlqSnapshot>,
}

impl Serialize for SupervisorSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut map = BTreeMap::new();
        if !self.dlq.is_empty() {
            map.insert("dlq".to_owned(), self.dlq.to_value());
        }
        map.insert("metrics".to_owned(), self.metrics.to_value());
        map.insert("shards".to_owned(), self.shards.to_value());
        map.insert("version".to_owned(), self.version.to_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for SupervisorSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| {
                serde::Error::custom(format!("missing field `{name}` for SupervisorSnapshot"))
            })
        };
        Ok(SupervisorSnapshot {
            version: Deserialize::from_value(field("version")?)?,
            shards: Deserialize::from_value(field("shards")?)?,
            metrics: Deserialize::from_value(field("metrics")?)?,
            // Absent in v3 checkpoints: default to no dead-letter state.
            dlq: match value.get("dlq") {
                Some(dlq) => Deserialize::from_value(dlq)?,
                None => Vec::new(),
            },
        })
    }
}

/// One shard's dead-letter state inside a [`SupervisorSnapshot`]
/// (format v4, see [`SNAPSHOT_VERSION_DLQ`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlqSnapshot {
    /// The shard this dead-letter queue serves.
    pub shard: u32,
    /// Pending `(value, at)` samples, oldest first — exactly what
    /// replay would re-ingest next.
    pub samples: Vec<(f64, f64)>,
    /// Lifetime samples captured when the checkpoint was taken.
    pub captured: u64,
    /// Lifetime samples replayed when the checkpoint was taken.
    pub replayed: u64,
    /// Lifetime samples lost to DLQ overflow when the checkpoint was
    /// taken.
    pub overflow: u64,
}

/// One shard's slice of a [`SupervisorSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// The detector's complete state.
    pub detector: DetectorSnapshot,
    /// The declarative spec the shard was configured from, when known.
    /// [`Supervisor::restore`] refuses a checkpoint whose spec disagrees
    /// with the configured shard's (same-kind knob drift included).
    pub spec: Option<DetectorSpec>,
    /// Observations processed when the checkpoint was taken.
    pub processed: u64,
    /// Rejuvenate decisions returned when the checkpoint was taken.
    pub rejuvenations: u64,
    /// Decision digest when the checkpoint was taken.
    pub digest: u64,
    /// Queue-lifetime accepted count when the checkpoint was taken.
    pub accepted: u64,
    /// Queue-lifetime dropped count when the checkpoint was taken.
    pub dropped: u64,
    /// Queue-lifetime blocking-producer parks when the checkpoint was
    /// taken.
    pub producer_waits: u64,
    /// Timestamp of the last timed observation, if any, so the
    /// inter-observation latency histogram resumes seamlessly.
    pub last_at: Option<f64>,
    /// Per-shard `observation_value` histogram at checkpoint time.
    /// Carried per shard (not only merged into
    /// [`SupervisorSnapshot::metrics`]) because floating-point sums are
    /// order-sensitive: a resume must restart each shard's own
    /// accumulation exactly where it stopped, or the resumed run's
    /// merged report would re-associate the sums and drift from the
    /// uninterrupted run's bytes.
    pub value_hist: Histogram,
    /// Per-shard `drain_batch_size` histogram at checkpoint time.
    pub batch_hist: Histogram,
    /// Per-shard `inter_observation_latency` histogram at checkpoint
    /// time.
    pub latency_hist: Histogram,
    /// Detector snapshot events emitted by this shard when the
    /// checkpoint was taken.
    pub snapshots: u64,
    /// Synchronous feeds dropped to back-pressure when the checkpoint
    /// was taken.
    pub sync_drops: u64,
}

/// Why [`Supervisor::restore`] refused a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The checkpoint's serialised format is from a different code
    /// generation.
    VersionMismatch {
        /// Version this build writes and understands.
        expected: u32,
        /// Version found in the checkpoint.
        found: u32,
    },
    /// The checkpoint was taken from a supervisor with a different
    /// number of shards.
    ShardCountMismatch {
        /// Shards in this supervisor.
        expected: usize,
        /// Shards in the checkpoint.
        found: usize,
    },
    /// A shard's detector rejected its snapshot (wrong kind or
    /// unsupported).
    Detector {
        /// The offending shard.
        shard: usize,
        /// The underlying error.
        source: rejuv_core::SnapshotError,
    },
    /// The checkpoint's per-shard spec disagrees with the configured
    /// shard's — same kind, different knobs (a kind mismatch surfaces
    /// as [`RestoreError::Detector`] first).
    SpecMismatch {
        /// The offending shard.
        shard: usize,
        /// Spec configured for this supervisor's shard (boxed to keep
        /// the error type small on the happy path).
        expected: Box<DetectorSpec>,
        /// Spec recorded in the checkpoint.
        found: Box<DetectorSpec>,
    },
    /// A v4 checkpoint carries dead-letter state for a shard that has
    /// no dead-letter queue attached (or names a shard out of range);
    /// call [`Supervisor::enable_dlq`] before restoring.
    DlqMismatch {
        /// Shard index recorded in the checkpoint's dead-letter entry.
        shard: u32,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::VersionMismatch { expected, found } => write!(
                f,
                "checkpoint format v{found} is not the supported v{expected}"
            ),
            RestoreError::ShardCountMismatch { expected, found } => write!(
                f,
                "checkpoint has {found} shards but the supervisor has {expected}"
            ),
            RestoreError::Detector { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            RestoreError::SpecMismatch {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard}: checkpoint spec {found} does not match configured {expected}"
            ),
            RestoreError::DlqMismatch { shard } => write!(
                f,
                "checkpoint carries dead-letter state for shard {shard}, \
                 which has no dead-letter queue attached"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Why [`Supervisor::reload_specs`] refused a fleet hot-reload. The
/// supervisor is never mutated on error: validation of *every* spec
/// happens before any shard is rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The new fleet has a different number of shards — hot-reload can
    /// rebuild detectors in place but cannot resize the fleet.
    ShardCountMismatch {
        /// Shards in this supervisor.
        expected: usize,
        /// Specs in the proposed fleet.
        found: usize,
    },
    /// A proposed spec failed detector validation.
    Spec {
        /// The offending shard.
        shard: usize,
        /// The underlying validation error.
        source: ConfigError,
    },
    /// The shard was not built from a [`DetectorSpec`] (opaque boxed
    /// detector), so there is no baseline to diff the new spec against.
    NotFromSpecs {
        /// The offending shard.
        shard: usize,
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::ShardCountMismatch { expected, found } => write!(
                f,
                "fleet has {found} shards but the supervisor has {expected}"
            ),
            ReloadError::Spec { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ReloadError::NotFromSpecs { shard } => write!(
                f,
                "shard {shard} was not built from a spec; hot-reload needs a spec-built fleet"
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

/// The sharded online monitoring runtime.
pub struct Supervisor {
    config: SupervisorConfig,
    shards: Vec<Shard>,
    /// Topology gauges and ad-hoc instruments only; per-shard metric
    /// state is folded in on export (see [`MetricsFold`]).
    metrics: MetricsRegistry,
    log: Option<EventLog>,
    scratch: DrainScratch,
    event_scratch: Vec<MonitorEvent>,
    checkpoint: Option<CheckpointStream>,
    /// Operational event bus, if attached ([`Supervisor::set_bus`]).
    bus: Option<Arc<EventBus>>,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("shards", &self.shards.len())
            .field("logging", &self.log.is_some())
            .field("checkpointing", &self.checkpoint.is_some())
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Creates an empty supervisor; add streams with
    /// [`Supervisor::add_shard`].
    pub fn new(config: SupervisorConfig) -> Self {
        assert!(config.drain_batch > 0, "drain batch must be positive");
        assert!(config.consumers > 0, "consumer count must be positive");
        // The base registry holds only topology gauges (and any ad-hoc
        // instruments added via `metrics_mut`); histograms and the
        // processing counters live per shard and are folded in on every
        // export — see `MetricsFold`.
        let mut metrics = MetricsRegistry::new();
        metrics.set_gauge("shards", 0.0);
        Supervisor {
            scratch: DrainScratch::with_capacity(config.drain_batch),
            config,
            shards: Vec::new(),
            metrics,
            log: None,
            event_scratch: Vec::new(),
            checkpoint: None,
            bus: None,
        }
    }

    /// Convenience: a supervisor with `shards` streams from a detector
    /// factory (shard index passed in).
    pub fn with_shards<F>(config: SupervisorConfig, shards: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn RejuvenationDetector>,
    {
        let mut sup = Supervisor::new(config);
        for i in 0..shards {
            sup.add_shard(factory(i));
        }
        sup
    }

    /// A (possibly heterogeneous) supervisor with one shard per spec,
    /// in order — the fleet-config construction path. Each shard
    /// remembers its spec, so checkpoints carry the full fleet topology
    /// and [`Supervisor::restore`] can reject spec drift per shard.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] of the first invalid spec.
    pub fn with_specs(
        config: SupervisorConfig,
        specs: &[DetectorSpec],
    ) -> Result<Self, ConfigError> {
        let mut sup = Supervisor::new(config);
        for spec in specs {
            sup.add_shard_spec(*spec)?;
        }
        Ok(sup)
    }

    /// Adds a monitored stream supervised by `detector`; returns its
    /// shard index.
    pub fn add_shard(&mut self, detector: Box<dyn RejuvenationDetector>) -> usize {
        self.push_shard(detector, None)
    }

    /// Adds a monitored stream built from a declarative spec; returns
    /// its shard index.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the spec fails detector validation.
    pub fn add_shard_spec(&mut self, spec: DetectorSpec) -> Result<usize, ConfigError> {
        let detector = spec.build()?;
        Ok(self.push_shard(detector, Some(spec)))
    }

    fn push_shard(
        &mut self,
        detector: Box<dyn RejuvenationDetector>,
        spec: Option<DetectorSpec>,
    ) -> usize {
        // Seed the decision digest with the detector kind so a digest
        // certifies *which algorithm* decided, not just what it decided
        // — two kinds that happen to agree on a stream still produce
        // distinct digests.
        let digest = fnv1a(FNV_OFFSET, detector.name().as_bytes());
        let kind = detector.name();
        self.shards.push(Shard {
            detector,
            spec,
            queue: ObsQueue::with_backend(self.config.queue_capacity, self.config.backend),
            processed: 0,
            rejuvenations: 0,
            digest,
            last_at: None,
            last_decision: Decision::Continue,
            value_hist: Histogram::new(&VALUE_BOUNDS),
            batch_hist: Histogram::new(&BATCH_BOUNDS),
            latency_hist: Histogram::new(&LATENCY_BOUNDS),
            snapshots: 0,
            sync_drops: 0,
            bus: self.bus.clone(),
        });
        self.metrics.set_gauge("shards", self.shards.len() as f64);
        let of_kind = self
            .shards
            .iter()
            .filter(|s| s.detector.name() == kind)
            .count();
        self.metrics
            .set_gauge(&format!("shards_{kind}"), of_kind as f64);
        // The per-kind rejuvenation counter (`rejuvenations_{kind}`) is
        // not pre-registered here: `MetricsFold::apply` inserts one for
        // every kind present in the topology, fired or not.
        self.shards.len() - 1
    }

    /// The declarative spec `shard` was built from, when the supervisor
    /// was assembled from specs ([`None`] for opaque detectors).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn spec(&self, shard: usize) -> Option<&DetectorSpec> {
        self.shards[shard].spec.as_ref()
    }

    /// Number of monitored streams.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Attaches a JSONL event log; subsequent drains append to it.
    pub fn set_log(&mut self, log: EventLog) {
        self.log = Some(log);
    }

    /// Detaches and returns the event log, if any.
    pub fn take_log(&mut self) -> Option<EventLog> {
        self.log.take()
    }

    /// Streams checkpoints to `sink`: after every `every` *total*
    /// processed observations (across shards), the event log is flushed
    /// and a full [`SupervisorSnapshot`] is handed to the sink.
    ///
    /// Checkpoints always land on drain-batch boundaries, so a resumed
    /// run (see [`crate::replay_events_resumed`]) reproduces the
    /// uninterrupted run's report byte-for-byte. Checkpointing leaves no
    /// trace in metrics or digests: a run with checkpoints enabled
    /// reports identically to one without.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn set_checkpoint(&mut self, every: u64, sink: CheckpointSink) {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.checkpoint = Some(CheckpointStream {
            cadence: CheckpointCadence::Every(every),
            last_total: self.total_processed(),
            sink,
        });
    }

    /// Streams checkpoints to `sink` on a *timer*: whenever at least
    /// `secs` have elapsed on `clock` since the last checkpoint, the
    /// next drain that processed observations emits one. The cadence is
    /// still evaluated on drain-batch boundaries, so resumed replays
    /// stay byte-identical exactly as with [`Supervisor::set_checkpoint`].
    ///
    /// `clock` is any monotonic seconds source — wall time in
    /// production (`Instant::elapsed`), injected ticks in tests, which
    /// is what keeps the cadence deterministic under test.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive and finite.
    pub fn set_checkpoint_timer(
        &mut self,
        secs: f64,
        mut clock: CheckpointClock,
        sink: CheckpointSink,
    ) {
        assert!(
            secs.is_finite() && secs > 0.0,
            "checkpoint timer must be positive"
        );
        let last_tick = clock();
        self.checkpoint = Some(CheckpointStream {
            cadence: CheckpointCadence::Timer {
                secs,
                clock,
                last_tick,
            },
            last_total: self.total_processed(),
            sink,
        });
    }

    /// Stops streaming checkpoints and returns the sink, if any.
    pub fn take_checkpoint(&mut self) -> Option<CheckpointSink> {
        self.checkpoint.take().map(|stream| stream.sink)
    }

    /// Attaches a bounded [`DeadLetterQueue`] (holding up to `capacity`
    /// samples) to every shard: lossy pushes that find a queue full
    /// *capture* the `(value, at)` sample instead of dropping it, and
    /// each drain replays captured samples back in FIFO order before
    /// popping — so under saturation `dropped` stays 0 and the decision
    /// digests match a run that never saturated. Checkpoints switch to
    /// format v4 ([`SNAPSHOT_VERSION_DLQ`]), carrying the DLQ contents.
    ///
    /// Call before [`Supervisor::set_bus`] (an already-attached bus is
    /// propagated here too) and before producers start. Shards added
    /// later are *not* retrofitted.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero, or a shard already has a DLQ attached.
    pub fn enable_dlq(&mut self, capacity: usize) {
        for (i, shard) in self.shards.iter().enumerate() {
            let dlq = Arc::new(DeadLetterQueue::new(i as u32, capacity));
            if let Some(bus) = self.bus.as_ref() {
                dlq.set_bus(Arc::clone(bus));
            }
            shard.queue.attach_dlq(dlq);
        }
    }

    /// Attaches an operational [`EventBus`]: the runtime publishes
    /// [`OpEvent`]s (rejuvenation fired, checkpoint written, queue
    /// saturated, samples dead-lettered/replayed/overflowed, shard
    /// rebuilt) through it. Purely observational — attaching a bus
    /// changes no report, trace, digest, or checkpoint byte.
    pub fn set_bus(&mut self, bus: Arc<EventBus>) {
        for shard in &mut self.shards {
            shard.bus = Some(Arc::clone(&bus));
            if let Some(dlq) = shard.queue.dlq() {
                dlq.set_bus(Arc::clone(&bus));
            }
        }
        self.bus = Some(bus);
    }

    /// The attached operational event bus, if any.
    pub fn bus(&self) -> Option<&Arc<EventBus>> {
        self.bus.as_ref()
    }

    /// Whether any shard has a dead-letter queue attached.
    pub fn dlq_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.queue.dlq().is_some())
    }

    /// Dead-letter accounting for `shard`, or [`None`] when it has no
    /// DLQ attached.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn dlq_stats(&self, shard: usize) -> Option<DlqStats> {
        self.shards[shard].queue.dlq().map(|d| d.stats())
    }

    /// Dead-letter accounting summed over every shard with a DLQ
    /// attached (all zeros when none is).
    pub fn dlq_totals(&self) -> DlqStats {
        let mut totals = DlqStats::default();
        for shard in &self.shards {
            if let Some(stats) = shard.queue.dlq().map(|d| d.stats()) {
                totals.pending += stats.pending;
                totals.captured += stats.captured;
                totals.replayed += stats.replayed;
                totals.overflow += stats.overflow;
            }
        }
        totals
    }

    /// Hot-reloads the fleet from `specs`, rebuilding **exactly the
    /// drifted shards** (spec differs from the one in force) in place:
    /// a fresh detector is built from the new spec, while the shard's
    /// processed/rejuvenation counters, histograms, and queue (pending
    /// samples included) are kept. The new detector kind is folded into
    /// the shard's running digest, so the digest records the algorithm
    /// switch the same way construction seeds record the initial kind.
    /// Publishes [`OpEvent::ShardRebuilt`] per rebuilt shard when a bus
    /// is attached, and returns the rebuilt shard indices (empty when
    /// nothing drifted).
    ///
    /// Validation is all-or-nothing: every spec is checked (count,
    /// spec-built shard, detector validation) before any shard is
    /// mutated, mirroring [`Supervisor::restore`]'s contract.
    ///
    /// # Errors
    ///
    /// [`ReloadError`] with the supervisor untouched.
    pub fn reload_specs(&mut self, specs: &[DetectorSpec]) -> Result<Vec<usize>, ReloadError> {
        if specs.len() != self.shards.len() {
            return Err(ReloadError::ShardCountMismatch {
                expected: self.shards.len(),
                found: specs.len(),
            });
        }
        let mut rebuilt: Vec<(usize, Box<dyn RejuvenationDetector>)> = Vec::new();
        for (i, (spec, shard)) in specs.iter().zip(&self.shards).enumerate() {
            let Some(current) = shard.spec.as_ref() else {
                return Err(ReloadError::NotFromSpecs { shard: i });
            };
            if spec == current {
                continue;
            }
            let detector = spec
                .build()
                .map_err(|source| ReloadError::Spec { shard: i, source })?;
            rebuilt.push((i, detector));
        }
        let mut indices = Vec::with_capacity(rebuilt.len());
        for (i, detector) in rebuilt {
            let shard = &mut self.shards[i];
            let from = shard.detector.name().to_owned();
            let to = detector.name().to_owned();
            shard.detector = detector;
            shard.spec = Some(specs[i]);
            // Fold the new kind into the *running* digest (same scheme
            // as the construction seed): decisions after the rebuild
            // are certified as the new algorithm's.
            shard.digest = fnv1a(shard.digest, to.as_bytes());
            shard.last_decision = Decision::Continue;
            if let Some(bus) = shard.bus.as_ref() {
                bus.publish(OpEvent::ShardRebuilt {
                    shard: i as u32,
                    from,
                    to,
                });
            }
            indices.push(i);
        }
        if !indices.is_empty() {
            self.refresh_kind_gauges();
        }
        Ok(indices)
    }

    /// Recomputes every `shards_{kind}` topology gauge after a reload:
    /// gauges for kinds no longer present drop to zero rather than
    /// lingering at a stale count.
    fn refresh_kind_gauges(&mut self) {
        let stale: Vec<String> = self
            .metrics
            .report()
            .gauges
            .keys()
            .filter(|name| name.starts_with("shards_"))
            .cloned()
            .collect();
        for name in stale {
            self.metrics.set_gauge(&name, 0.0);
        }
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for shard in &self.shards {
            *counts
                .entry(format!("shards_{}", shard.detector.name()))
                .or_insert(0) += 1;
        }
        for (name, count) in counts {
            self.metrics.set_gauge(&name, count as f64);
        }
    }

    /// Sum of processed observations over all shards.
    pub fn total_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// A cloneable producer handle for `shard`'s ingestion queue.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn sender(&self, shard: usize) -> ShardSender {
        ShardSender {
            shard: shard as u32,
            queue: self.shards[shard].queue.clone(),
        }
    }

    /// The shard's ingestion queue (consumer threads attach their
    /// wakeup notifier through it).
    pub(crate) fn queue(&self, shard: usize) -> &ObsQueue {
        &self.shards[shard].queue
    }

    /// Offers one untimed observation to `shard`'s queue without
    /// draining; `false` means dropped to back-pressure.
    pub fn ingest(&self, shard: usize, value: f64) -> bool {
        self.shards[shard].queue.push(value)
    }

    /// Offers one observation stamped at `at` seconds of simulation
    /// time; `false` means dropped to back-pressure.
    pub fn ingest_at(&self, shard: usize, value: f64, at: f64) -> bool {
        self.shards[shard].queue.push_at(value, at)
    }

    /// Drains up to `drain_batch` pending observations of one shard
    /// through its detector, logging the batch and any rejuvenations.
    /// Returns how many observations were processed.
    ///
    /// # Errors
    ///
    /// Propagates event-log and checkpoint-sink write failures; the
    /// shard state has already advanced past the processed observations.
    pub fn poll_shard(&mut self, shard: usize) -> io::Result<usize> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.drain_one(shard, &mut scratch);
        self.scratch = scratch;
        if matches!(result, Ok(n) if n > 0) {
            self.maybe_checkpoint()?;
        }
        result
    }

    fn drain_one(&mut self, shard: usize, scratch: &mut DrainScratch) -> io::Result<usize> {
        let logging = self.log.is_some();
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        let n = drain_shard(
            shard,
            &mut self.shards[shard],
            &self.config,
            scratch,
            logging,
            &mut events,
        );
        let result = match self.log.as_mut() {
            Some(log) => events.iter().try_for_each(|event| log.record(event)),
            None => Ok(()),
        };
        self.event_scratch = events;
        result.map(|()| n)
    }

    /// Emits a checkpoint to the configured sink if the cadence was
    /// crossed since the last one. The event log is flushed first so a
    /// persisted log always covers (at least) the checkpointed prefix —
    /// the invariant crash recovery relies on.
    fn maybe_checkpoint(&mut self) -> io::Result<()> {
        let total = self.total_processed();
        let Some(stream) = self.checkpoint.as_mut() else {
            return Ok(());
        };
        if !stream.due(total) {
            return Ok(());
        }
        self.checkpoint_now()
    }

    /// Immediately emits a checkpoint to the configured sink (no-op
    /// without one, or when a shard's detector cannot snapshot).
    ///
    /// # Errors
    ///
    /// Propagates log-flush and sink failures.
    pub fn checkpoint_now(&mut self) -> io::Result<()> {
        if self.checkpoint.is_none() {
            return Ok(());
        }
        fp!("supervisor.checkpoint-flush");
        if let Some(log) = self.log.as_mut() {
            log.flush()?;
        }
        let Some(snapshot) = self.snapshot() else {
            return Ok(());
        };
        fp!("supervisor.checkpoint-emit");
        let total = self.total_processed();
        if let Some(stream) = self.checkpoint.as_mut() {
            stream.emit(&snapshot, total)?;
        }
        if let Some(bus) = self.bus.as_ref() {
            bus.publish(OpEvent::CheckpointWritten {
                total_processed: total,
            });
        }
        Ok(())
    }

    /// Polls every shard once, round-robin; returns total observations
    /// processed.
    ///
    /// # Errors
    ///
    /// Propagates event-log write failures.
    pub fn poll_all(&mut self) -> io::Result<usize> {
        let mut total = 0;
        for shard in 0..self.shards.len() {
            total += self.poll_shard(shard)?;
        }
        Ok(total)
    }

    /// Synchronously feeds one untimed observation: ingest, then drain
    /// the shard until its queue is empty, returning the decision for
    /// the *last* processed observation (i.e. this one, when the queue
    /// was empty).
    ///
    /// This is the live-attachment path: a model that needs a decision
    /// per observation degenerates the batched drain to batch size 1,
    /// while decoupled producers keep the full batching.
    ///
    /// # Errors
    ///
    /// Propagates event-log write failures.
    pub fn process_sync(&mut self, shard: usize, value: f64) -> io::Result<Decision> {
        self.process_sync_sample(shard, value, UNTIMED)
    }

    /// [`Supervisor::process_sync`] with a simulation timestamp, feeding
    /// the inter-observation latency histogram.
    ///
    /// # Errors
    ///
    /// Propagates event-log write failures.
    pub fn process_sync_at(&mut self, shard: usize, value: f64, at: f64) -> io::Result<Decision> {
        self.process_sync_sample(shard, value, at)
    }

    fn process_sync_sample(&mut self, shard: usize, value: f64, at: f64) -> io::Result<Decision> {
        if !self.shards[shard].queue.push_at(value, at) {
            self.shards[shard].sync_drops += 1;
        }
        while self.poll_shard(shard)? > 0 {}
        Ok(self.shards[shard].last_decision)
    }

    /// Observations processed by `shard` so far.
    pub fn processed(&self, shard: usize) -> u64 {
        self.shards[shard].processed
    }

    /// Rejuvenate decisions returned by `shard` so far.
    pub fn rejuvenations(&self, shard: usize) -> u64 {
        self.shards[shard].rejuvenations
    }

    /// Pending (ingested, not yet drained) observations of `shard`.
    ///
    /// **Approximate under concurrent drain**: the count is read with
    /// relaxed atomics and never takes the queue lock, so while a
    /// consumer thread is mid-drain it may lag or lead the true
    /// occupancy by up to one batch. That is exactly what the consumer
    /// pool wants from its work-stealing heat signal — a cheap,
    /// contention-free hint — and callers needing an exact figure should
    /// quiesce the consumers first (the count is exact when nobody is
    /// draining).
    pub fn backlog(&self, shard: usize) -> usize {
        self.shards[shard].queue.backlog_hint()
    }

    /// The metrics registry (for ad-hoc instruments around the runtime).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The full registry export: the base registry (gauges, ad-hoc
    /// instruments) overlaid with per-shard metric state folded in
    /// shard-index order — the order pin that keeps merged
    /// floating-point sums byte-stable across drain interleavings.
    fn merged_metrics(&self) -> MetricsRegistry {
        let mut fold = MetricsFold::new();
        for shard in &self.shards {
            fold.add(shard);
        }
        fold.apply(&self.metrics)
    }

    /// Exports the final report: per-shard accounting plus the metrics
    /// registry.
    pub fn report(&self) -> MonitorReport {
        let shards: Vec<ShardReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.report_view(i))
            .collect();
        let mut by_kind: std::collections::BTreeMap<&str, DetectorKindReport> =
            std::collections::BTreeMap::new();
        for s in &shards {
            let entry = by_kind
                .entry(s.detector.as_str())
                .or_insert_with(|| DetectorKindReport {
                    detector: s.detector.clone(),
                    shards: 0,
                    processed: 0,
                    rejuvenations: 0,
                });
            entry.shards += 1;
            entry.processed += s.processed;
            entry.rejuvenations += s.rejuvenations;
        }
        MonitorReport {
            total_processed: shards.iter().map(|s| s.processed).sum(),
            total_dropped: shards.iter().map(|s| s.dropped).sum(),
            total_rejuvenations: shards.iter().map(|s| s.rejuvenations).sum(),
            by_detector: by_kind.into_values().collect(),
            shards,
            metrics: self.merged_metrics().report(),
        }
    }

    /// Checkpoints every shard's detector state and the run accounting.
    ///
    /// Returns `None` if any shard's detector does not support
    /// snapshots (all-or-nothing: a partial checkpoint could not be
    /// restored coherently).
    pub fn snapshot(&self) -> Option<SupervisorSnapshot> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            shards.push(s.snapshot_view()?);
        }
        // One dead-letter entry per DLQ-attached shard, pending or not,
        // so lifetime counters survive a crash; the format version says
        // v4 exactly when any entry exists, keeping default (no-DLQ)
        // checkpoints byte-identical v3.
        let mut dlq = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            if let Some(d) = s.queue.dlq() {
                let stats = d.stats();
                dlq.push(DlqSnapshot {
                    shard: i as u32,
                    samples: d.contents(),
                    captured: stats.captured,
                    replayed: stats.replayed,
                    overflow: stats.overflow,
                });
            }
        }
        Some(SupervisorSnapshot {
            version: if dlq.is_empty() {
                SNAPSHOT_VERSION
            } else {
                SNAPSHOT_VERSION_DLQ
            },
            shards,
            metrics: self.merged_metrics().report(),
            dlq,
        })
    }

    /// Restores a checkpoint taken by [`Supervisor::snapshot`]:
    /// detectors resume mid-epidemic, counters and metrics resume their
    /// totals. Pending queue contents are untouched.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] if the snapshot version is unknown, the shard
    /// counts differ, or a shard's snapshot belongs to a different
    /// detector kind than the one configured for that shard; the
    /// supervisor is unchanged on error.
    pub fn restore(&mut self, snapshot: &SupervisorSnapshot) -> Result<(), RestoreError> {
        if snapshot.version != SNAPSHOT_VERSION && snapshot.version != SNAPSHOT_VERSION_DLQ {
            return Err(RestoreError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: snapshot.version,
            });
        }
        // Dead-letter entries must land on shards that have a DLQ
        // attached — validated up front, like everything else.
        for entry in &snapshot.dlq {
            let attached = self
                .shards
                .get(entry.shard as usize)
                .is_some_and(|s| s.queue.dlq().is_some());
            if !attached {
                return Err(RestoreError::DlqMismatch { shard: entry.shard });
            }
        }
        if snapshot.shards.len() != self.shards.len() {
            return Err(RestoreError::ShardCountMismatch {
                expected: self.shards.len(),
                found: snapshot.shards.len(),
            });
        }
        // Validate every shard before mutating any: a snapshot whose
        // detector kind disagrees with the configured topology must not
        // silently swap the fleet's algorithms mid-run.
        let mut detectors = Vec::with_capacity(snapshot.shards.len());
        for (i, (shard, state)) in snapshot.shards.iter().zip(&self.shards).enumerate() {
            let expected = state.detector.name();
            let found = shard.detector.kind();
            if expected != found {
                return Err(RestoreError::Detector {
                    shard: i,
                    source: rejuv_core::SnapshotError::KindMismatch {
                        detector: expected,
                        snapshot: found,
                    },
                });
            }
            if let (Some(expected), Some(found)) = (state.spec.as_ref(), shard.spec.as_ref()) {
                if expected != found {
                    return Err(RestoreError::SpecMismatch {
                        shard: i,
                        expected: Box::new(*expected),
                        found: Box::new(*found),
                    });
                }
            }
            detectors.push(shard.detector.clone().into_detector());
        }
        for (state, (shard, detector)) in self
            .shards
            .iter_mut()
            .zip(snapshot.shards.iter().zip(detectors))
        {
            state.detector = detector;
            // The checkpoint is authoritative for the full shard state,
            // spec included (equality was enforced above when both
            // sides knew their spec).
            state.spec = shard.spec;
            state.processed = shard.processed;
            state.rejuvenations = shard.rejuvenations;
            state.digest = shard.digest;
            state
                .queue
                .resume_counters(shard.accepted, shard.dropped, shard.producer_waits);
            state.last_at = shard.last_at;
            state.last_decision = Decision::Continue;
            state.value_hist = shard.value_hist.clone();
            state.batch_hist = shard.batch_hist.clone();
            state.latency_hist = shard.latency_hist.clone();
            state.snapshots = shard.snapshots;
            state.sync_drops = shard.sync_drops;
        }
        // The snapshot's registry is a *merged* export: strip the
        // derived instruments back out so the base registry keeps only
        // gauges and ad-hoc state, and the restored per-shard histograms
        // and counters are folded in fresh on the next export (instead
        // of double-counted).
        let mut base = snapshot.metrics.clone();
        base.counters.retain(|name, _| {
            !DERIVED_COUNTERS.contains(&name.as_str()) && !name.starts_with("rejuvenations")
        });
        base.histograms
            .retain(|name, _| !DERIVED_HISTOGRAMS.contains(&name.as_str()));
        self.metrics = MetricsRegistry::from_report(&base);
        // The checkpoint is authoritative for dead-letter state too: a
        // v3 checkpoint (no entries) resets any attached DLQ, a v4 one
        // reinstates pending samples and lifetime counters wholesale.
        for shard in &self.shards {
            if let Some(dlq) = shard.queue.dlq() {
                dlq.reset();
            }
        }
        for entry in &snapshot.dlq {
            if let Some(dlq) = self.shards[entry.shard as usize].queue.dlq() {
                dlq.restore(
                    &entry.samples,
                    entry.captured,
                    entry.replayed,
                    entry.overflow,
                );
            }
        }
        if let Some(stream) = self.checkpoint.as_mut() {
            stream.last_total = snapshot.shards.iter().map(|s| s.processed).sum();
        }
        Ok(())
    }

    /// Decomposes the supervisor into the pieces the consumer pool
    /// distributes across threads (shards behind per-shard locks, the
    /// log/checkpoint/base-registry behind a control lock);
    /// [`Supervisor::from_parts`] reassembles after the pool joins.
    pub(crate) fn into_parts(self) -> SupervisorParts {
        SupervisorParts {
            config: self.config,
            shards: self.shards,
            metrics: self.metrics,
            log: self.log,
            checkpoint: self.checkpoint,
            bus: self.bus,
        }
    }

    /// Reassembles a supervisor from the pieces a consumer pool took
    /// apart; the inverse of [`Supervisor::into_parts`].
    pub(crate) fn from_parts(parts: SupervisorParts) -> Self {
        Supervisor {
            scratch: DrainScratch::with_capacity(parts.config.drain_batch),
            config: parts.config,
            shards: parts.shards,
            metrics: parts.metrics,
            log: parts.log,
            event_scratch: Vec::new(),
            checkpoint: parts.checkpoint,
            bus: parts.bus,
        }
    }
}

/// A dismantled [`Supervisor`]: everything a [`crate::ConsumerPool`]
/// needs to drain shards from several threads and hand the supervisor
/// back intact at join.
pub(crate) struct SupervisorParts {
    pub(crate) config: SupervisorConfig,
    pub(crate) shards: Vec<Shard>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) log: Option<EventLog>,
    pub(crate) checkpoint: Option<CheckpointStream>,
    pub(crate) bus: Option<Arc<EventBus>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{Clta, CltaConfig, SnapshotError, Sraa, SraaConfig};
    use std::sync::{Arc, Mutex};

    fn sraa() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    fn small() -> Supervisor {
        Supervisor::with_shards(
            SupervisorConfig {
                queue_capacity: 64,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            2,
            |_| sraa(),
        )
    }

    #[test]
    fn batched_drain_processes_in_fifo_order() {
        let mut sup = small();
        for i in 0..20 {
            assert!(sup.ingest(0, i as f64));
        }
        assert_eq!(sup.poll_shard(0).unwrap(), 8, "caps at drain_batch");
        assert_eq!(sup.poll_shard(0).unwrap(), 8);
        assert_eq!(sup.poll_shard(0).unwrap(), 4);
        assert_eq!(sup.poll_shard(0).unwrap(), 0);
        assert_eq!(sup.processed(0), 20);
        assert_eq!(sup.processed(1), 0, "shards are independent");
    }

    #[test]
    fn back_pressure_drops_are_counted_not_blocking() {
        let sup = Supervisor::with_shards(
            SupervisorConfig {
                queue_capacity: 4,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            1,
            |_| sraa(),
        );
        let sender = sup.sender(0);
        let mut accepted = 0;
        for i in 0..10 {
            if sender.send(i as f64) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        let report = sup.report();
        assert_eq!(report.shards[0].accepted, 4);
        assert_eq!(report.shards[0].dropped, 6);
        assert_eq!(report.total_dropped, 6);
    }

    #[test]
    fn process_sync_matches_a_bare_detector() {
        let mut sup = small();
        let mut reference = sraa();
        let values: Vec<f64> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    60.0
                } else {
                    4.0 + (i % 5) as f64
                }
            })
            .collect();
        for &v in &values {
            let expected = reference.observe(v);
            assert_eq!(sup.process_sync(0, v).unwrap(), expected);
        }
        assert_eq!(sup.rejuvenations(0), reference.rejuvenation_count());
    }

    #[test]
    fn digest_is_sensitive_to_decisions_and_values() {
        let mut a = small();
        let mut b = small();
        for v in [1.0, 2.0, 3.0] {
            a.process_sync(0, v).unwrap();
            b.process_sync(0, v).unwrap();
        }
        assert_eq!(a.report().shards[0].digest, b.report().shards[0].digest);
        b.process_sync(0, 4.0).unwrap();
        assert_ne!(a.report().shards[0].digest, b.report().shards[0].digest);
    }

    #[test]
    fn timestamps_feed_latency_histogram_but_not_digests() {
        let mut timed = small();
        let mut untimed = small();
        for i in 0..40 {
            let v = 4.0 + (i % 3) as f64;
            timed.process_sync_at(0, v, i as f64 * 0.5).unwrap();
            untimed.process_sync(0, v).unwrap();
        }
        // Identical values → identical digests, timestamps or not.
        assert_eq!(
            timed.report().shards[0].digest,
            untimed.report().shards[0].digest
        );
        let timed_report = timed.report();
        let hist = &timed_report.metrics.histograms["inter_observation_latency"];
        assert_eq!(hist.count(), 39, "one delta per consecutive timed pair");
        assert!((hist.mean() - 0.5).abs() < 1e-12);
        let untimed_report = untimed.report();
        let empty = &untimed_report.metrics.histograms["inter_observation_latency"];
        assert_eq!(empty.count(), 0, "untimed samples record no latency");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut live = small();
        for i in 0..137 {
            live.process_sync(i % 2, 50.0 + (i % 3) as f64).unwrap();
        }
        let checkpoint = live.snapshot().expect("SRAA shards snapshot");

        // A fresh supervisor restored from the checkpoint must agree
        // with the uninterrupted one on every subsequent decision.
        let mut resumed = small();
        resumed.restore(&checkpoint).unwrap();
        for i in 0..300 {
            let shard = (i % 2) as usize;
            let v = 45.0 + (i % 4) as f64;
            assert_eq!(
                live.process_sync(shard, v).unwrap(),
                resumed.process_sync(shard, v).unwrap()
            );
        }
        assert_eq!(live.report(), resumed.report());
    }

    #[test]
    fn restore_rejects_wrong_shard_count() {
        let live = small();
        let checkpoint = live.snapshot().unwrap();
        let mut other = Supervisor::with_shards(SupervisorConfig::default(), 3, |_| sraa());
        assert_eq!(
            other.restore(&checkpoint),
            Err(RestoreError::ShardCountMismatch {
                expected: 3,
                found: 2,
            })
        );
    }

    #[test]
    fn restore_rejects_wrong_detector_kind() {
        let clta_sup = Supervisor::with_shards(SupervisorConfig::default(), 2, |_| {
            Box::new(Clta::new(CltaConfig::builder(5.0, 5.0).build().unwrap()))
        });
        let checkpoint = clta_sup.snapshot().unwrap();
        let mut sraa_sup = small();
        let before = sraa_sup.report();
        assert_eq!(
            sraa_sup.restore(&checkpoint),
            Err(RestoreError::Detector {
                shard: 0,
                source: SnapshotError::KindMismatch {
                    detector: "SRAA",
                    snapshot: "CLTA",
                },
            })
        );
        assert_eq!(sraa_sup.report(), before, "failed restore leaves no trace");
    }

    #[test]
    fn restore_rejects_unknown_version() {
        let live = small();
        let mut checkpoint = live.snapshot().unwrap();
        checkpoint.version = 99;
        let mut other = small();
        assert_eq!(
            other.restore(&checkpoint),
            Err(RestoreError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: 99,
            })
        );
    }

    #[test]
    fn checkpoint_sink_fires_on_cadence_and_respects_batch_boundaries() {
        let mut sup = small();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        sup.set_checkpoint(
            10,
            Box::new(move |snap| {
                let total: u64 = snap.shards.iter().map(|s| s.processed).sum();
                sink_seen.lock().unwrap().push(total);
                Ok(())
            }),
        );
        for i in 0..35 {
            sup.process_sync(i % 2, 5.0).unwrap();
        }
        let seen = seen.lock().unwrap();
        assert_eq!(&*seen, &[10, 20, 30], "one checkpoint per crossed decade");
    }

    #[test]
    fn timer_checkpoints_follow_injected_clock_ticks() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let specs = [
            DetectorSpec::new(DetectorKind::Sraa),
            DetectorSpec::new(DetectorKind::Clta),
        ];
        let mut sup = Supervisor::with_specs(
            SupervisorConfig {
                queue_capacity: 64,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            &specs,
        )
        .unwrap();
        // A synthetic clock advancing 1 s per reading: checkpoints are
        // due once >= 3 s elapsed since the last emit, evaluated only
        // on drains that processed observations.
        let now = Arc::new(Mutex::new(0.0_f64));
        let clock_now = Arc::clone(&now);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        sup.set_checkpoint_timer(
            3.0,
            Box::new(move || {
                let mut t = clock_now.lock().unwrap();
                *t += 1.0;
                *t
            }),
            Box::new(move |snap| {
                let total: u64 = snap.shards.iter().map(|s| s.processed).sum();
                sink_seen.lock().unwrap().push(total);
                Ok(())
            }),
        );
        for i in 0..12 {
            sup.process_sync(i % 2, 5.0).unwrap();
        }
        // Construction reads the clock once (t=1). Each processed drain
        // reads it once more; every third drain crosses the 3 s budget
        // and emits (which re-reads the clock to restart the window).
        let seen = seen.lock().unwrap();
        assert_eq!(&*seen, &[3, 6, 9, 12], "deterministic timer cadence");
    }

    #[test]
    fn restore_rejects_spec_drift_without_mutating_state() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let config = SupervisorConfig::default();
        let spec = DetectorSpec::new(DetectorKind::Sraa);
        let mut drifted = spec;
        drifted.buckets = 9;
        let mut donor = Supervisor::with_specs(config, &[drifted]).unwrap();
        for _ in 0..10 {
            donor.process_sync(0, 60.0).unwrap();
        }
        let checkpoint = donor.snapshot().unwrap();
        let mut sup = Supervisor::with_specs(config, &[spec]).unwrap();
        sup.process_sync(0, 4.0).unwrap();
        let before = sup.report();
        assert_eq!(
            sup.restore(&checkpoint),
            Err(RestoreError::SpecMismatch {
                shard: 0,
                expected: Box::new(spec),
                found: Box::new(drifted),
            })
        );
        assert_eq!(sup.report(), before, "failed restore leaves no trace");
    }

    #[test]
    fn digests_are_seeded_with_the_detector_kind() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        // Two kinds that agree on every decision for a tame stream must
        // still disagree on the digest: it certifies the algorithm too.
        let config = SupervisorConfig::default();
        let mut a =
            Supervisor::with_specs(config, &[DetectorSpec::new(DetectorKind::Sraa)]).unwrap();
        let mut b =
            Supervisor::with_specs(config, &[DetectorSpec::new(DetectorKind::Clta)]).unwrap();
        for _ in 0..50 {
            a.process_sync(0, 4.0).unwrap();
            b.process_sync(0, 4.0).unwrap();
        }
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.shards[0].rejuvenations, 0);
        assert_eq!(rb.shards[0].rejuvenations, 0);
        assert_ne!(ra.shards[0].digest, rb.shards[0].digest);
    }

    #[test]
    fn report_rolls_up_rejuvenations_per_detector_kind() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let specs = [
            DetectorSpec::new(DetectorKind::Sraa),
            DetectorSpec::new(DetectorKind::Clta),
            DetectorSpec::new(DetectorKind::Sraa),
        ];
        let mut sup = Supervisor::with_specs(SupervisorConfig::default(), &specs).unwrap();
        for shard in 0..3 {
            for _ in 0..200 {
                sup.process_sync(shard, 80.0).unwrap();
            }
        }
        let report = sup.report();
        assert_eq!(report.by_detector.len(), 2, "one rollup entry per kind");
        let clta = &report.by_detector[0];
        let sraa = &report.by_detector[1];
        assert_eq!((clta.detector.as_str(), clta.shards), ("CLTA", 1));
        assert_eq!((sraa.detector.as_str(), sraa.shards), ("SRAA", 2));
        assert_eq!(clta.processed, 200);
        assert_eq!(sraa.processed, 400);
        assert_eq!(
            clta.rejuvenations + sraa.rejuvenations,
            report.total_rejuvenations
        );
        assert!(sraa.rejuvenations > 0, "sustained 80 s fires SRAA");
        // The per-kind metrics counters agree with the rollup.
        assert_eq!(
            report.metrics.counters["rejuvenations_SRAA"],
            sraa.rejuvenations
        );
        assert_eq!(
            report.metrics.counters["rejuvenations_CLTA"],
            clta.rejuvenations
        );
    }

    #[test]
    fn supervisor_snapshot_round_trips_through_json() {
        let mut sup = small();
        for i in 0..9 {
            sup.process_sync_at(0, 30.0, i as f64).unwrap();
        }
        let snap = sup.snapshot().unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        let text = serde_json::to_string(&snap).unwrap();
        let back: SupervisorSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn sender_works_as_observation_sink() {
        use rejuv_sim::Observation;
        let mut sup = small();
        let mut sink: Box<dyn ObservationSink> = Box::new(sup.sender(1));
        assert!(sink.push(Observation::at_secs(0.5, 42.0)));
        assert_eq!(sup.poll_shard(1).unwrap(), 1);
        assert_eq!(sup.processed(1), 1);
    }

    /// One spec-built SRAA shard with a deliberately tiny queue, so
    /// lossy sends saturate it.
    fn tiny_specced(queue_capacity: usize) -> Supervisor {
        use rejuv_core::{DetectorKind, DetectorSpec};
        Supervisor::with_specs(
            SupervisorConfig {
                queue_capacity,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            &[DetectorSpec::new(DetectorKind::Sraa)],
        )
        .unwrap()
    }

    #[test]
    fn dlq_saturated_run_reports_identically_to_an_undropped_run() {
        // Saturated: capacity 8 (>= drain_batch, the replay-determinism
        // condition), so most of the burst dead-letters; replay at the
        // drain boundary must reconstruct the exact logical stream.
        let mut saturated = tiny_specced(8);
        saturated.enable_dlq(256);
        let mut roomy = tiny_specced(256);
        let values: Vec<f64> = (0..120)
            .map(|i| {
                if i % 9 == 0 {
                    75.0
                } else {
                    4.0 + (i % 5) as f64
                }
            })
            .collect();
        for &v in &values {
            assert!(saturated.ingest(0, v), "DLQ absorbs the overflow");
            assert!(roomy.ingest(0, v));
        }
        while saturated.poll_shard(0).unwrap() > 0 {}
        while roomy.poll_shard(0).unwrap() > 0 {}
        let totals = saturated.dlq_totals();
        assert!(totals.captured > 0, "the run must actually saturate");
        assert_eq!(totals.pending, 0);
        assert_eq!(totals.overflow, 0);
        assert_eq!(totals.captured, totals.replayed);
        // Same decisions, same digests, same counters: the DLQ made
        // back-pressure invisible to the report.
        assert_eq!(saturated.report(), roomy.report());
    }

    #[test]
    fn dlq_snapshot_round_trips_as_v4_and_restores_dead_letters() {
        let mut sup = tiny_specced(8);
        sup.enable_dlq(16);
        for i in 0..12 {
            // Timestamped samples: NaN (untimed) timestamps would defeat
            // the `assert_eq!` below, NaN never comparing equal.
            assert!(sup.ingest_at(0, 40.0 + i as f64, i as f64));
        }
        let snap = sup.snapshot().unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION_DLQ);
        assert_eq!(snap.dlq.len(), 1);
        assert_eq!(snap.dlq[0].shard, 0);
        assert_eq!(snap.dlq[0].samples.len(), 4, "12 offered, 8 queued");
        assert_eq!(snap.dlq[0].captured, 4);
        let text = serde_json::to_string(&snap).unwrap();
        let back: SupervisorSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);

        let mut resumed = tiny_specced(8);
        resumed.enable_dlq(16);
        resumed.restore(&snap).unwrap();
        let stats = resumed.dlq_stats(0).unwrap();
        assert_eq!((stats.pending, stats.captured), (4, 4));
        // The reinstated dead letters replay on the next drain: the
        // queue itself was empty (pending queue contents are never
        // checkpointed), so exactly the 4 captured samples process.
        assert_eq!(resumed.poll_shard(0).unwrap(), 4);
        assert_eq!(resumed.dlq_stats(0).unwrap().pending, 0);
    }

    #[test]
    fn v4_checkpoint_into_a_dlq_less_supervisor_is_rejected() {
        let mut donor = tiny_specced(8);
        donor.enable_dlq(16);
        for i in 0..12 {
            donor.ingest(0, 40.0 + i as f64);
        }
        let snap = donor.snapshot().unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION_DLQ);
        let mut target = tiny_specced(8);
        let before = target.report();
        assert_eq!(
            target.restore(&snap),
            Err(RestoreError::DlqMismatch { shard: 0 })
        );
        assert_eq!(target.report(), before, "failed restore leaves no trace");
    }

    #[test]
    fn v3_checkpoint_resets_dead_letter_state_on_restore() {
        let donor = small();
        let snap = donor.snapshot().unwrap();
        assert_eq!(snap.version, SNAPSHOT_VERSION, "no DLQ stays v3");
        let mut target = Supervisor::with_shards(
            SupervisorConfig {
                queue_capacity: 2,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            2,
            |_| sraa(),
        );
        target.enable_dlq(8);
        for i in 0..5 {
            target.ingest(0, i as f64);
        }
        assert!(target.dlq_stats(0).unwrap().pending > 0);
        target.restore(&snap).unwrap();
        // The checkpoint is authoritative: it predates the dead
        // letters, so they are gone.
        assert_eq!(target.dlq_totals(), DlqStats::default());
    }

    #[test]
    fn reload_rebuilds_only_drifted_shards_and_folds_the_digest() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let specs = [
            DetectorSpec::new(DetectorKind::Sraa),
            DetectorSpec::new(DetectorKind::Clta),
        ];
        let mut sup = Supervisor::with_specs(SupervisorConfig::default(), &specs).unwrap();
        for shard in 0..2 {
            for _ in 0..30 {
                sup.process_sync(shard, 5.0).unwrap();
            }
        }
        let before = sup.report();
        let mut next = specs;
        next[1] = DetectorSpec::new(DetectorKind::Cusum);
        assert_eq!(sup.reload_specs(&next).unwrap(), vec![1]);
        // The untouched shard is bit-for-bit untouched; the rebuilt one
        // keeps its counters and folds the new kind into its digest.
        let after = sup.report();
        assert_eq!(after.shards[0], before.shards[0]);
        assert_eq!(after.shards[1].processed, 30);
        let before_digest = u64::from_str_radix(&before.shards[1].digest, 16).unwrap();
        assert_eq!(
            after.shards[1].digest,
            format!("{:016x}", fnv1a(before_digest, b"CUSUM"))
        );
        assert_eq!(sup.spec(1), Some(&next[1]));
        // Topology gauges follow: the CLTA gauge drops to zero instead
        // of lingering.
        assert_eq!(after.metrics.gauges["shards_CLTA"], 0.0);
        assert_eq!(after.metrics.gauges["shards_CUSUM"], 1.0);
        assert_eq!(after.metrics.gauges["shards_SRAA"], 1.0);
        // Reloading the now-current fleet is a no-op.
        assert_eq!(sup.reload_specs(&next).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn reload_rejects_bad_fleets_without_mutating_any_shard() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let specs = [
            DetectorSpec::new(DetectorKind::Sraa),
            DetectorSpec::new(DetectorKind::Clta),
        ];
        let mut sup = Supervisor::with_specs(SupervisorConfig::default(), &specs).unwrap();
        for _ in 0..10 {
            sup.process_sync(0, 5.0).unwrap();
        }
        let before = sup.report();

        // Wrong shard count.
        assert!(matches!(
            sup.reload_specs(&specs[..1]),
            Err(ReloadError::ShardCountMismatch {
                expected: 2,
                found: 1,
            })
        ));
        // Shard 0 drifts to a *valid* spec, shard 1 to an invalid one:
        // validate-all-then-mutate means shard 0 must stay untouched.
        let mut bad = specs;
        bad[0] = DetectorSpec::new(DetectorKind::Cusum);
        bad[1].sample_size = 0;
        assert!(matches!(
            sup.reload_specs(&bad),
            Err(ReloadError::Spec { shard: 1, .. })
        ));
        assert_eq!(sup.report(), before, "failed reloads leave no trace");
        assert_eq!(sup.spec(0), Some(&specs[0]));

        // A closure-built fleet has no specs to diff against.
        let mut opaque = small();
        assert_eq!(
            opaque.reload_specs(&specs).unwrap_err(),
            ReloadError::NotFromSpecs { shard: 0 }
        );
    }

    #[test]
    fn bus_publishes_the_operational_event_stream() {
        use rejuv_core::{DetectorKind, DetectorSpec};
        let mut sup = Supervisor::with_specs(
            SupervisorConfig {
                queue_capacity: 4,
                drain_batch: 8,
                ..SupervisorConfig::default()
            },
            &[DetectorSpec::new(DetectorKind::Sraa)],
        )
        .unwrap();
        sup.enable_dlq(4);
        let bus = Arc::new(EventBus::new());
        sup.set_bus(Arc::clone(&bus));
        let sub = bus.subscribe(256);
        sup.set_checkpoint(8, Box::new(|_| Ok(())));

        // 4 queued, 4 dead-lettered, 2 overflowed.
        for i in 0..10 {
            sup.ingest(0, 60.0 + i as f64);
        }
        // Drain everything (replaying the dead letters), then push the
        // detector over its threshold so a rejuvenation fires.
        while sup.poll_shard(0).unwrap() > 0 {}
        while sup.rejuvenations(0) == 0 {
            sup.process_sync(0, 90.0).unwrap();
        }
        let events = sub.drain();
        let has = |pred: &dyn Fn(&OpEvent) -> bool| events.iter().any(pred);
        assert!(has(&|e| matches!(e, OpEvent::QueueSaturated { shard: 0 })));
        assert!(has(
            &|e| matches!(e, OpEvent::SamplesDeadLettered { shard: 0, count } if *count > 0)
        ));
        assert!(has(
            &|e| matches!(e, OpEvent::DlqOverflow { shard: 0, count } if *count > 0)
        ));
        assert!(has(
            &|e| matches!(e, OpEvent::DlqReplayed { shard: 0, count } if *count > 0)
        ));
        assert!(has(&|e| matches!(
            e,
            OpEvent::RejuvenationFired { shard: 0, .. }
        )));
        assert!(has(&|e| matches!(
            e,
            OpEvent::CheckpointWritten { total_processed } if *total_processed >= 8
        )));
        // Reload publishes the rebuild.
        let next = [DetectorSpec::new(DetectorKind::Clta)];
        sup.reload_specs(&next).unwrap();
        let events = sub.drain();
        assert!(events.iter().any(|e| matches!(
            e,
            OpEvent::ShardRebuilt { shard: 0, from, to } if from == "SRAA" && to == "CLTA"
        )));
        assert_eq!(sub.overflow(), 0);
    }
}
