//! Prometheus text exposition of the monitoring runtime.
//!
//! The end-of-run [`MonitorReport`](crate::MonitorReport) is a
//! *post-mortem* artifact; a live operator needs to watch a shard
//! saturate or a detector fire while the run is still going. This
//! module renders a **point-in-time snapshot** of the supervisor —
//! registry counters/gauges/histograms, per-shard accounting and
//! runtime gauges (queue backlog, dead-letters pending), per-kind
//! fleet rollups, and optional drain-plane telemetry — in the
//! [Prometheus text exposition format] (version `0.0.4`).
//!
//! Three properties are load-bearing and pinned by the conformance
//! suite (`tests/expo_conformance.rs`):
//!
//! 1. **Read-only capture.** [`ExpoSnapshot::capture`] takes
//!    `&Supervisor` and only calls pure accessors
//!    ([`Supervisor::report`], [`Supervisor::backlog`],
//!    [`Supervisor::dlq_stats`]). A scrape can never perturb decision
//!    digests, traces or checkpoints — reports stay byte-identical
//!    with and without a scraper attached.
//! 2. **Stable output.** Metric families render in a fixed section
//!    order; within a family, series follow shard index / sorted kind
//!    name / sorted registry name (the registry's `BTreeMap`s). Two
//!    captures of the same state render byte-identical bodies.
//! 3. **Format conformance.** Metric names are sanitised to
//!    `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values escape `\`, `"` and
//!    newline, histogram buckets are *cumulative* with a final
//!    `+Inf` bucket equal to `_count`, and every family carries
//!    `# HELP`/`# TYPE` headers. [`lint`] machine-checks all of this.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/
use crate::metrics::Histogram;
use crate::pool::PoolStats;
use crate::supervisor::{MonitorReport, Supervisor};
use std::fmt::Write as _;

/// Every exported metric name starts with this prefix.
const PREFIX: &str = "rejuv_";

/// Live per-shard gauges that exist only while the runtime is up and
/// therefore ride alongside the report instead of inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRuntime {
    /// Shard index.
    pub shard: u32,
    /// Queue depth hint (samples buffered and not yet drained).
    pub backlog: u64,
    /// Dead-letter samples captured and awaiting replay; `None` when
    /// the shard has no dead-letter queue attached.
    pub dead_letters_pending: Option<u64>,
}

/// Drain-plane telemetry (consumer pool) at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainPlane {
    /// Worker threads in the pool.
    pub consumers: u64,
    /// Whole-shard ownership transfers (work-stealing events).
    pub steals: u64,
    /// Times a worker actually went to sleep waiting for work.
    pub parks: u64,
    /// Observations drained per worker, by worker index.
    pub per_worker_drained: Vec<u64>,
}

impl From<&PoolStats> for DrainPlane {
    fn from(stats: &PoolStats) -> Self {
        DrainPlane {
            consumers: stats.consumers as u64,
            steals: stats.steals,
            parks: stats.parks,
            per_worker_drained: stats.per_thread_drains.clone(),
        }
    }
}

/// A point-in-time view of everything the exposition renders.
///
/// Captured under a single supervisor lock acquisition (callers using
/// [`SharedSupervisor`](crate::SharedSupervisor) run `capture` inside
/// one `with` closure), so all series in one scrape body describe the
/// same instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoSnapshot {
    /// The supervisor's report at capture time (pure accessor).
    pub report: MonitorReport,
    /// Live per-shard gauges, by shard index.
    pub shard_runtime: Vec<ShardRuntime>,
    /// Drain-plane telemetry, when a consumer pool is attached.
    pub drain: Option<DrainPlane>,
    /// Scrapes served by this process, including the current one
    /// (`0` for offline renders).
    pub scrapes: u64,
}

impl ExpoSnapshot {
    /// Captures the supervisor's current state. Read-only: only pure
    /// `&self` accessors are called, so capturing cannot perturb
    /// digests, traces or checkpoints.
    pub fn capture(sup: &Supervisor) -> ExpoSnapshot {
        let report = sup.report();
        let shard_runtime = (0..sup.shard_count())
            .map(|shard| ShardRuntime {
                shard: shard as u32,
                backlog: sup.backlog(shard) as u64,
                dead_letters_pending: sup.dlq_stats(shard).map(|s| s.pending as u64),
            })
            .collect();
        ExpoSnapshot {
            report,
            shard_runtime,
            drain: None,
            scrapes: 0,
        }
    }

    /// Attaches drain-plane telemetry (consumer pool stats).
    #[must_use]
    pub fn with_drain(mut self, stats: &PoolStats) -> Self {
        self.drain = Some(DrainPlane::from(stats));
        self
    }

    /// Sets the scrape serial exported as
    /// `rejuv_exposition_scrapes_total`.
    #[must_use]
    pub fn with_scrapes(mut self, scrapes: u64) -> Self {
        self.scrapes = scrapes;
        self
    }
}

/// Sanitises a metric-name fragment to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: invalid characters become `_`, and a
/// leading digit gains a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects: integral floats
/// without a fraction, infinities as `+Inf`/`-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One metric family under construction: header plus samples.
struct Family<'a> {
    out: &'a mut String,
}

/// Writes the `# HELP`/`# TYPE` header for `name` and returns a
/// sample writer. `kind` is `counter`, `gauge` or `histogram`.
fn family<'a>(out: &'a mut String, name: &str, kind: &str, help: &str) -> Family<'a> {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
    Family { out }
}

impl Family<'_> {
    /// Appends one sample line. `labels` are `(name, raw value)`
    /// pairs; values are escaped here.
    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        let _ = write!(self.out, "{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(self.out, ",");
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {value}");
    }
}

/// Renders one registry histogram as cumulative `_bucket`/`_sum`/
/// `_count` series. The registry stores *per-bucket* counts (last
/// entry = overflow past the top bound); the exposition accumulates
/// them so each `le` bucket counts everything at or below its bound,
/// ending with `+Inf` == `_count`.
fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let mut fam = family(
        out,
        name,
        "histogram",
        &format!("Registry histogram `{name}`."),
    );
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds().iter().zip(h.counts()) {
        cumulative += count;
        fam.sample(
            &format!("{name}_bucket"),
            &[("le", &fmt_value(*bound))],
            &cumulative.to_string(),
        );
    }
    fam.sample(
        &format!("{name}_bucket"),
        &[("le", "+Inf")],
        &h.count().to_string(),
    );
    fam.sample(&format!("{name}_sum"), &[], &fmt_value(h.sum()));
    fam.sample(&format!("{name}_count"), &[], &h.count().to_string());
}

/// Renders the snapshot as a Prometheus text exposition body.
///
/// Section order is fixed (self-telemetry, per-shard families,
/// per-kind rollups, drain plane, registry export); within a family,
/// series order follows shard index, sorted detector-kind name, or
/// sorted registry name. Rendering the same snapshot twice produces
/// byte-identical bodies.
pub fn render(snap: &ExpoSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let report = &snap.report;

    // Self-telemetry.
    family(
        &mut out,
        "rejuv_exposition_scrapes_total",
        "counter",
        "Scrapes served by this process, including the current one.",
    )
    .sample(
        "rejuv_exposition_scrapes_total",
        &[],
        &snap.scrapes.to_string(),
    );

    // Per-shard accounting (from the report) and live runtime gauges.
    type ShardCounter = (
        &'static str,
        &'static str,
        fn(&crate::supervisor::ShardReport) -> u64,
    );
    let shard_label = |s: &crate::supervisor::ShardReport| s.shard.to_string();
    let counters: [ShardCounter; 6] = [
        (
            "rejuv_shard_processed_total",
            "Observations fed through the shard's detector.",
            |s| s.processed,
        ),
        (
            "rejuv_shard_accepted_total",
            "Observations accepted into the shard queue over its lifetime.",
            |s| s.accepted,
        ),
        (
            "rejuv_shard_dropped_total",
            "Observations dropped to back-pressure.",
            |s| s.dropped,
        ),
        (
            "rejuv_shard_producer_waits_total",
            "Times a blocking producer parked on back-pressure.",
            |s| s.producer_waits,
        ),
        (
            "rejuv_shard_rejuvenations_total",
            "Rejuvenate decisions returned by the shard's detector.",
            |s| s.rejuvenations,
        ),
        (
            "rejuv_shard_detector_triggers_total",
            "Lifetime trigger count reported by the detector itself.",
            |s| s.detector_triggers,
        ),
    ];
    for (name, help, get) in counters {
        let mut fam = family(&mut out, name, "counter", help);
        for s in &report.shards {
            fam.sample(
                name,
                &[("shard", &shard_label(s)), ("detector", &s.detector)],
                &get(s).to_string(),
            );
        }
    }
    {
        let mut fam = family(
            &mut out,
            "rejuv_shard_backlog",
            "gauge",
            "Queue depth hint: samples buffered and not yet drained.",
        );
        for (s, rt) in report.shards.iter().zip(&snap.shard_runtime) {
            fam.sample(
                "rejuv_shard_backlog",
                &[("shard", &shard_label(s)), ("detector", &s.detector)],
                &rt.backlog.to_string(),
            );
        }
    }
    if snap
        .shard_runtime
        .iter()
        .any(|rt| rt.dead_letters_pending.is_some())
    {
        let mut fam = family(
            &mut out,
            "rejuv_shard_dead_letters_pending",
            "gauge",
            "Dead-letter samples captured and awaiting replay.",
        );
        for (s, rt) in report.shards.iter().zip(&snap.shard_runtime) {
            if let Some(pending) = rt.dead_letters_pending {
                fam.sample(
                    "rejuv_shard_dead_letters_pending",
                    &[("shard", &shard_label(s)), ("detector", &s.detector)],
                    &pending.to_string(),
                );
            }
        }
    }

    // Per-detector-kind fleet rollups (sorted by kind name already).
    {
        let mut fam = family(
            &mut out,
            "rejuv_detector_shards",
            "gauge",
            "Shards currently running this detector kind.",
        );
        for k in &report.by_detector {
            fam.sample(
                "rejuv_detector_shards",
                &[("detector", &k.detector)],
                &k.shards.to_string(),
            );
        }
    }
    {
        let mut fam = family(
            &mut out,
            "rejuv_detector_processed_total",
            "counter",
            "Observations processed by shards of this detector kind.",
        );
        for k in &report.by_detector {
            fam.sample(
                "rejuv_detector_processed_total",
                &[("detector", &k.detector)],
                &k.processed.to_string(),
            );
        }
    }
    {
        let mut fam = family(
            &mut out,
            "rejuv_detector_rejuvenations_total",
            "counter",
            "Rejuvenate decisions returned by shards of this detector kind.",
        );
        for k in &report.by_detector {
            fam.sample(
                "rejuv_detector_rejuvenations_total",
                &[("detector", &k.detector)],
                &k.rejuvenations.to_string(),
            );
        }
    }

    // Drain-plane telemetry, when a consumer pool is attached.
    if let Some(drain) = &snap.drain {
        family(
            &mut out,
            "rejuv_drain_consumers",
            "gauge",
            "Worker threads in the consumer pool.",
        )
        .sample("rejuv_drain_consumers", &[], &drain.consumers.to_string());
        family(
            &mut out,
            "rejuv_drain_steals_total",
            "counter",
            "Whole-shard ownership transfers (work-stealing events).",
        )
        .sample("rejuv_drain_steals_total", &[], &drain.steals.to_string());
        family(
            &mut out,
            "rejuv_drain_parks_total",
            "counter",
            "Times a worker went to sleep waiting for work.",
        )
        .sample("rejuv_drain_parks_total", &[], &drain.parks.to_string());
        let mut fam = family(
            &mut out,
            "rejuv_drain_worker_drained_total",
            "counter",
            "Observations drained per worker.",
        );
        for (w, drained) in drain.per_worker_drained.iter().enumerate() {
            fam.sample(
                "rejuv_drain_worker_drained_total",
                &[("worker", &w.to_string())],
                &drained.to_string(),
            );
        }
    }

    // Registry export: counters, gauges, histograms (BTreeMap order).
    for (name, value) in &report.metrics.counters {
        let metric = format!("{PREFIX}{}_total", sanitize_metric_name(name));
        family(
            &mut out,
            &metric,
            "counter",
            &format!("Registry counter `{name}`."),
        )
        .sample(&metric, &[], &value.to_string());
    }
    for (name, value) in &report.metrics.gauges {
        let metric = format!("{PREFIX}{}", sanitize_metric_name(name));
        family(
            &mut out,
            &metric,
            "gauge",
            &format!("Registry gauge `{name}`."),
        )
        .sample(&metric, &[], &fmt_value(*value));
    }
    for (name, h) in &report.metrics.histograms {
        let metric = format!("{PREFIX}{}", sanitize_metric_name(name));
        render_histogram(&mut out, &metric, h);
    }
    out
}

/// Checks whether `c` may start a metric name.
fn name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

/// Checks whether `c` may continue a metric name.
fn name_cont(c: char) -> bool {
    name_start(c) || c.is_ascii_digit()
}

/// Splits a sample line into `(series name, label block, value)`.
fn split_sample(line: &str) -> Result<(String, String, String), String> {
    let name: String = line.chars().take_while(|&c| name_cont(c)).collect();
    if name.is_empty() || !name_start(name.chars().next().unwrap()) {
        return Err(format!("invalid metric name in sample line: {line:?}"));
    }
    let rest = &line[name.len()..];
    let (labels, rest) = if let Some(stripped) = rest.strip_prefix('{') {
        let end = stripped
            .rfind('}')
            .ok_or_else(|| format!("unterminated label block: {line:?}"))?;
        (stripped[..end].to_owned(), &stripped[end + 1..])
    } else {
        (String::new(), rest)
    };
    let value = rest.trim();
    if value.is_empty() || value.contains(' ') {
        return Err(format!(
            "expected exactly one value in sample line: {line:?}"
        ));
    }
    let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !ok {
        return Err(format!("unparsable sample value {value:?} in {line:?}"));
    }
    Ok((name, labels, value.to_owned()))
}

/// Parses an `le="…"` bound out of a bucket label block.
fn le_bound(labels: &str) -> Result<f64, String> {
    let tag = "le=\"";
    let start = labels
        .find(tag)
        .ok_or_else(|| format!("bucket sample without le label: {labels:?}"))?;
    let rest = &labels[start + tag.len()..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated le label: {labels:?}"))?;
    let raw = &rest[..end];
    match raw {
        "+Inf" => Ok(f64::INFINITY),
        raw => raw
            .parse::<f64>()
            .map_err(|_| format!("unparsable le bound {raw:?}")),
    }
}

/// Lints a text exposition body against the format rules the renderer
/// promises: `# HELP`/`# TYPE` before samples, valid metric names and
/// values, contiguous families, no duplicate series, and — for
/// histograms — monotone `le` bounds, cumulative bucket counts, a
/// final `+Inf` bucket and `+Inf == _count`.
///
/// # Errors
///
/// Returns the first violation found, described with the offending
/// line.
pub fn lint(body: &str) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut closed: BTreeSet<String> = BTreeSet::new();
    let mut current: Option<String> = None;
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    // Per (histogram family, non-le labels): bucket (bound, cumulative
    // count) list, _count and _sum presence.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut sums: BTreeSet<(String, String)> = BTreeSet::new();

    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("").to_owned();
            let tail = parts.next().unwrap_or("");
            if name.is_empty() || !name.chars().all(name_cont) {
                return Err(format!("invalid name in comment line: {line:?}"));
            }
            match keyword {
                "HELP" => {
                    if tail.is_empty() {
                        return Err(format!("HELP without text: {line:?}"));
                    }
                }
                "TYPE" => {
                    if !matches!(tail, "counter" | "gauge" | "histogram") {
                        return Err(format!("unknown TYPE {tail:?}: {line:?}"));
                    }
                    if typed.insert(name.clone(), tail.to_owned()).is_some() {
                        return Err(format!("duplicate TYPE for {name}"));
                    }
                    if let Some(prev) = current.replace(name) {
                        closed.insert(prev);
                    }
                }
                other => return Err(format!("unknown comment keyword {other:?}: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("malformed comment line: {line:?}"));
        }
        let (series, labels, value) = split_sample(line)?;
        let family = match current.as_deref() {
            Some(fam) if typed.get(fam).map(String::as_str) == Some("histogram") => {
                let base = series
                    .strip_suffix("_bucket")
                    .or_else(|| series.strip_suffix("_sum"))
                    .or_else(|| series.strip_suffix("_count"))
                    .unwrap_or(&series);
                if base != fam {
                    return Err(format!(
                        "sample {series} outside its histogram family {fam}"
                    ));
                }
                fam.to_owned()
            }
            Some(fam) => {
                if series != fam {
                    return Err(format!("sample {series} under family {fam}"));
                }
                fam.to_owned()
            }
            None => return Err(format!("sample before any # TYPE header: {line:?}")),
        };
        if closed.contains(&family) {
            return Err(format!("family {family} is not contiguous"));
        }
        let key = format!("{series}{{{labels}}}");
        if !seen_series.insert(key.clone()) {
            return Err(format!("duplicate series {key}"));
        }
        if typed.get(&family).map(String::as_str) == Some("histogram") {
            let non_le: String = labels
                .split(',')
                .filter(|l| !l.starts_with("le=") && !l.is_empty())
                .collect::<Vec<_>>()
                .join(",");
            let slot = (family.clone(), non_le);
            if series.ends_with("_bucket") {
                let bound = le_bound(&labels)?;
                let count = value
                    .parse::<u64>()
                    .map_err(|_| format!("non-integral bucket count: {line:?}"))?;
                buckets.entry(slot).or_default().push((bound, count));
            } else if series.ends_with("_count") {
                let count = value
                    .parse::<u64>()
                    .map_err(|_| format!("non-integral _count: {line:?}"))?;
                counts.insert(slot, count);
            } else if series.ends_with("_sum") {
                sums.insert(slot);
            } else {
                return Err(format!("bare sample {series} in a histogram family"));
            }
        }
    }

    for (slot, series) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = 0u64;
        for (bound, count) in series {
            if *bound <= prev_bound {
                return Err(format!("le bounds not increasing in {}", slot.0));
            }
            if *count < prev_count {
                return Err(format!("bucket counts not cumulative in {}", slot.0));
            }
            prev_bound = *bound;
            prev_count = *count;
        }
        let Some((last_bound, last_count)) = series.last() else {
            continue;
        };
        if !last_bound.is_infinite() {
            return Err(format!("histogram {} lacks a +Inf bucket", slot.0));
        }
        match counts.get(slot) {
            Some(total) if total == last_count => {}
            Some(total) => {
                return Err(format!(
                    "histogram {}: +Inf bucket {last_count} != _count {total}",
                    slot.0
                ));
            }
            None => return Err(format!("histogram {} lacks _count", slot.0)),
        }
        if !sums.contains(slot) {
            return Err(format!("histogram {} lacks _sum", slot.0));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::supervisor::SupervisorConfig;
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn sraa() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    fn sample_supervisor() -> Supervisor {
        let mut sup = Supervisor::new(SupervisorConfig::default());
        sup.add_shard(sraa());
        sup.add_shard(sraa());
        sup
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );
    }

    #[test]
    fn help_escaping_keeps_quotes() {
        assert_eq!(escape_help("a\\b \"q\" c\nd"), "a\\\\b \"q\" c\\nd");
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("good_name:x9"), "good_name:x9");
        assert_eq!(sanitize_metric_name("dots.and-dashes"), "dots_and_dashes");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("spaced out"), "spaced_out");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn escaped_labels_render_and_lint() {
        let sup = sample_supervisor();
        // A hostile detector name must escape into a valid body.
        let report = {
            let mut r = sup.report();
            r.shards[0].detector = "bad\"name\\with\nnewline".to_owned();
            r
        };
        let snap = ExpoSnapshot {
            shard_runtime: (0..report.shards.len())
                .map(|i| ShardRuntime {
                    shard: i as u32,
                    backlog: 0,
                    dead_letters_pending: None,
                })
                .collect(),
            report,
            drain: None,
            scrapes: 1,
        };
        let body = render(&snap);
        assert!(body.contains("detector=\"bad\\\"name\\\\with\\nnewline\""));
        lint(&body).expect("escaped body lints clean");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_equal_to_count() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("lat.ms", &[1.0, 5.0, 25.0]);
        for v in [0.5, 0.9, 3.0, 30.0, 400.0] {
            reg.observe("lat.ms", v);
        }
        let mut sup = sample_supervisor();
        *sup.metrics_mut() = reg;
        let body = render(&ExpoSnapshot::capture(&sup));
        lint(&body).expect("body lints clean");

        let bucket_lines: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("rejuv_lat_ms_bucket"))
            .collect();
        assert_eq!(
            bucket_lines,
            vec![
                "rejuv_lat_ms_bucket{le=\"1\"} 2",
                "rejuv_lat_ms_bucket{le=\"5\"} 3",
                "rejuv_lat_ms_bucket{le=\"25\"} 3",
                "rejuv_lat_ms_bucket{le=\"+Inf\"} 5",
            ],
            "per-bucket registry counts render as cumulative le series"
        );
        assert!(body.contains("rejuv_lat_ms_count 5"));
        assert!(body.contains("rejuv_lat_ms_sum 434.4"));
    }

    #[test]
    fn rendering_is_stable_across_runs() {
        let sup = sample_supervisor();
        let a = render(&ExpoSnapshot::capture(&sup));
        let b = render(&ExpoSnapshot::capture(&sup));
        assert_eq!(a, b, "same state must render byte-identically");
        lint(&a).expect("body lints clean");
    }

    #[test]
    fn capture_is_read_only() {
        let mut sup = sample_supervisor();
        assert!(sup.ingest(0, 4.2));
        sup.poll_all().unwrap();
        let before = serde_json::to_string_pretty(&sup.report()).unwrap();
        for _ in 0..3 {
            let _ = render(&ExpoSnapshot::capture(&sup));
        }
        let after = serde_json::to_string_pretty(&sup.report()).unwrap();
        assert_eq!(before, after, "scraping must not perturb the report");
    }

    #[test]
    fn lint_rejects_malformed_bodies() {
        // Sample before TYPE.
        assert!(lint("rejuv_x_total 1\n").is_err());
        // Unknown type.
        assert!(lint("# HELP x y\n# TYPE x summary\nx 1\n").is_err());
        // Non-monotone le bounds.
        let bad = "# HELP h hist\n# TYPE h histogram\n\
                   h_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 2\n\
                   h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        assert!(lint(bad).unwrap_err().contains("not increasing"));
        // Non-cumulative bucket counts.
        let bad = "# HELP h hist\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 3\nh_bucket{le=\"5\"} 2\n\
                   h_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n";
        assert!(lint(bad).unwrap_err().contains("cumulative"));
        // +Inf bucket disagreeing with _count.
        let bad = "# HELP h hist\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 3\n";
        assert!(lint(bad).unwrap_err().contains("_count"));
        // Duplicate series.
        let bad = "# HELP g gauge\n# TYPE g gauge\ng 1\ng 2\n";
        assert!(lint(bad).unwrap_err().contains("duplicate"));
        // Split family.
        let bad = "# HELP a c\n# TYPE a counter\na 1\n\
                   # HELP b c\n# TYPE b counter\nb 1\n\
                   # TYPE a counter\n";
        assert!(lint(bad).unwrap_err().contains("duplicate TYPE"));
    }
}
