//! Bounded single-producer/single-consumer observation queues.
//!
//! Each supervisor shard owns one [`ObsQueue`]: the producer side (a
//! simulation feed, an instrumented request path) pushes raw samples,
//! the consumer side (the supervisor's drain loop) removes them in
//! batches. The queue is *bounded*: when the consumer falls behind,
//! pushes fail fast and are counted instead of blocking the producer —
//! overload degrades monitoring fidelity, never source throughput.
//!
//! Samples are `(value, at)` pairs; `at` is a simulation timestamp in
//! seconds, with `NaN` marking an untimed sample (producers that only
//! have a value). Timestamps ride along so the supervisor can build
//! inter-observation latency histograms; they never enter decision
//! digests.
//!
//! Blocking producers ([`ObsQueue::push_blocking`]) spin a bounded
//! number of times, then *park* on a condvar until the consumer frees
//! space — a stalled consumer costs a wait counter increment, not a
//! pegged core. Symmetrically, a [`WorkNotifier`] can be attached so an
//! empty→non-empty transition wakes a parked consumer thread (see
//! [`crate::consumer::ConsumerThread`]): between batches, neither side
//! burns CPU. When the drain plane exits it calls
//! [`ObsQueue::shutdown`], which wakes any still-parked producer so a
//! blocking push never sleeps forever on space that cannot free.
//!
//! Lossy pushes need not mean lost samples: attaching a
//! [`DeadLetterQueue`](crate::dlq::DeadLetterQueue) (see
//! [`crate::supervisor::Supervisor::enable_dlq`]) diverts what a full
//! queue would drop into a bounded side buffer, replayed in FIFO order
//! by the drain path once back-pressure clears.
//!
//! Three interchangeable backends implement the contract, selected by
//! [`QueueBackend`]:
//!
//! * **Mutex** — a mutex-guarded ring buffer. Batched drains amortise
//!   the lock; simple, and the reference for conformance tests.
//! * **Ring** — a lock-free Vyukov-style SPSC ring in *safe* Rust: the
//!   payload lives in per-slot atomics (`f64`s bit-packed into
//!   `AtomicU64`), so no `unsafe` cell tricks are needed. The fast path
//!   performs no lock acquisitions and no read-modify-write beyond one
//!   relaxed counter; batched pushes ([`ObsQueue::push_batch`]) publish
//!   one tail update per batch.
//! * **FanIn** — a multi-producer fan-in over per-producer SPSC lanes:
//!   each producer thread claims a private Vyukov lane (the same
//!   zero-`unsafe` bit-packed design as the ring) and stamps every
//!   sample with a global ticket; the single consumer merges lanes by
//!   popping strictly in ticket order, so the drained sequence is a
//!   deterministic total order even with many concurrent producers.
//!   Capacity is enforced globally with one CAS-bounded counter, so
//!   back-pressure accounting matches the other backends exactly.
//!
//! All backends drain in FIFO order (per producer) and account
//! identically (`accepted`/`dropped`/`waits`), so decision digests,
//! reports and replays are bitwise identical regardless of backend — a
//! property the conformance suite in `tests/proptest_queue.rs` pins
//! down.
//!
//! # Why the lock-free ring needs no `unsafe`
//!
//! The classic obstacle is publishing a non-atomic payload across
//! threads, which demands `UnsafeCell` + raw pointers. Here the payload
//! is two `f64`s: each fits an `AtomicU64` via `to_bits`/`from_bits`,
//! so every slot is `{seq: AtomicUsize, value: AtomicU64, at:
//! AtomicU64}` and plain atomic stores/loads move the data. Ordering:
//! the producer writes `value`/`at` with `Relaxed` stores, then
//! publishes the slot with a `Release` store of `seq = pos + 1`; the
//! consumer `Acquire`-loads `seq`, and on a match the release/acquire
//! edge makes the payload stores visible. Freeing runs the same
//! protocol in reverse: the consumer reads the payload, then
//! `Release`-stores `seq = pos + slots` (the free marker for the next
//! lap) and finally publishes `head` with a `Release` store; the
//! producer's `Acquire` reload of `head` (capacity check) orders every
//! consumer read before any slot reuse. Sleep/wake transitions
//! (empty→non-empty consumer wakeups, full→space producer wakeups) are
//! the one place release/acquire is not enough — both sides face the
//! store-buffering pattern ("I published, did the other side see it
//! before deciding to sleep?") — so those paths add `SeqCst` fences;
//! see `maybe_notify` / `wake_parked_producer`.

use crate::assurance::failpoints::fp;
use crate::dlq::DeadLetterQueue;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Timestamp marker for samples that carry no timestamp.
pub(crate) const UNTIMED: f64 = f64::NAN;

/// How many scheduler yields a blocking push attempts before parking on
/// the space condvar. Short stalls resolve without a park; long stalls
/// sleep instead of spinning.
const BLOCKING_SPIN_LIMIT: u32 = 64;

/// Which [`ObsQueue`] implementation a supervisor shard uses.
///
/// All backends implement the same bounded-queue contract and produce
/// bitwise-identical digests, reports and replays; they differ only in
/// how the producers and consumer synchronise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum QueueBackend {
    /// Mutex-guarded ring buffer (the default): one lock acquisition
    /// per push and per drained batch.
    #[default]
    Mutex,
    /// Lock-free Vyukov-style SPSC ring (safe Rust, bit-packed atomic
    /// slots): no locks on the fast path, condvars only for idle
    /// parking. Requires the SPSC contract — at most one thread pushing
    /// and one draining at any instant (external serialisation, e.g.
    /// the `SharedSupervisor` lock, also satisfies it).
    Ring,
    /// Multi-producer fan-in over per-producer SPSC lanes, merged
    /// deterministically at drain by per-sample ticket stamps. Producers
    /// stop contending on one mutex; the consumer side still requires
    /// external serialisation (at most one thread draining at any
    /// instant). Trades memory for lane isolation: each of its lanes is
    /// sized to the full logical capacity.
    FanIn,
}

impl QueueBackend {
    /// The CLI/config name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Mutex => "mutex",
            QueueBackend::Ring => "ring",
            QueueBackend::FanIn => "fanin",
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_lowercase().as_str() {
            "mutex" => Ok(QueueBackend::Mutex),
            "ring" => Ok(QueueBackend::Ring),
            "fanin" => Ok(QueueBackend::FanIn),
            other => Err(format!("unknown queue backend {other} (mutex|ring|fanin)")),
        }
    }
}

/// Wakes a parked consumer when any of its queues gains work.
///
/// One notifier is shared by every queue a consumer thread drains; a
/// push into an *empty* queue signals it (pushes into a non-empty queue
/// don't need to — the consumer only parks after draining every queue
/// to empty, so a pending item is never overlooked).
#[derive(Debug, Default)]
pub struct WorkNotifier {
    state: Mutex<NotifyState>,
    cv: Condvar,
    /// Times a waiter actually blocked (telemetry for "the consumer
    /// parks instead of spinning").
    parks: AtomicU64,
}

#[derive(Debug, Default)]
struct NotifyState {
    /// Work arrived since the last `wait` returned.
    pending: bool,
    /// The consumer should drain what's left and exit.
    shutdown: bool,
}

/// What woke a [`WorkNotifier::wait`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// At least one queue gained work; drain and wait again.
    Work,
    /// Shutdown was requested; drain remaining work and exit.
    Shutdown,
}

impl WorkNotifier {
    /// Creates an idle notifier.
    pub fn new() -> Self {
        WorkNotifier::default()
    }

    /// Signals that work is available, waking a parked waiter.
    pub fn notify_work(&self) {
        fp!("queue.notify-work");
        let mut state = self.state.lock().expect("notifier lock poisoned");
        state.pending = true;
        drop(state);
        self.cv.notify_all();
    }

    /// Requests shutdown, waking a parked waiter.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("notifier lock poisoned");
        state.shutdown = true;
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until work arrives or shutdown is requested. Consumes the
    /// pending-work flag; shutdown is sticky and reported only once no
    /// work signal is pending (so pre-shutdown pushes still drain).
    pub fn wait(&self) -> Wakeup {
        let mut state = self.state.lock().expect("notifier lock poisoned");
        if !state.pending && !state.shutdown {
            self.parks.fetch_add(1, Ordering::Relaxed);
            fp!("queue.wait-park");
            state = self
                .cv
                .wait_while(state, |s| !s.pending && !s.shutdown)
                .expect("notifier lock poisoned");
        }
        if state.pending {
            state.pending = false;
            Wakeup::Work
        } else {
            Wakeup::Shutdown
        }
    }

    /// Times a waiter actually went to sleep.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

/// Lifetime accounting shared by all backends. All counters are
/// updated with relaxed atomics — they are telemetry, not
/// synchronisation.
#[derive(Debug, Default)]
struct Counters {
    /// Samples accepted over the queue's lifetime.
    accepted: AtomicU64,
    /// Samples rejected because the queue was full.
    dropped: AtomicU64,
    /// Times a blocking producer had to park waiting for space.
    waits: AtomicU64,
}

/// Consumer wakeup hook shared by all backends; set once a consumer
/// thread attaches. The `attached` flag lets the ring's push fast path
/// skip the option lock entirely when no consumer thread exists.
#[derive(Debug, Default)]
struct NotifierSlot {
    hook: Mutex<Option<Arc<WorkNotifier>>>,
    attached: AtomicBool,
}

impl NotifierSlot {
    fn attach(&self, notifier: Arc<WorkNotifier>) {
        *self.hook.lock().expect("notifier slot poisoned") = Some(notifier);
        self.attached.store(true, Ordering::Release);
    }

    fn notify(&self) {
        if let Some(n) = self.hook.lock().expect("notifier slot poisoned").as_ref() {
            n.notify_work();
        }
    }
}

// ---------------------------------------------------------------------
// Mutex backend
// ---------------------------------------------------------------------

struct MutexInner {
    buf: Mutex<VecDeque<(f64, f64)>>,
    /// Producers in `push_blocking` park here when the queue is full;
    /// `drain_into` notifies after freeing space.
    space: Condvar,
    capacity: usize,
    /// Mirror of `buf.len()`, refreshed under the lock after every
    /// mutation, so `backlog_hint` can answer with one relaxed load
    /// instead of contending on the queue lock.
    occupancy: AtomicUsize,
    counters: Counters,
    notifier: NotifierSlot,
    /// Sticky shutdown flag: once set, parked producers wake and return
    /// short instead of sleeping on space that will never free (the
    /// drain plane is gone). See [`ObsQueue::shutdown`].
    shutdown: AtomicBool,
}

impl MutexInner {
    fn new(capacity: usize) -> Self {
        MutexInner {
            // Preallocate the full bound: a bounded queue will reach
            // exactly this length under back-pressure, so reserving it
            // up front trades transient memory for never reallocating
            // (and never stalling) on the hot path.
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            space: Condvar::new(),
            capacity,
            occupancy: AtomicUsize::new(0),
            counters: Counters::default(),
            notifier: NotifierSlot::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Single push attempt; does not count drops (the caller decides
    /// whether a full queue is a real drop or a blocking retry).
    fn try_push(&self, value: f64, at: f64) -> bool {
        fp!("queue.mutex.push");
        let mut buf = self.buf.lock().expect("queue lock poisoned");
        if buf.len() >= self.capacity {
            return false;
        }
        let was_empty = buf.is_empty();
        buf.push_back((value, at));
        self.occupancy.store(buf.len(), Ordering::Relaxed);
        drop(buf);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if was_empty {
            self.notifier.notify();
        }
        true
    }

    /// Moves up to `space` leading samples out of `it` under one lock
    /// acquisition; returns how many were accepted.
    fn push_batch_partial(&self, it: &mut impl Iterator<Item = (f64, f64)>, want: usize) -> usize {
        let mut buf = self.buf.lock().expect("queue lock poisoned");
        let space = self.capacity - buf.len();
        let take = want.min(space);
        if take == 0 {
            return 0;
        }
        let was_empty = buf.is_empty();
        buf.extend(it.take(take));
        self.occupancy.store(buf.len(), Ordering::Relaxed);
        drop(buf);
        self.counters
            .accepted
            .fetch_add(take as u64, Ordering::Relaxed);
        if was_empty {
            self.notifier.notify();
        }
        take
    }

    fn push_blocking(&self, value: f64, at: f64) -> bool {
        for _ in 0..BLOCKING_SPIN_LIMIT {
            if self.try_push(value, at) {
                return true;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::yield_now();
        }
        // Park until the consumer frees space (or shutdown wakes us).
        // The push happens under the same lock the wait releases, so
        // space seen is space used.
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        fp!("queue.mutex.park");
        let mut buf = self.buf.lock().expect("queue lock poisoned");
        buf = self
            .space
            .wait_while(buf, |b| {
                b.len() >= self.capacity && !self.shutdown.load(Ordering::SeqCst)
            })
            .expect("queue lock poisoned");
        if buf.len() >= self.capacity {
            return false; // woken by shutdown, still full
        }
        let was_empty = buf.is_empty();
        buf.push_back((value, at));
        self.occupancy.store(buf.len(), Ordering::Relaxed);
        drop(buf);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if was_empty {
            self.notifier.notify();
        }
        true
    }

    /// Parks until at least one slot is free (blocking batch refill).
    /// Returns `false` if the queue shut down while full instead.
    fn wait_for_space(&self) -> bool {
        for _ in 0..BLOCKING_SPIN_LIMIT {
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if self.buf.lock().expect("queue lock poisoned").len() < self.capacity {
                return true;
            }
            std::thread::yield_now();
        }
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        let buf = self.buf.lock().expect("queue lock poisoned");
        let buf = self
            .space
            .wait_while(buf, |b| {
                b.len() >= self.capacity && !self.shutdown.load(Ordering::SeqCst)
            })
            .expect("queue lock poisoned");
        buf.len() < self.capacity
    }

    /// Sets the sticky shutdown flag and wakes every parked producer.
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Take the queue lock so a producer between its predicate check
        // and its sleep cannot miss this wakeup.
        let _buf = self.buf.lock().expect("queue lock poisoned");
        self.space.notify_all();
    }

    fn drain_into(&self, out: &mut Vec<(f64, f64)>, max: usize) -> usize {
        fp!("queue.mutex.drain");
        let mut buf = self.buf.lock().expect("queue lock poisoned");
        let take = buf.len().min(max);
        out.extend(buf.drain(..take));
        self.occupancy.store(buf.len(), Ordering::Relaxed);
        drop(buf);
        if take > 0 {
            fp!("queue.mutex.unpark");
            self.space.notify_all();
        }
        take
    }

    fn len(&self) -> usize {
        self.buf.lock().expect("queue lock poisoned").len()
    }
}

// ---------------------------------------------------------------------
// Lock-free ring backend
// ---------------------------------------------------------------------

/// Pads a hot field to its own cache line so the producer- and
/// consumer-owned cursors never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// One ring slot. `seq` is the Vyukov sequence word: it equals the slot
/// position when the slot is free for that lap, position + 1 once the
/// payload is published, and advances by the slot count when freed for
/// the next lap. `value`/`at` carry the `f64` payload bit-packed, which
/// is what lets the whole ring stay in safe Rust.
#[derive(Debug)]
struct Slot {
    seq: AtomicUsize,
    value: AtomicU64,
    at: AtomicU64,
}

/// Producer-owned hot state (one cache line).
#[derive(Debug, Default)]
struct ProducerSide {
    /// Next position to write. Only the producer stores it; consumers
    /// and observers read it for `len()`.
    tail: AtomicUsize,
    /// Producer-local cache of the consumer's `head`, refreshed (with
    /// `Acquire`) only when the ring looks full — the Lamport trick
    /// that keeps steady-state pushes from touching the consumer's
    /// cache line at all.
    head_cache: AtomicUsize,
}

struct RingInner {
    slots: Box<[Slot]>,
    /// `slots.len() - 1`; the slot count is a power of two so `pos &
    /// mask` indexes correctly even across position wrap-around.
    mask: usize,
    /// The logical bound. May be below the physical slot count (which
    /// is rounded up to a power of two); fullness is enforced against
    /// this, so both backends drop at exactly the same occupancy.
    capacity: usize,
    prod: CacheLine<ProducerSide>,
    /// Next position to read; only the consumer stores it.
    head: CacheLine<AtomicUsize>,
    /// Blocking producers park here when the ring is full; guards no
    /// data, only the sleep/wake handshake.
    space_lock: Mutex<()>,
    space: Condvar,
    /// Set (SeqCst) by a producer about to park; checked by the
    /// consumer after freeing space. See `wake_parked_producer`.
    producer_parked: AtomicBool,
    /// Sticky shutdown flag; see [`ObsQueue::shutdown`].
    shutdown: AtomicBool,
    counters: Counters,
    notifier: NotifierSlot,
}

impl RingInner {
    fn new(capacity: usize) -> Self {
        let slot_count = capacity.next_power_of_two();
        let slots: Box<[Slot]> = (0..slot_count)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: AtomicU64::new(0),
                at: AtomicU64::new(0),
            })
            .collect();
        RingInner {
            slots,
            mask: slot_count - 1,
            capacity,
            prod: CacheLine(ProducerSide::default()),
            head: CacheLine(AtomicUsize::new(0)),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
            producer_parked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            notifier: NotifierSlot::default(),
        }
    }

    /// How many of the `want` samples the producer may write at `pos`
    /// right now. Answers from the cached head whenever it already
    /// proves enough room, and only then reloads the consumer's `head`
    /// (with `Acquire`, which also orders the consumer's slot reads
    /// before any reuse) — the Lamport trick that keeps steady-state
    /// pushes off the consumer's cache line. Refreshing whenever the
    /// cached view is merely *insufficient* (not just full) matters for
    /// conformance: a stale cache must never make the ring drop samples
    /// the mutex backend would accept.
    fn space_for(&self, pos: usize, want: usize) -> usize {
        let cached = self.prod.0.head_cache.load(Ordering::Relaxed);
        let space = self
            .capacity
            .saturating_sub(pos.wrapping_sub(cached).min(self.capacity));
        if space >= want {
            return space;
        }
        let head = self.head.0.load(Ordering::Acquire);
        self.prod.0.head_cache.store(head, Ordering::Relaxed);
        self.capacity - pos.wrapping_sub(head).min(self.capacity)
    }

    /// Writes one slot's payload and publishes it. The caller has
    /// already established the slot is free via `space_for`.
    fn write_slot(&self, pos: usize, value: f64, at: f64) {
        let slot = &self.slots[pos & self.mask];
        debug_assert_eq!(
            slot.seq.load(Ordering::Acquire),
            pos,
            "SPSC contract violated: slot not free for this lap"
        );
        slot.value.store(value.to_bits(), Ordering::Relaxed);
        slot.at.store(at.to_bits(), Ordering::Relaxed);
        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
    }

    /// Single push attempt; does not count drops.
    fn try_push(&self, value: f64, at: f64) -> bool {
        fp!("queue.ring.push");
        let pos = self.prod.0.tail.load(Ordering::Relaxed);
        if self.space_for(pos, 1) == 0 {
            return false;
        }
        self.write_slot(pos, value, at);
        self.prod
            .0
            .tail
            .store(pos.wrapping_add(1), Ordering::Release);
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.maybe_notify(pos, 1);
        true
    }

    /// Moves up to `want` leading samples out of `it`, publishing one
    /// tail update (and at most one wakeup check) for the whole batch;
    /// returns how many were accepted.
    fn push_batch_partial(&self, it: &mut impl Iterator<Item = (f64, f64)>, want: usize) -> usize {
        let pos = self.prod.0.tail.load(Ordering::Relaxed);
        let take = want.min(self.space_for(pos, want));
        if take == 0 {
            return 0;
        }
        for (i, (value, at)) in it.take(take).enumerate() {
            self.write_slot(pos.wrapping_add(i), value, at);
        }
        self.prod
            .0
            .tail
            .store(pos.wrapping_add(take), Ordering::Release);
        self.counters
            .accepted
            .fetch_add(take as u64, Ordering::Relaxed);
        self.maybe_notify(pos, take);
        take
    }

    /// Wakes an attached consumer if it may have parked on "empty"
    /// anywhere inside the batch just published at `[start, start+n)`.
    ///
    /// This is the store-buffering corner: the producer published slot
    /// sequences, the consumer published `head` before deciding the
    /// ring was empty, and each must see the other's store. Release/
    /// acquire alone permits *both* reads to miss, losing the wakeup
    /// forever; a `SeqCst` fence on each side (the consumer's sits at
    /// the top of `drain_into`) forbids that outcome — at least one
    /// side wins, so either the consumer sees the data (no park) or the
    /// producer sees the caught-up head (and notifies).
    fn maybe_notify(&self, start: usize, n: usize) {
        if !self.notifier.attached.load(Ordering::Relaxed) {
            return;
        }
        fence(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::Relaxed);
        // head ∈ [start, start+n] means the consumer caught up inside
        // (or exactly at) this batch and may be parked; further behind
        // means older published items were already covered by their own
        // pushes' checks.
        if head.wrapping_sub(start) <= n {
            self.notifier.notify();
        }
    }

    fn push_blocking(&self, value: f64, at: f64) -> bool {
        loop {
            for _ in 0..BLOCKING_SPIN_LIMIT {
                if self.try_push(value, at) {
                    return true;
                }
                std::thread::yield_now();
            }
            if !self.park_until_space() {
                return false; // shut down while full
            }
            // SPSC: nothing but this thread pushes, so the freed slot
            // the park observed is still free.
            let pushed = self.try_push(value, at);
            debug_assert!(pushed, "space observed under the park handshake vanished");
            if pushed {
                return true;
            }
            // Defensive fallback for contract misuse: never lose the
            // sample a blocking push promised to deliver.
        }
    }

    /// Parks until at least one slot is free, counting the wait. Uses
    /// the `producer_parked` flag + `SeqCst` handshake mirroring
    /// `maybe_notify` (the consumer's side is `wake_parked_producer`).
    /// Returns `false` if the queue shut down while full instead.
    fn park_until_space(&self) -> bool {
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        fp!("queue.ring.park");
        let mut guard = self.space_lock.lock().expect("park lock poisoned");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.producer_parked.store(false, Ordering::Relaxed);
                return false;
            }
            self.producer_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let pos = self.prod.0.tail.load(Ordering::Relaxed);
            if self.space_for(pos, 1) > 0 {
                self.producer_parked.store(false, Ordering::Relaxed);
                return true;
            }
            guard = self.space.wait(guard).expect("park lock poisoned");
        }
    }

    /// Parks until space is available for a blocking batch refill
    /// (spin first, mirroring `push_blocking`). Returns `false` if the
    /// queue shut down while full instead.
    fn wait_for_space(&self) -> bool {
        for _ in 0..BLOCKING_SPIN_LIMIT {
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            let pos = self.prod.0.tail.load(Ordering::Relaxed);
            if self.space_for(pos, 1) > 0 {
                return true;
            }
            std::thread::yield_now();
        }
        self.park_until_space()
    }

    /// Sets the sticky shutdown flag and wakes a parked producer. The
    /// notify happens under the park lock, so a producer between its
    /// re-check and its sleep cannot miss it.
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _guard = self.space_lock.lock().expect("park lock poisoned");
        self.space.notify_all();
    }

    fn drain_into(&self, out: &mut Vec<(f64, f64)>, max: usize) -> usize {
        fp!("queue.ring.drain");
        // Pairs with the producer-side fence in `maybe_notify`: after
        // the consumer publishes head (possibly deciding "empty" next
        // call), this fence guarantees it cannot also miss a slot the
        // producer published before checking head. See `maybe_notify`.
        fence(Ordering::SeqCst);
        let start = self.head.0.load(Ordering::Relaxed);
        let slot_count = self.mask + 1;
        let mut pos = start;
        let mut taken = 0;
        while taken < max {
            let slot = &self.slots[pos & self.mask];
            if slot.seq.load(Ordering::Acquire) != pos.wrapping_add(1) {
                break; // contiguous run exhausted
            }
            let value = f64::from_bits(slot.value.load(Ordering::Relaxed));
            let at = f64::from_bits(slot.at.load(Ordering::Relaxed));
            out.push((value, at));
            // Free the slot for the next lap.
            slot.seq
                .store(pos.wrapping_add(slot_count), Ordering::Release);
            pos = pos.wrapping_add(1);
            taken += 1;
        }
        if taken > 0 {
            self.head.0.store(pos, Ordering::Release);
            self.wake_parked_producer();
        }
        taken
    }

    /// Wakes a producer parked on back-pressure, if any. The `SeqCst`
    /// fence closes the same store-buffering window as `maybe_notify`,
    /// with the roles swapped: the consumer published `head` (space),
    /// the producer published `producer_parked`; at least one side must
    /// observe the other, so either the producer's re-check finds space
    /// or this check finds the flag and notifies under the park lock.
    fn wake_parked_producer(&self) {
        fp!("queue.ring.unpark");
        fence(Ordering::SeqCst);
        if self.producer_parked.load(Ordering::Relaxed) {
            let _guard = self.space_lock.lock().expect("park lock poisoned");
            self.producer_parked.store(false, Ordering::Relaxed);
            self.space.notify_all();
        }
    }

    /// Pending samples right now (exact when quiescent, a snapshot
    /// under concurrency).
    fn len(&self) -> usize {
        let tail = self.prod.0.tail.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(self.capacity)
    }
}

// ---------------------------------------------------------------------
// Fan-in backend
// ---------------------------------------------------------------------

/// Lanes per fan-in queue. The first `FANIN_LANES - 1` producer threads
/// each claim a private SPSC lane; any later thread falls back to the
/// last lane, shared under a mutex (correct, just slower). The lane
/// count bounds memory, not how many producers the queue supports.
const FANIN_LANES: usize = 8;

/// Source of unique fan-in queue ids for the thread-local lane cache.
static FANIN_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Which lane this thread claimed in each fan-in queue it has
    /// pushed into, keyed by queue id. Thread-local so the per-push
    /// lane lookup never synchronises with other producers.
    static CLAIMED_LANES: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

/// One fan-in lane slot: the Vyukov `seq` protocol of [`Slot`] plus the
/// global ticket that orders the sample across lanes.
#[derive(Debug)]
struct FanSlot {
    seq: AtomicUsize,
    value: AtomicU64,
    at: AtomicU64,
    ticket: AtomicU64,
}

/// One per-producer SPSC lane. `tail` is written only by the lane's
/// producer (or under the shared-lane lock); `head` only by the single
/// consumer. Capacity is *not* enforced per lane — the global `pending`
/// counter bounds total occupancy, and each lane is sized to hold the
/// full logical capacity, so a reservation always has a free slot in
/// whichever lane its producer owns.
#[derive(Debug)]
struct Lane {
    slots: Box<[FanSlot]>,
    mask: usize,
    tail: CacheLine<AtomicUsize>,
    head: CacheLine<AtomicUsize>,
}

struct FanInInner {
    /// Key for the thread-local lane cache.
    id: u64,
    lanes: Box<[Lane]>,
    /// The logical bound, enforced globally across all lanes by
    /// `pending` so back-pressure accounting matches the other
    /// backends exactly.
    capacity: usize,
    /// Samples reserved but not yet consumed, across all lanes. A push
    /// reserves with a CAS bounded by `capacity` (`Acquire` on success,
    /// pairing with the consumer's `Release` decrement so every slot
    /// freed before the decrement is visible before reuse); the
    /// consumer decrements once per pop, *after* freeing the slot.
    pending: AtomicUsize,
    /// Next global ticket to hand out. Tickets totally order samples
    /// across lanes; the consumer pops strictly in ticket order, so the
    /// drained sequence is deterministic given the reservation order.
    tickets: AtomicU64,
    /// Next ticket the consumer will pop. Consumer-owned; producers
    /// read it (after a `SeqCst` fence) to decide whether the consumer
    /// may be parked waiting for the batch just published.
    next_ticket: AtomicU64,
    /// Consumer-owned hint: the lane that yielded the last pop.
    /// Contiguous ticket blocks come from one lane, so starting the
    /// next scan there makes the common case O(1), not O(lanes).
    last_lane: AtomicUsize,
    /// How many exclusive lanes have been handed out.
    claimed: AtomicUsize,
    /// Serialises producers that overflow into the shared last lane:
    /// ticket grab and slot write must happen together under it, or
    /// tickets could invert within the lane and deadlock the
    /// ticket-ordered drain.
    shared_lock: Mutex<()>,
    /// Blocking producers park here when the queue is full.
    space_lock: Mutex<()>,
    space: Condvar,
    /// Set (`SeqCst`) by a producer about to park; cleared only by the
    /// waking consumer — with multiple producers, a peer observing
    /// space must not clear a flag another parked producer relies on.
    producer_parked: AtomicBool,
    /// Sticky shutdown flag; see [`ObsQueue::shutdown`].
    shutdown: AtomicBool,
    counters: Counters,
    notifier: NotifierSlot,
}

impl FanInInner {
    fn new(capacity: usize) -> Self {
        let slot_count = capacity.next_power_of_two();
        let lanes: Box<[Lane]> = (0..FANIN_LANES)
            .map(|_| Lane {
                slots: (0..slot_count)
                    .map(|i| FanSlot {
                        seq: AtomicUsize::new(i),
                        value: AtomicU64::new(0),
                        at: AtomicU64::new(0),
                        ticket: AtomicU64::new(0),
                    })
                    .collect(),
                mask: slot_count - 1,
                tail: CacheLine(AtomicUsize::new(0)),
                head: CacheLine(AtomicUsize::new(0)),
            })
            .collect();
        FanInInner {
            id: FANIN_IDS.fetch_add(1, Ordering::Relaxed),
            lanes,
            capacity,
            pending: AtomicUsize::new(0),
            tickets: AtomicU64::new(0),
            next_ticket: AtomicU64::new(0),
            last_lane: AtomicUsize::new(0),
            claimed: AtomicUsize::new(0),
            shared_lock: Mutex::new(()),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
            producer_parked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            notifier: NotifierSlot::default(),
        }
    }

    /// The lane this thread pushes into, claiming one on first use.
    fn lane_for_thread(&self) -> usize {
        CLAIMED_LANES.with(|map| {
            *map.borrow_mut().entry(self.id).or_insert_with(|| {
                self.claimed
                    .fetch_add(1, Ordering::Relaxed)
                    .min(FANIN_LANES - 1)
            })
        })
    }

    /// Reserves up to `want` of the global capacity; returns how many
    /// slots were secured (0 when full).
    fn reserve(&self, want: usize) -> usize {
        let mut cur = self.pending.load(Ordering::Relaxed);
        loop {
            let take = want.min(self.capacity - cur.min(self.capacity));
            if take == 0 {
                return 0;
            }
            match self.pending.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Writes `take` already-reserved samples into this thread's lane,
    /// stamping each with a global ticket, then runs the wakeup check.
    /// For the shared overflow lane, the ticket grab and the slot
    /// writes happen together under the lane lock so tickets stay
    /// ascending within the lane — the invariant the ticket-ordered
    /// drain relies on to never wait for a sample behind a later one.
    fn publish(&self, it: &mut impl Iterator<Item = (f64, f64)>, take: usize) {
        fp!("queue.fanin.publish");
        let lane_idx = self.lane_for_thread();
        let guard = if lane_idx == FANIN_LANES - 1 {
            Some(self.shared_lock.lock().expect("shared lane lock poisoned"))
        } else {
            None
        };
        let lane = &self.lanes[lane_idx];
        let first = self.tickets.fetch_add(take as u64, Ordering::Relaxed);
        let pos = lane.tail.0.load(Ordering::Relaxed);
        for (i, (value, at)) in it.take(take).enumerate() {
            let slot = &lane.slots[pos.wrapping_add(i) & lane.mask];
            debug_assert_eq!(
                slot.seq.load(Ordering::Acquire),
                pos.wrapping_add(i),
                "fan-in lane slot reused before the consumer freed it"
            );
            slot.value.store(value.to_bits(), Ordering::Relaxed);
            slot.at.store(at.to_bits(), Ordering::Relaxed);
            slot.ticket.store(first + i as u64, Ordering::Relaxed);
            slot.seq
                .store(pos.wrapping_add(i).wrapping_add(1), Ordering::Release);
        }
        lane.tail.0.store(pos.wrapping_add(take), Ordering::Relaxed);
        drop(guard);
        self.counters
            .accepted
            .fetch_add(take as u64, Ordering::Relaxed);
        self.maybe_notify(first, take as u64);
    }

    /// Wakes an attached consumer that may have parked while the batch
    /// ticketed `[first, first + n)` was in flight. Same
    /// store-buffering closure as the ring's `maybe_notify`, with the
    /// consumer's published cursor being `next_ticket` instead of
    /// `head`: the producer publishes its slots then fences; the
    /// consumer stores `next_ticket`, fences and rescans before giving
    /// up (see `drain_into`); at least one side must see the other, so
    /// either the rescan finds the sample or this check finds the
    /// consumer waiting inside the window and notifies. A waiting
    /// ticket below `first` is covered by *its* publisher's check — the
    /// same induction the ring uses over earlier pushes.
    fn maybe_notify(&self, first: u64, n: u64) {
        if !self.notifier.attached.load(Ordering::Relaxed) {
            return;
        }
        fence(Ordering::SeqCst);
        let next = self.next_ticket.load(Ordering::Relaxed);
        if next.wrapping_sub(first) <= n {
            self.notifier.notify();
        }
    }

    /// Single push attempt; does not count drops.
    fn try_push(&self, value: f64, at: f64) -> bool {
        if self.reserve(1) == 0 {
            return false;
        }
        self.publish(&mut std::iter::once((value, at)), 1);
        true
    }

    /// Moves up to `want` leading samples out of `it`; returns how many
    /// were accepted.
    fn push_batch_partial(&self, it: &mut impl Iterator<Item = (f64, f64)>, want: usize) -> usize {
        let take = self.reserve(want);
        if take == 0 {
            return 0;
        }
        self.publish(it, take);
        take
    }

    fn push_blocking(&self, value: f64, at: f64) -> bool {
        loop {
            for _ in 0..BLOCKING_SPIN_LIMIT {
                if self.try_push(value, at) {
                    return true;
                }
                std::thread::yield_now();
            }
            // Unlike the SPSC ring, space observed under the park
            // handshake may be claimed by a peer producer first — so
            // re-attempt the push and re-park if it is gone again.
            if !self.park_until_space() {
                return false; // shut down while full
            }
        }
    }

    /// Parks until the queue is below capacity, counting the wait. The
    /// `SeqCst` handshake mirrors the ring's, but the flag is *sticky*:
    /// only the waking consumer clears it, because with several
    /// producers one observing space must not un-flag peers still
    /// parked behind it.
    fn park_until_space(&self) -> bool {
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        fp!("queue.fanin.park");
        let mut guard = self.space_lock.lock().expect("park lock poisoned");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            self.producer_parked.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if self.pending.load(Ordering::Relaxed) < self.capacity {
                return true;
            }
            guard = self.space.wait(guard).expect("park lock poisoned");
        }
    }

    /// Parks until space is available for a blocking batch refill
    /// (spin first, mirroring `push_blocking`). Returns `false` if the
    /// queue shut down while full instead.
    fn wait_for_space(&self) -> bool {
        for _ in 0..BLOCKING_SPIN_LIMIT {
            if self.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            if self.pending.load(Ordering::Relaxed) < self.capacity {
                return true;
            }
            std::thread::yield_now();
        }
        self.park_until_space()
    }

    /// Sets the sticky shutdown flag and wakes every parked producer
    /// (notify under the park lock so no producer can miss it between
    /// its re-check and its sleep).
    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _guard = self.space_lock.lock().expect("park lock poisoned");
        self.space.notify_all();
    }

    /// Pops the sample ticketed `next` if some lane has published it at
    /// its head, appending it to `out`; returns the lane it came from.
    /// Scans from `hint` because consecutive tickets usually come from
    /// the same lane (one producer's contiguous block).
    fn pop_ticket(&self, next: u64, hint: usize, out: &mut Vec<(f64, f64)>) -> Option<usize> {
        for probe in 0..FANIN_LANES {
            let lane_idx = (hint + probe) % FANIN_LANES;
            let lane = &self.lanes[lane_idx];
            let head = lane.head.0.load(Ordering::Relaxed);
            let slot = &lane.slots[head & lane.mask];
            if slot.seq.load(Ordering::Acquire) != head.wrapping_add(1) {
                continue; // lane empty, or its head not yet published
            }
            if slot.ticket.load(Ordering::Relaxed) != next {
                continue; // published, but a later ticket: not its turn
            }
            let value = f64::from_bits(slot.value.load(Ordering::Relaxed));
            let at = f64::from_bits(slot.at.load(Ordering::Relaxed));
            out.push((value, at));
            // Free the slot for the lane's next lap.
            slot.seq
                .store(head.wrapping_add(lane.mask + 1), Ordering::Release);
            lane.head.0.store(head.wrapping_add(1), Ordering::Relaxed);
            return Some(lane_idx);
        }
        None
    }

    fn drain_into(&self, out: &mut Vec<(f64, f64)>, max: usize) -> usize {
        fp!("queue.fanin.drain");
        // Pairs with the producer-side fences in `maybe_notify`.
        fence(Ordering::SeqCst);
        let mut next = self.next_ticket.load(Ordering::Relaxed);
        let mut hint = self.last_lane.load(Ordering::Relaxed);
        let mut taken = 0;
        while taken < max {
            let popped = match self.pop_ticket(next, hint, out) {
                Some(lane) => Some(lane),
                None => {
                    // Head-of-line ticket not visible. Before giving up
                    // (the caller may park on a WorkNotifier), close
                    // the store-buffering window: fence and rescan once
                    // — the producer side is `maybe_notify`.
                    fence(Ordering::SeqCst);
                    self.pop_ticket(next, hint, out)
                }
            };
            let Some(lane) = popped else { break };
            hint = lane;
            next = next.wrapping_add(1);
            // `SeqCst` so a producer's post-publish window check and
            // this cursor publication cannot both miss each other.
            self.next_ticket.store(next, Ordering::SeqCst);
            // After the slot is freed: the producer's reserve-CAS
            // (`Acquire`) sees this decrement only after the free.
            self.pending.fetch_sub(1, Ordering::Release);
            taken += 1;
        }
        if taken > 0 {
            self.last_lane.store(hint, Ordering::Relaxed);
            self.wake_parked_producer();
        }
        taken
    }

    /// Wakes producers parked on back-pressure, if any; same `SeqCst`
    /// closure as the ring's, except the flag is cleared here only.
    fn wake_parked_producer(&self) {
        fp!("queue.fanin.unpark");
        fence(Ordering::SeqCst);
        if self.producer_parked.load(Ordering::Relaxed) {
            let _guard = self.space_lock.lock().expect("park lock poisoned");
            self.producer_parked.store(false, Ordering::Relaxed);
            self.space.notify_all();
        }
    }

    /// Samples reserved and not yet consumed (exact when quiescent; a
    /// reservation whose payload is still being written counts too).
    fn len(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Inner {
    Mutex(Arc<MutexInner>),
    Ring(Arc<RingInner>),
    FanIn(Arc<FanInInner>),
}

/// A bounded queue of observations, cheaply cloneable into producer and
/// consumer handles (clones share the same buffer and counters).
///
/// Construct with [`ObsQueue::bounded`] (mutex backend) or
/// [`ObsQueue::with_backend`]. The [`QueueBackend::Ring`] flavour
/// requires the SPSC contract: at most one thread pushing and one
/// draining at any instant (handing either role between threads through
/// a lock or join is fine). Misuse cannot corrupt memory — everything
/// is safe Rust — but concurrent producers may overwrite each other's
/// samples.
#[derive(Clone)]
pub struct ObsQueue {
    inner: Inner,
    /// Optional dead-letter queue, shared by every clone (set once,
    /// read with one atomic load on the push path). While attached,
    /// lossy pushes capture instead of dropping; see [`crate::dlq`].
    dlq: Arc<OnceLock<Arc<DeadLetterQueue>>>,
}

impl std::fmt::Debug for ObsQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsQueue")
            .field("backend", &self.backend())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("accepted", &self.accepted())
            .field("dropped", &self.dropped())
            .field("waits", &self.waits())
            .finish()
    }
}

impl ObsQueue {
    /// Creates a mutex-backed queue holding at most `capacity` pending
    /// observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        ObsQueue::with_backend(capacity, QueueBackend::Mutex)
    }

    /// Creates a queue on the chosen [`QueueBackend`] holding at most
    /// `capacity` pending observations. The ring backend rounds its
    /// *physical* slot count up to the next power of two but enforces
    /// the logical `capacity` exactly, so back-pressure behaviour is
    /// identical across backends.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_backend(capacity: usize, backend: QueueBackend) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let inner = match backend {
            QueueBackend::Mutex => Inner::Mutex(Arc::new(MutexInner::new(capacity))),
            QueueBackend::Ring => Inner::Ring(Arc::new(RingInner::new(capacity))),
            QueueBackend::FanIn => Inner::FanIn(Arc::new(FanInInner::new(capacity))),
        };
        ObsQueue {
            inner,
            dlq: Arc::new(OnceLock::new()),
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.inner {
            Inner::Mutex(_) => QueueBackend::Mutex,
            Inner::Ring(_) => QueueBackend::Ring,
            Inner::FanIn(_) => QueueBackend::FanIn,
        }
    }

    fn counters(&self) -> &Counters {
        match &self.inner {
            Inner::Mutex(q) => &q.counters,
            Inner::Ring(q) => &q.counters,
            Inner::FanIn(q) => &q.counters,
        }
    }

    /// Attaches a consumer wakeup hook: pushes that make the queue
    /// non-empty will signal it. Replaces any previous notifier.
    pub fn attach_notifier(&self, notifier: Arc<WorkNotifier>) {
        match &self.inner {
            Inner::Mutex(q) => q.notifier.attach(notifier),
            Inner::Ring(q) => q.notifier.attach(notifier),
            Inner::FanIn(q) => q.notifier.attach(notifier),
        }
    }

    /// Offers one untimed observation; returns `false` (and counts a
    /// drop) if the queue is full. With a dead-letter queue attached,
    /// the sample is captured there instead and `false` means DLQ
    /// overflow — the only remaining (and counted) loss.
    pub fn push(&self, value: f64) -> bool {
        self.push_at(value, UNTIMED)
    }

    /// Offers one observation stamped at `at` seconds of simulation
    /// time; returns `false` (and counts a drop) if the queue is full.
    /// See [`ObsQueue::push`] for the dead-letter behaviour.
    pub fn push_at(&self, value: f64, at: f64) -> bool {
        if let Some(dlq) = self.dlq.get() {
            // While samples are pending in the DLQ, new lossy pushes
            // must queue *behind* them: the logical stream is always
            // `main queue ++ DLQ`, which is what keeps replayed runs
            // in per-producer FIFO order (and digests deterministic).
            if dlq.pending() > 0 {
                return dlq.capture_one(value, at);
            }
        }
        let accepted = match &self.inner {
            Inner::Mutex(q) => q.try_push(value, at),
            Inner::Ring(q) => q.try_push(value, at),
            Inner::FanIn(q) => q.try_push(value, at),
        };
        if accepted {
            return true;
        }
        if let Some(dlq) = self.dlq.get() {
            return dlq.capture_one(value, at);
        }
        self.counters().dropped.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Offers a batch of `(value, at)` samples, accepting a leading
    /// prefix bounded by the free space; returns how many were
    /// accepted. The rest are counted as drops — unless a dead-letter
    /// queue is attached, in which case they are captured there (then
    /// the return value counts queued *plus* captured samples, and the
    /// shortfall is DLQ overflow). One lock acquisition (mutex) or one
    /// tail publish (ring) covers the whole accepted prefix — the
    /// batched-producer fast path.
    pub fn push_batch<I>(&self, samples: I) -> usize
    where
        I: IntoIterator<Item = (f64, f64)>,
        I::IntoIter: ExactSizeIterator,
    {
        let mut it = samples.into_iter();
        let want = it.len();
        if let Some(dlq) = self.dlq.get() {
            // FIFO invariant: pending dead letters go first. See
            // `push_at`.
            if dlq.pending() > 0 {
                return dlq.capture_iter(&mut it, want);
            }
        }
        let took = match &self.inner {
            Inner::Mutex(q) => q.push_batch_partial(&mut it, want),
            Inner::Ring(q) => q.push_batch_partial(&mut it, want),
            Inner::FanIn(q) => q.push_batch_partial(&mut it, want),
        };
        if took < want {
            if let Some(dlq) = self.dlq.get() {
                return took + dlq.capture_iter(&mut it, want - took);
            }
            self.counters()
                .dropped
                .fetch_add((want - took) as u64, Ordering::Relaxed);
        }
        took
    }

    /// Pushes a batch losslessly: accepts as much as fits, then spins
    /// briefly and parks until the consumer frees space, repeating
    /// until every sample is enqueued — or until [`ObsQueue::shutdown`]
    /// wakes the park, at which point it stops short. Returns how many
    /// samples were enqueued (short of the batch length only on
    /// shutdown). Parks are counted in [`ObsQueue::waits`].
    pub fn push_batch_blocking<I>(&self, samples: I) -> usize
    where
        I: IntoIterator<Item = (f64, f64)>,
        I::IntoIter: ExactSizeIterator,
    {
        let mut it = samples.into_iter();
        let want = it.len();
        let mut pushed = 0;
        while pushed < want {
            let took = match &self.inner {
                Inner::Mutex(q) => q.push_batch_partial(&mut it, want - pushed),
                Inner::Ring(q) => q.push_batch_partial(&mut it, want - pushed),
                Inner::FanIn(q) => q.push_batch_partial(&mut it, want - pushed),
            };
            pushed += took;
            if pushed < want {
                let space = match &self.inner {
                    Inner::Mutex(q) => q.wait_for_space(),
                    Inner::Ring(q) => q.wait_for_space(),
                    Inner::FanIn(q) => q.wait_for_space(),
                };
                if !space {
                    break; // shut down while full: nothing will drain
                }
            }
        }
        pushed
    }

    /// Pushes an untimed observation, waiting until space frees up. For
    /// producers that must not lose samples, e.g. the throughput bench's
    /// load generators. Returns `false` only if the queue was shut down
    /// while full (the sample was not enqueued).
    pub fn push_blocking(&self, value: f64) -> bool {
        self.push_blocking_at(value, UNTIMED)
    }

    /// Pushes a timestamped observation, waiting until space frees up.
    ///
    /// Spins (with scheduler yields) a bounded number of times, then
    /// parks until the consumer drains — a stalled consumer never costs
    /// a pegged producer core. Parks are counted in [`ObsQueue::waits`].
    /// Returns `false` only if the queue was shut down while full.
    pub fn push_blocking_at(&self, value: f64, at: f64) -> bool {
        match &self.inner {
            Inner::Mutex(q) => q.push_blocking(value, at),
            Inner::Ring(q) => q.push_blocking(value, at),
            Inner::FanIn(q) => q.push_blocking(value, at),
        }
    }

    /// Marks the queue shut down and wakes every parked producer: the
    /// drain plane is gone, so space will never free and a blocking
    /// push sleeping on it would hang forever. Blocking pushes observe
    /// the flag and return short instead. Sticky until
    /// [`ObsQueue::clear_shutdown`] (the consumer pool clears it on
    /// spawn so drain planes can run back to back on one supervisor);
    /// non-blocking pushes and drains are unaffected.
    pub fn shutdown(&self) {
        match &self.inner {
            Inner::Mutex(q) => q.shutdown(),
            Inner::Ring(q) => q.shutdown(),
            Inner::FanIn(q) => q.shutdown(),
        }
    }

    /// Whether [`ObsQueue::shutdown`] has been called (and not cleared).
    pub fn is_shutdown(&self) -> bool {
        match &self.inner {
            Inner::Mutex(q) => q.shutdown.load(Ordering::SeqCst),
            Inner::Ring(q) => q.shutdown.load(Ordering::SeqCst),
            Inner::FanIn(q) => q.shutdown.load(Ordering::SeqCst),
        }
    }

    /// Clears the sticky shutdown flag so blocking pushes park again.
    pub(crate) fn clear_shutdown(&self) {
        match &self.inner {
            Inner::Mutex(q) => q.shutdown.store(false, Ordering::SeqCst),
            Inner::Ring(q) => q.shutdown.store(false, Ordering::SeqCst),
            Inner::FanIn(q) => q.shutdown.store(false, Ordering::SeqCst),
        }
    }

    /// The attached dead-letter queue, if any.
    pub fn dlq(&self) -> Option<&Arc<DeadLetterQueue>> {
        self.dlq.get()
    }

    /// Attaches a dead-letter queue: lossy pushes that find the queue
    /// full capture their samples there instead of dropping them. The
    /// attachment is shared by every clone of this queue — including
    /// clones made before the call. At most one DLQ per queue.
    ///
    /// # Panics
    ///
    /// If a DLQ is already attached.
    pub(crate) fn attach_dlq(&self, dlq: Arc<DeadLetterQueue>) {
        assert!(
            self.dlq.set(dlq).is_ok(),
            "dead-letter queue already attached"
        );
    }

    /// Re-ingests pending dead-lettered samples into the main queue
    /// (oldest first), bounded by the queue's free space; returns how
    /// many were moved. The drain path calls this before every drain,
    /// so replayed samples re-enter at drain-batch boundaries in
    /// capture order — the ordering the decision digests are defined
    /// over. No-op without a DLQ or with nothing pending.
    ///
    /// Single-consumer note: this pushes from the consumer thread, but
    /// never concurrently with a producer on the SPSC ring — while the
    /// DLQ is non-empty every lossy push is diverted *into* the DLQ
    /// (serialised by its lock), and the pending count only reads zero
    /// again after the replay's queue writes are published.
    pub(crate) fn replay_dead_letters(&self) -> usize {
        let Some(dlq) = self.dlq.get() else { return 0 };
        if dlq.pending() == 0 {
            return 0;
        }
        dlq.replay_with(|mut it, want| match &self.inner {
            Inner::Mutex(q) => q.push_batch_partial(&mut it, want),
            Inner::Ring(q) => q.push_batch_partial(&mut it, want),
            Inner::FanIn(q) => q.push_batch_partial(&mut it, want),
        })
    }

    /// Moves up to `max` pending `(value, at)` samples into `out`
    /// (appended in FIFO order), returning how many were moved. One
    /// lock acquisition (mutex) or one contiguous slot run (ring) per
    /// batch; parked producers are woken when space was freed.
    pub fn drain_into(&self, out: &mut Vec<(f64, f64)>, max: usize) -> usize {
        match &self.inner {
            Inner::Mutex(q) => q.drain_into(out, max),
            Inner::Ring(q) => q.drain_into(out, max),
            Inner::FanIn(q) => q.drain_into(out, max),
        }
    }

    /// Pending observations right now.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Mutex(q) => q.len(),
            Inner::Ring(q) => q.len(),
            Inner::FanIn(q) => q.len(),
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pending observations as a cheap, *approximate* heat signal:
    /// relaxed atomic loads only, never a lock. Exact when the queue is
    /// quiescent; under concurrent pushes and drains it is a racy
    /// snapshot that may lag either side by a batch. The consumer
    /// pool's work-stealing check reads this so sizing up a backlog
    /// never contends with the drain it is deciding whether to relieve.
    pub fn backlog_hint(&self) -> usize {
        match &self.inner {
            Inner::Mutex(q) => q.occupancy.load(Ordering::Relaxed),
            Inner::Ring(q) => q.len(),
            Inner::FanIn(q) => q.len(),
        }
    }

    /// Maximum pending observations.
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Mutex(q) => q.capacity,
            Inner::Ring(q) => q.capacity,
            Inner::FanIn(q) => q.capacity,
        }
    }

    /// Resets the lifetime accounting to checkpointed values; used when
    /// a supervisor restores a snapshot so its report resumes the
    /// checkpoint's totals.
    pub(crate) fn resume_counters(&self, accepted: u64, dropped: u64, waits: u64) {
        let counters = self.counters();
        counters.accepted.store(accepted, Ordering::Relaxed);
        counters.dropped.store(dropped, Ordering::Relaxed);
        counters.waits.store(waits, Ordering::Relaxed);
    }

    /// Lifetime count of accepted observations.
    pub fn accepted(&self) -> u64 {
        self.counters().accepted.load(Ordering::Relaxed)
    }

    /// Lifetime count of observations dropped to back-pressure.
    pub fn dropped(&self) -> u64 {
        self.counters().dropped.load(Ordering::Relaxed)
    }

    /// Lifetime count of blocking-producer parks (back-pressure stalls
    /// that put the producer to sleep instead of spinning).
    pub fn waits(&self) -> u64 {
        self.counters().waits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [QueueBackend; 3] =
        [QueueBackend::Mutex, QueueBackend::Ring, QueueBackend::FanIn];

    /// Runs `test` against a fresh queue of every backend.
    fn for_each_backend(capacity: usize, test: impl Fn(ObsQueue)) {
        for backend in BACKENDS {
            test(ObsQueue::with_backend(capacity, backend));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ObsQueue::bounded(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics_for_ring() {
        let _ = ObsQueue::with_backend(0, QueueBackend::Ring);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("mutex".parse(), Ok(QueueBackend::Mutex));
        assert_eq!("Ring".parse(), Ok(QueueBackend::Ring));
        assert_eq!("fanin".parse(), Ok(QueueBackend::FanIn));
        assert!("spinlock".parse::<QueueBackend>().is_err());
        assert!("spinlock"
            .parse::<QueueBackend>()
            .unwrap_err()
            .contains("mutex|ring|fanin"));
        assert_eq!(QueueBackend::Ring.to_string(), "ring");
        assert_eq!(QueueBackend::FanIn.to_string(), "fanin");
        assert_eq!(QueueBackend::default(), QueueBackend::Mutex);
    }

    #[test]
    fn push_fails_fast_when_full() {
        for_each_backend(2, |q| {
            assert!(q.push(1.0));
            assert!(q.push(2.0));
            assert!(!q.push(3.0));
            assert_eq!((q.accepted(), q.dropped(), q.len()), (2, 1, 2));
        });
    }

    #[test]
    fn drain_preserves_fifo_order_and_frees_space() {
        for_each_backend(3, |q| {
            for v in [1.0, 2.0, 3.0] {
                q.push(v);
            }
            let mut out = Vec::new();
            assert_eq!(q.drain_into(&mut out, 2), 2);
            assert_eq!(values(&out), vec![1.0, 2.0]);
            assert!(q.push(4.0), "drain must free capacity");
            assert_eq!(q.drain_into(&mut out, 10), 2);
            assert_eq!(values(&out), vec![1.0, 2.0, 3.0, 4.0]);
            assert!(q.is_empty());
        });
    }

    fn values(samples: &[(f64, f64)]) -> Vec<f64> {
        samples.iter().map(|&(v, _)| v).collect()
    }

    #[test]
    fn timestamps_ride_along_and_untimed_is_nan() {
        for_each_backend(4, |q| {
            q.push_at(1.5, 10.0);
            q.push(2.5);
            let mut out = Vec::new();
            q.drain_into(&mut out, 8);
            assert_eq!(out[0], (1.5, 10.0));
            assert_eq!(out[1].0, 2.5);
            assert!(out[1].1.is_nan(), "untimed samples carry NaN");
        });
    }

    #[test]
    fn clones_share_state() {
        for_each_backend(4, |q| {
            let producer = q.clone();
            producer.push(7.0);
            assert_eq!(q.len(), 1);
            assert_eq!(q.accepted(), 1);
        });
    }

    #[test]
    fn batch_push_accepts_a_prefix_and_counts_the_rest_as_drops() {
        for_each_backend(4, |q| {
            q.push(0.0);
            let batch: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, UNTIMED)).collect();
            assert_eq!(q.push_batch(batch), 3, "only three slots were free");
            assert_eq!((q.accepted(), q.dropped(), q.len()), (4, 2, 4));
            let mut out = Vec::new();
            q.drain_into(&mut out, 10);
            assert_eq!(values(&out), vec![0.0, 1.0, 2.0, 3.0]);
        });
    }

    #[test]
    fn batch_push_wraps_around_the_ring() {
        // Cycle a small ring well past its physical slot count so laps
        // and sequence-word advancement are exercised.
        for_each_backend(3, |q| {
            let mut out = Vec::new();
            let mut expected = Vec::new();
            let mut next = 0.0;
            for round in 0..40 {
                let n = 1 + (round % 3);
                let batch: Vec<(f64, f64)> = (0..n).map(|i| (next + i as f64, UNTIMED)).collect();
                let took = q.push_batch(batch.clone());
                expected.extend(batch[..took].iter().map(|&(v, _)| v));
                next += n as f64;
                q.drain_into(&mut out, 2);
            }
            q.drain_into(&mut out, usize::MAX);
            assert_eq!(values(&out), expected);
            assert_eq!(q.accepted(), expected.len() as u64);
        });
    }

    #[test]
    fn blocking_push_parks_instead_of_spinning() {
        for_each_backend(1, |q| {
            q.push(0.0);
            let producer = q.clone();
            let handle = std::thread::spawn(move || {
                // Queue is full: the producer must wait for the drain below.
                producer.push_blocking(1.0);
            });
            // Give the producer time to exhaust its spin budget and park.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let mut out = Vec::new();
            q.drain_into(&mut out, 1);
            handle.join().unwrap();
            assert_eq!(q.len(), 1);
            assert_eq!(q.accepted(), 2);
            assert_eq!(q.waits(), 1, "the stalled producer parked exactly once");
        });
    }

    #[test]
    fn blocking_batch_push_delivers_everything() {
        for_each_backend(4, |q| {
            let producer = q.clone();
            let handle = std::thread::spawn(move || {
                let batch: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, UNTIMED)).collect();
                producer.push_batch_blocking(batch);
            });
            let mut out = Vec::new();
            while out.len() < 64 {
                if q.drain_into(&mut out, 8) == 0 {
                    std::thread::yield_now();
                }
            }
            handle.join().unwrap();
            assert_eq!(values(&out), (0..64).map(f64::from).collect::<Vec<_>>());
            assert_eq!((q.accepted(), q.dropped()), (64, 0));
        });
    }

    #[test]
    fn notifier_signals_on_empty_to_nonempty_transition() {
        for_each_backend(8, |q| {
            let notifier = Arc::new(WorkNotifier::new());
            q.attach_notifier(Arc::clone(&notifier));
            q.push(1.0);
            assert_eq!(notifier.wait(), Wakeup::Work, "first push signals");
            q.push(2.0); // non-empty: no signal needed
            notifier.shutdown();
            assert_eq!(notifier.wait(), Wakeup::Shutdown);
        });
    }

    #[test]
    fn notifier_reports_pending_work_before_shutdown() {
        let n = WorkNotifier::new();
        n.notify_work();
        n.shutdown();
        assert_eq!(n.wait(), Wakeup::Work, "pre-shutdown work drains first");
        assert_eq!(n.wait(), Wakeup::Shutdown);
        assert_eq!(n.parks(), 0, "no wait ever blocked");
    }

    #[test]
    fn threaded_producer_consumer_loses_nothing_with_blocking_push() {
        for_each_backend(16, |q| {
            let producer = q.clone();
            const N: u64 = 10_000;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..N {
                        producer.push_blocking(i as f64);
                    }
                });
                let mut seen = 0u64;
                let mut batch = Vec::new();
                let mut expected = 0.0;
                while seen < N {
                    batch.clear();
                    let n = q.drain_into(&mut batch, 64);
                    for &(v, _) in &batch {
                        assert_eq!(v, expected, "FIFO order must survive threading");
                        expected += 1.0;
                    }
                    seen += n as u64;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            assert_eq!(q.accepted(), N);
            assert_eq!(q.dropped(), 0);
        });
    }

    #[test]
    fn threaded_batched_producer_keeps_fifo_and_loses_nothing() {
        for_each_backend(64, |q| {
            let producer = q.clone();
            const N: u64 = 50_000;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let mut i = 0u64;
                    while i < N {
                        let n = (N - i).min(37);
                        let batch: Vec<(f64, f64)> =
                            (i..i + n).map(|k| (k as f64, UNTIMED)).collect();
                        producer.push_batch_blocking(batch);
                        i += n;
                    }
                });
                let mut seen = 0u64;
                let mut batch = Vec::new();
                let mut expected = 0.0;
                while seen < N {
                    batch.clear();
                    let n = q.drain_into(&mut batch, 48);
                    for &(v, _) in &batch {
                        assert_eq!(v, expected, "FIFO order must survive batching");
                        expected += 1.0;
                    }
                    seen += n as u64;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            assert_eq!(q.accepted(), N);
            assert_eq!(q.dropped(), 0);
        });
    }

    #[test]
    fn parked_consumer_is_woken_by_ring_pushes() {
        // End-to-end park/wake over the lock-free backend: a consumer
        // thread parks on the notifier whenever a drain comes up empty,
        // while the producer free-runs; every sample must arrive.
        let q = ObsQueue::with_backend(8, QueueBackend::Ring);
        let notifier = Arc::new(WorkNotifier::new());
        q.attach_notifier(Arc::clone(&notifier));
        const N: u64 = 2_000;
        std::thread::scope(|scope| {
            let consumer_q = q.clone();
            let consumer_n = Arc::clone(&notifier);
            let consumer = scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    while consumer_q.drain_into(&mut out, 16) > 0 {}
                    match consumer_n.wait() {
                        Wakeup::Work => continue,
                        Wakeup::Shutdown => break,
                    }
                }
                while consumer_q.drain_into(&mut out, 16) > 0 {}
                out
            });
            for i in 0..N {
                q.push_blocking(i as f64);
                if i % 128 == 0 {
                    // Give the consumer a chance to drain to empty and
                    // park, exercising the empty→non-empty wakeup.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            notifier.shutdown();
            let out = consumer.join().unwrap();
            assert_eq!(out.len() as u64, N, "every push was drained");
            for (i, &(v, _)) in out.iter().enumerate() {
                assert_eq!(v, i as f64);
            }
        });
    }

    /// Asserts the drained fan-in sequence is a loss-free merge: every
    /// producer's samples appear exactly once, in that producer's push
    /// order. Values encode `producer * stride + index`.
    fn assert_merged(out: &[(f64, f64)], producers: usize, per_producer: u64, stride: f64) {
        assert_eq!(out.len() as u64, producers as u64 * per_producer);
        let mut next = vec![0u64; producers];
        for &(v, _) in out {
            let producer = (v / stride) as usize;
            let index = (v - producer as f64 * stride) as u64;
            assert_eq!(
                index, next[producer],
                "producer {producer}'s samples arrived out of order"
            );
            next[producer] += 1;
        }
        assert!(next.iter().all(|&n| n == per_producer));
    }

    #[test]
    fn fanin_merges_concurrent_producers_without_loss_or_reordering() {
        // More producers than lanes, so the shared overflow lane is
        // exercised alongside the exclusive ones; a parked consumer
        // covers the notify handshake.
        const PRODUCERS: usize = FANIN_LANES + 4;
        const PER_PRODUCER: u64 = 2_000;
        let q = ObsQueue::with_backend(64, QueueBackend::FanIn);
        let notifier = Arc::new(WorkNotifier::new());
        q.attach_notifier(Arc::clone(&notifier));
        let out = std::thread::scope(|scope| {
            let consumer_q = q.clone();
            let consumer_n = Arc::clone(&notifier);
            let consumer = scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    while consumer_q.drain_into(&mut out, 32) > 0 {}
                    match consumer_n.wait() {
                        Wakeup::Work => continue,
                        Wakeup::Shutdown => break,
                    }
                }
                while consumer_q.drain_into(&mut out, 32) > 0 {}
                out
            });
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let producer = q.clone();
                    scope.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            producer.push_blocking(p as f64 * 1e6 + i as f64);
                        }
                    })
                })
                .collect();
            for handle in producers {
                handle.join().unwrap();
            }
            notifier.shutdown();
            consumer.join().unwrap()
        });
        assert_merged(&out, PRODUCERS, PER_PRODUCER, 1e6);
        assert_eq!(q.accepted(), PRODUCERS as u64 * PER_PRODUCER);
        assert_eq!(q.dropped(), 0, "blocking producers never drop");
    }

    #[test]
    fn fanin_batched_producers_merge_deterministically_per_producer() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u64 = 10_000;
        let q = ObsQueue::with_backend(128, QueueBackend::FanIn);
        let out = std::thread::scope(|scope| {
            let consumer_q = q.clone();
            let consumer = scope.spawn(move || {
                let mut out = Vec::new();
                while (out.len() as u64) < PRODUCERS as u64 * PER_PRODUCER {
                    if consumer_q.drain_into(&mut out, 48) == 0 {
                        std::thread::yield_now();
                    }
                }
                out
            });
            for p in 0..PRODUCERS {
                let producer = q.clone();
                scope.spawn(move || {
                    let mut i = 0u64;
                    while i < PER_PRODUCER {
                        let n = 37.min(PER_PRODUCER - i);
                        let batch: Vec<(f64, f64)> = (i..i + n)
                            .map(|k| (p as f64 * 1e6 + k as f64, UNTIMED))
                            .collect();
                        producer.push_batch_blocking(batch);
                        i += n;
                    }
                });
            }
            consumer.join().unwrap()
        });
        assert_merged(&out, PRODUCERS, PER_PRODUCER, 1e6);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn fanin_accounts_drops_exactly_under_concurrent_lossy_producers() {
        const PRODUCERS: usize = 6;
        const PER_PRODUCER: u64 = 5_000;
        let q = ObsQueue::with_backend(32, QueueBackend::FanIn);
        let drained = std::sync::atomic::AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) || !q.is_empty() {
                    out.clear();
                    if q.drain_into(&mut out, 16) == 0 {
                        std::thread::yield_now();
                    }
                    drained.fetch_add(out.len() as u64, Ordering::Relaxed);
                }
            });
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let producer = q.clone();
                    scope.spawn(move || {
                        for i in 0..PER_PRODUCER {
                            producer.push(p as f64 * 1e6 + i as f64);
                        }
                    })
                })
                .collect();
            for handle in producers {
                handle.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        let sent = PRODUCERS as u64 * PER_PRODUCER;
        assert_eq!(
            q.accepted() + q.dropped(),
            sent,
            "every push was either accepted or counted as a drop"
        );
        assert_eq!(
            drained.load(Ordering::Relaxed),
            q.accepted(),
            "every accepted sample was drained exactly once"
        );
    }

    #[test]
    fn backlog_hint_tracks_occupancy_when_quiescent() {
        for_each_backend(8, |q| {
            assert_eq!(q.backlog_hint(), 0);
            for v in 0..5 {
                q.push(v as f64);
            }
            assert_eq!(q.backlog_hint(), 5, "{}", q.backend());
            let mut out = Vec::new();
            q.drain_into(&mut out, 3);
            assert_eq!(q.backlog_hint(), 2, "{}", q.backend());
            q.drain_into(&mut out, usize::MAX);
            assert_eq!(q.backlog_hint(), 0, "{}", q.backend());
        });
    }

    /// Regression: a producer parked inside `push_batch_blocking` on a
    /// full queue must be woken by `shutdown` and return short, rather
    /// than sleep forever on space that will never free (the drain
    /// plane is gone). Before the fix, the park loop re-checked only
    /// occupancy, so the wake was lost and join hung.
    #[test]
    fn shutdown_wakes_a_parked_batch_producer() {
        for_each_backend(4, |q| {
            for v in 0..4 {
                q.push(v as f64);
            }
            let producer = q.clone();
            let pushed = std::thread::scope(|scope| {
                let handle = scope.spawn(move || {
                    let batch: Vec<(f64, f64)> =
                        (0..8).map(|k| (100.0 + k as f64, UNTIMED)).collect();
                    producer.push_batch_blocking(batch)
                });
                // Wait until the producer has given up spinning and
                // parked (parks are counted), then shut the queue down.
                while q.waits() == 0 {
                    std::thread::yield_now();
                }
                q.shutdown();
                handle.join().unwrap()
            });
            assert!(q.is_shutdown(), "{}", q.backend());
            assert!(
                pushed < 8,
                "{}: batch producer must return short on shutdown, pushed {pushed}",
                q.backend()
            );
        });
    }

    #[test]
    fn shutdown_wakes_a_parked_blocking_push_and_clear_rearms_it() {
        for_each_backend(2, |q| {
            q.push(1.0);
            q.push(2.0);
            let producer = q.clone();
            let accepted = std::thread::scope(|scope| {
                let handle = scope.spawn(move || producer.push_blocking(3.0));
                while q.waits() == 0 {
                    std::thread::yield_now();
                }
                q.shutdown();
                handle.join().unwrap()
            });
            assert!(
                !accepted,
                "{}: shutdown while full must refuse",
                q.backend()
            );
            // The flag is sticky until cleared; once cleared (the pool
            // does this on spawn) and space exists, blocking pushes
            // work again.
            q.clear_shutdown();
            assert!(!q.is_shutdown());
            let mut out = Vec::new();
            q.drain_into(&mut out, usize::MAX);
            assert!(q.push_blocking(4.0), "{}", q.backend());
        });
    }

    #[test]
    fn dlq_captures_overflow_instead_of_dropping() {
        for_each_backend(2, |q| {
            q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 3)));
            // 2 fit, 3 dead-letter, 1 overflows the DLQ itself.
            let mut offered = 0u64;
            for v in 0..6 {
                q.push(v as f64);
                offered += 1;
            }
            let stats = q.dlq().unwrap().stats();
            assert_eq!(
                q.dropped(),
                0,
                "{}: a DLQ means no silent drops",
                q.backend()
            );
            assert_eq!((stats.pending, stats.captured, stats.overflow), (3, 3, 1));
            assert_eq!(
                q.accepted() + stats.pending as u64 + stats.overflow,
                offered,
                "{}: every offered sample is accounted for",
                q.backend()
            );
        });
    }

    #[test]
    fn pending_dead_letters_divert_pushes_even_with_queue_space() {
        for_each_backend(2, |q| {
            q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 8)));
            q.push(1.0);
            q.push(2.0);
            q.push(3.0); // full -> dead-lettered
            let mut out = Vec::new();
            q.drain_into(&mut out, usize::MAX); // frees all space
                                                // The logical stream is queue ++ DLQ: while sample 3.0 is
                                                // still pending, later pushes must line up behind it, not
                                                // jump into the freed slots.
            assert!(q.push(4.0), "{}", q.backend());
            assert_eq!(q.len(), 0, "{}: push diverted to the DLQ", q.backend());
            assert_eq!(values(&q.dlq().unwrap().contents()), vec![3.0, 4.0]);
            // Batch pushes divert the same way.
            assert_eq!(q.push_batch(vec![(5.0, UNTIMED)]), 1);
            assert_eq!(q.dlq().unwrap().pending(), 3, "{}", q.backend());
        });
    }

    #[test]
    fn replay_moves_dead_letters_fifo_bounded_by_free_space() {
        for_each_backend(2, |q| {
            q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 8)));
            for v in 0..5 {
                q.push(v as f64); // 0,1 queued; 2,3,4 dead-lettered
            }
            let mut out = Vec::new();
            q.drain_into(&mut out, usize::MAX);
            assert_eq!(values(&out), vec![0.0, 1.0]);
            // Space for two: replay moves exactly the two oldest.
            assert_eq!(q.replay_dead_letters(), 2, "{}", q.backend());
            q.drain_into(&mut out, usize::MAX);
            assert_eq!(values(&out), vec![0.0, 1.0, 2.0, 3.0]);
            assert_eq!(q.replay_dead_letters(), 1, "{}", q.backend());
            q.drain_into(&mut out, usize::MAX);
            assert_eq!(values(&out), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
            let stats = q.dlq().unwrap().stats();
            assert_eq!((stats.pending, stats.captured, stats.replayed), (0, 3, 3));
            // After replay the accounting identity still balances:
            // replayed samples moved from `pending` into `accepted`.
            assert_eq!(q.accepted() + stats.overflow, 5);
            assert_eq!(
                q.replay_dead_letters(),
                0,
                "{}: nothing pending",
                q.backend()
            );
        });
    }

    #[test]
    fn batch_push_splits_between_queue_and_dlq() {
        for_each_backend(2, |q| {
            q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 2)));
            let batch: Vec<(f64, f64)> = (0..6).map(|v| (v as f64, UNTIMED)).collect();
            // 2 queued + 2 captured = 4 kept; 2 are DLQ overflow.
            assert_eq!(q.push_batch(batch), 4, "{}", q.backend());
            assert_eq!(q.dropped(), 0, "{}", q.backend());
            let stats = q.dlq().unwrap().stats();
            assert_eq!((stats.pending, stats.overflow), (2, 2));
        });
    }

    #[test]
    #[should_panic(expected = "dead-letter queue already attached")]
    fn attaching_a_second_dlq_panics() {
        let q = ObsQueue::bounded(2);
        q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 2)));
        q.attach_dlq(Arc::new(DeadLetterQueue::new(0, 2)));
    }
}
