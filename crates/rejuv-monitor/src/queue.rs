//! Bounded single-producer/single-consumer observation queues.
//!
//! Each supervisor shard owns one [`ObsQueue`]: the producer side (a
//! simulation feed, an instrumented request path) pushes raw samples,
//! the consumer side (the supervisor's drain loop) removes them in
//! batches. The queue is *bounded*: when the consumer falls behind,
//! pushes fail fast and are counted instead of blocking the producer —
//! overload degrades monitoring fidelity, never source throughput.
//!
//! Samples are `(value, at)` pairs; `at` is a simulation timestamp in
//! seconds, with `NaN` marking an untimed sample (producers that only
//! have a value). Timestamps ride along so the supervisor can build
//! inter-observation latency histograms; they never enter decision
//! digests.
//!
//! Blocking producers ([`ObsQueue::push_blocking`]) spin a bounded
//! number of times, then *park* on a condvar until the consumer frees
//! space — a stalled consumer costs a wait counter increment, not a
//! pegged core. Symmetrically, a [`WorkNotifier`] can be attached so an
//! empty→non-empty transition wakes a parked consumer thread (see
//! [`crate::consumer::ConsumerThread`]): between batches, neither side
//! burns CPU.
//!
//! The implementation is a mutex-guarded ring buffer. Batched drains
//! amortise the lock so a handful of shards sustain tens of millions of
//! observations per second (see `BENCH_monitor.json`); a lock-free ring
//! would need `unsafe`, which this workspace forbids.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Timestamp marker for samples that carry no timestamp.
pub(crate) const UNTIMED: f64 = f64::NAN;

/// How many scheduler yields a blocking push attempts before parking on
/// the space condvar. Short stalls resolve without a park; long stalls
/// sleep instead of spinning.
const BLOCKING_SPIN_LIMIT: u32 = 64;

/// Wakes a parked consumer when any of its queues gains work.
///
/// One notifier is shared by every queue a consumer thread drains; a
/// push into an *empty* queue signals it (pushes into a non-empty queue
/// don't need to — the consumer only parks after draining every queue
/// to empty, so a pending item is never overlooked).
#[derive(Debug, Default)]
pub struct WorkNotifier {
    state: Mutex<NotifyState>,
    cv: Condvar,
    /// Times a waiter actually blocked (telemetry for "the consumer
    /// parks instead of spinning").
    parks: AtomicU64,
}

#[derive(Debug, Default)]
struct NotifyState {
    /// Work arrived since the last `wait` returned.
    pending: bool,
    /// The consumer should drain what's left and exit.
    shutdown: bool,
}

/// What woke a [`WorkNotifier::wait`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// At least one queue gained work; drain and wait again.
    Work,
    /// Shutdown was requested; drain remaining work and exit.
    Shutdown,
}

impl WorkNotifier {
    /// Creates an idle notifier.
    pub fn new() -> Self {
        WorkNotifier::default()
    }

    /// Signals that work is available, waking a parked waiter.
    pub fn notify_work(&self) {
        let mut state = self.state.lock().expect("notifier lock poisoned");
        state.pending = true;
        drop(state);
        self.cv.notify_all();
    }

    /// Requests shutdown, waking a parked waiter.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("notifier lock poisoned");
        state.shutdown = true;
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until work arrives or shutdown is requested. Consumes the
    /// pending-work flag; shutdown is sticky and reported only once no
    /// work signal is pending (so pre-shutdown pushes still drain).
    pub fn wait(&self) -> Wakeup {
        let mut state = self.state.lock().expect("notifier lock poisoned");
        if !state.pending && !state.shutdown {
            self.parks.fetch_add(1, Ordering::Relaxed);
            state = self
                .cv
                .wait_while(state, |s| !s.pending && !s.shutdown)
                .expect("notifier lock poisoned");
        }
        if state.pending {
            state.pending = false;
            Wakeup::Work
        } else {
            Wakeup::Shutdown
        }
    }

    /// Times a waiter actually went to sleep.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

struct QueueInner {
    buf: Mutex<VecDeque<(f64, f64)>>,
    /// Producers in `push_blocking` park here when the queue is full;
    /// `drain_into` notifies after freeing space.
    space: Condvar,
    capacity: usize,
    /// Samples accepted by `push` over the queue's lifetime.
    accepted: AtomicU64,
    /// Samples rejected because the queue was full.
    dropped: AtomicU64,
    /// Times a blocking producer had to park waiting for space.
    waits: AtomicU64,
    /// Consumer wakeup hook; set once a consumer thread attaches.
    notifier: Mutex<Option<Arc<WorkNotifier>>>,
}

/// A bounded queue of observations, cheaply cloneable into producer and
/// consumer handles (clones share the same buffer and counters).
#[derive(Clone)]
pub struct ObsQueue {
    inner: Arc<QueueInner>,
}

impl std::fmt::Debug for ObsQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsQueue")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .field("accepted", &self.accepted())
            .field("dropped", &self.dropped())
            .field("waits", &self.waits())
            .finish()
    }
}

impl ObsQueue {
    /// Creates a queue holding at most `capacity` pending observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ObsQueue {
            inner: Arc::new(QueueInner {
                buf: Mutex::new(VecDeque::with_capacity(capacity.min(65_536))),
                space: Condvar::new(),
                capacity,
                accepted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                waits: AtomicU64::new(0),
                notifier: Mutex::new(None),
            }),
        }
    }

    /// Attaches a consumer wakeup hook: pushes that make the queue
    /// non-empty will signal it. Replaces any previous notifier.
    pub fn attach_notifier(&self, notifier: Arc<WorkNotifier>) {
        *self.inner.notifier.lock().expect("queue lock poisoned") = Some(notifier);
    }

    fn notify_consumer(&self) {
        if let Some(n) = self
            .inner
            .notifier
            .lock()
            .expect("queue lock poisoned")
            .as_ref()
        {
            n.notify_work();
        }
    }

    /// Offers one untimed observation; returns `false` (and counts a
    /// drop) if the queue is full.
    pub fn push(&self, value: f64) -> bool {
        self.push_at(value, UNTIMED)
    }

    /// Offers one observation stamped at `at` seconds of simulation
    /// time; returns `false` (and counts a drop) if the queue is full.
    pub fn push_at(&self, value: f64, at: f64) -> bool {
        self.try_push(value, at, true)
    }

    /// Single push attempt. `count_drop` distinguishes lossy producers
    /// (a full queue is a real drop) from blocking producers mid-spin
    /// (a full queue just means "try again" and must not inflate the
    /// drop counter).
    fn try_push(&self, value: f64, at: f64, count_drop: bool) -> bool {
        let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
        if buf.len() >= self.inner.capacity {
            drop(buf);
            if count_drop {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            false
        } else {
            let was_empty = buf.is_empty();
            buf.push_back((value, at));
            drop(buf);
            self.inner.accepted.fetch_add(1, Ordering::Relaxed);
            if was_empty {
                self.notify_consumer();
            }
            true
        }
    }

    /// Pushes an untimed observation, waiting until space frees up. For
    /// producers that must not lose samples, e.g. the throughput bench's
    /// load generators.
    pub fn push_blocking(&self, value: f64) {
        self.push_blocking_at(value, UNTIMED);
    }

    /// Pushes a timestamped observation, waiting until space frees up.
    ///
    /// Spins (with scheduler yields) a bounded number of times, then
    /// parks on a condvar until the consumer drains — a stalled consumer
    /// never costs a pegged producer core. Parks are counted in
    /// [`ObsQueue::waits`].
    pub fn push_blocking_at(&self, value: f64, at: f64) {
        for _ in 0..BLOCKING_SPIN_LIMIT {
            if self.try_push(value, at, false) {
                return;
            }
            std::thread::yield_now();
        }
        // Park until the consumer frees space. The push happens under
        // the same lock the wait releases, so space seen is space used.
        self.inner.waits.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
        buf = self
            .inner
            .space
            .wait_while(buf, |b| b.len() >= self.inner.capacity)
            .expect("queue lock poisoned");
        let was_empty = buf.is_empty();
        buf.push_back((value, at));
        drop(buf);
        self.inner.accepted.fetch_add(1, Ordering::Relaxed);
        if was_empty {
            self.notify_consumer();
        }
    }

    /// Moves up to `max` pending `(value, at)` samples into `out`
    /// (appended in FIFO order), returning how many were moved. One lock
    /// acquisition per batch; parked producers are woken when space was
    /// freed.
    pub fn drain_into(&self, out: &mut Vec<(f64, f64)>, max: usize) -> usize {
        let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
        let take = buf.len().min(max);
        out.extend(buf.drain(..take));
        drop(buf);
        if take > 0 {
            self.inner.space.notify_all();
        }
        take
    }

    /// Pending observations right now.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("queue lock poisoned").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum pending observations.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Resets the lifetime accounting to checkpointed values; used when
    /// a supervisor restores a snapshot so its report resumes the
    /// checkpoint's totals.
    pub(crate) fn resume_counters(&self, accepted: u64, dropped: u64, waits: u64) {
        self.inner.accepted.store(accepted, Ordering::Relaxed);
        self.inner.dropped.store(dropped, Ordering::Relaxed);
        self.inner.waits.store(waits, Ordering::Relaxed);
    }

    /// Lifetime count of accepted observations.
    pub fn accepted(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Lifetime count of observations dropped to back-pressure.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Lifetime count of blocking-producer parks (back-pressure stalls
    /// that put the producer to sleep instead of spinning).
    pub fn waits(&self) -> u64 {
        self.inner.waits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ObsQueue::bounded(0);
    }

    #[test]
    fn push_fails_fast_when_full() {
        let q = ObsQueue::bounded(2);
        assert!(q.push(1.0));
        assert!(q.push(2.0));
        assert!(!q.push(3.0));
        assert_eq!((q.accepted(), q.dropped(), q.len()), (2, 1, 2));
    }

    #[test]
    fn drain_preserves_fifo_order_and_frees_space() {
        let q = ObsQueue::bounded(3);
        for v in [1.0, 2.0, 3.0] {
            q.push(v);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 2), 2);
        assert_eq!(values(&out), vec![1.0, 2.0]);
        assert!(q.push(4.0), "drain must free capacity");
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(values(&out), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(q.is_empty());
    }

    fn values(samples: &[(f64, f64)]) -> Vec<f64> {
        samples.iter().map(|&(v, _)| v).collect()
    }

    #[test]
    fn timestamps_ride_along_and_untimed_is_nan() {
        let q = ObsQueue::bounded(4);
        q.push_at(1.5, 10.0);
        q.push(2.5);
        let mut out = Vec::new();
        q.drain_into(&mut out, 8);
        assert_eq!(out[0], (1.5, 10.0));
        assert_eq!(out[1].0, 2.5);
        assert!(out[1].1.is_nan(), "untimed samples carry NaN");
    }

    #[test]
    fn clones_share_state() {
        let q = ObsQueue::bounded(4);
        let producer = q.clone();
        producer.push(7.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.accepted(), 1);
    }

    #[test]
    fn blocking_push_parks_instead_of_spinning() {
        let q = ObsQueue::bounded(1);
        q.push(0.0);
        let producer = q.clone();
        let handle = std::thread::spawn(move || {
            // Queue is full: the producer must wait for the drain below.
            producer.push_blocking(1.0);
        });
        // Give the producer time to exhaust its spin budget and park.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut out = Vec::new();
        q.drain_into(&mut out, 1);
        handle.join().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.waits(), 1, "the stalled producer parked exactly once");
    }

    #[test]
    fn notifier_signals_on_empty_to_nonempty_transition() {
        let q = ObsQueue::bounded(8);
        let notifier = Arc::new(WorkNotifier::new());
        q.attach_notifier(Arc::clone(&notifier));
        q.push(1.0);
        assert_eq!(notifier.wait(), Wakeup::Work, "first push signals");
        q.push(2.0); // non-empty: no signal needed
        notifier.shutdown();
        assert_eq!(notifier.wait(), Wakeup::Shutdown);
    }

    #[test]
    fn notifier_reports_pending_work_before_shutdown() {
        let n = WorkNotifier::new();
        n.notify_work();
        n.shutdown();
        assert_eq!(n.wait(), Wakeup::Work, "pre-shutdown work drains first");
        assert_eq!(n.wait(), Wakeup::Shutdown);
        assert_eq!(n.parks(), 0, "no wait ever blocked");
    }

    #[test]
    fn threaded_producer_consumer_loses_nothing_with_blocking_push() {
        let q = ObsQueue::bounded(16);
        let producer = q.clone();
        const N: u64 = 10_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    producer.push_blocking(i as f64);
                }
            });
            let mut seen = 0u64;
            let mut batch = Vec::new();
            let mut expected = 0.0;
            while seen < N {
                batch.clear();
                let n = q.drain_into(&mut batch, 64);
                for &(v, _) in &batch {
                    assert_eq!(v, expected, "FIFO order must survive threading");
                    expected += 1.0;
                }
                seen += n as u64;
                if n == 0 {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(q.accepted(), N);
        assert_eq!(q.dropped(), 0);
    }
}
