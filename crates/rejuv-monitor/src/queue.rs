//! Bounded single-producer/single-consumer observation queues.
//!
//! Each supervisor shard owns one [`ObsQueue`]: the producer side (a
//! simulation feed, an instrumented request path) pushes raw `f64`
//! samples, the consumer side (the supervisor's drain loop) removes them
//! in batches. The queue is *bounded*: when the consumer falls behind,
//! pushes fail fast and are counted instead of blocking the producer —
//! overload degrades monitoring fidelity, never source throughput.
//!
//! The implementation is a mutex-guarded ring buffer. Batched drains
//! amortise the lock so a handful of shards sustain tens of millions of
//! observations per second (see `BENCH_monitor.json`); a lock-free ring
//! would need `unsafe`, which this workspace forbids.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct QueueInner {
    buf: Mutex<VecDeque<f64>>,
    capacity: usize,
    /// Samples accepted by `push` over the queue's lifetime.
    accepted: AtomicU64,
    /// Samples rejected because the queue was full.
    dropped: AtomicU64,
}

/// A bounded queue of observations, cheaply cloneable into producer and
/// consumer handles (clones share the same buffer and counters).
#[derive(Clone)]
pub struct ObsQueue {
    inner: Arc<QueueInner>,
}

impl std::fmt::Debug for ObsQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsQueue")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .field("accepted", &self.accepted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl ObsQueue {
    /// Creates a queue holding at most `capacity` pending observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        ObsQueue {
            inner: Arc::new(QueueInner {
                buf: Mutex::new(VecDeque::with_capacity(capacity.min(65_536))),
                capacity,
                accepted: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Offers one observation; returns `false` (and counts a drop) if
    /// the queue is full.
    pub fn push(&self, value: f64) -> bool {
        let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
        if buf.len() >= self.inner.capacity {
            drop(buf);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            buf.push_back(value);
            drop(buf);
            self.inner.accepted.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// Pushes, spinning (with a scheduler yield) until space frees up.
    /// For producers that must not lose samples, e.g. the throughput
    /// bench's load generators.
    pub fn push_blocking(&self, value: f64) {
        loop {
            {
                let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
                if buf.len() < self.inner.capacity {
                    buf.push_back(value);
                    drop(buf);
                    self.inner.accepted.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Moves up to `max` pending observations into `out` (appended in
    /// FIFO order), returning how many were moved. One lock acquisition
    /// per batch.
    pub fn drain_into(&self, out: &mut Vec<f64>, max: usize) -> usize {
        let mut buf = self.inner.buf.lock().expect("queue lock poisoned");
        let take = buf.len().min(max);
        out.extend(buf.drain(..take));
        take
    }

    /// Pending observations right now.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("queue lock poisoned").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum pending observations.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Resets the lifetime accounting to checkpointed values; used when
    /// a supervisor restores a snapshot so its report resumes the
    /// checkpoint's totals.
    pub(crate) fn resume_counters(&self, accepted: u64, dropped: u64) {
        self.inner.accepted.store(accepted, Ordering::Relaxed);
        self.inner.dropped.store(dropped, Ordering::Relaxed);
    }

    /// Lifetime count of accepted observations.
    pub fn accepted(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Lifetime count of observations dropped to back-pressure.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ObsQueue::bounded(0);
    }

    #[test]
    fn push_fails_fast_when_full() {
        let q = ObsQueue::bounded(2);
        assert!(q.push(1.0));
        assert!(q.push(2.0));
        assert!(!q.push(3.0));
        assert_eq!((q.accepted(), q.dropped(), q.len()), (2, 1, 2));
    }

    #[test]
    fn drain_preserves_fifo_order_and_frees_space() {
        let q = ObsQueue::bounded(3);
        for v in [1.0, 2.0, 3.0] {
            q.push(v);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 2), 2);
        assert_eq!(out, vec![1.0, 2.0]);
        assert!(q.push(4.0), "drain must free capacity");
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(q.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let q = ObsQueue::bounded(4);
        let producer = q.clone();
        producer.push(7.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.accepted(), 1);
    }

    #[test]
    fn threaded_producer_consumer_loses_nothing_with_blocking_push() {
        let q = ObsQueue::bounded(16);
        let producer = q.clone();
        const N: u64 = 10_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    producer.push_blocking(i as f64);
                }
            });
            let mut seen = 0u64;
            let mut batch = Vec::new();
            let mut expected = 0.0;
            while seen < N {
                batch.clear();
                let n = q.drain_into(&mut batch, 64);
                for &v in &batch {
                    assert_eq!(v, expected, "FIFO order must survive threading");
                    expected += 1.0;
                }
                seen += n as u64;
                if n == 0 {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(q.accepted(), N);
        assert_eq!(q.dropped(), 0);
    }
}
