//! A lightweight, deterministic metrics registry.
//!
//! Three instrument kinds, mirroring what a production monitoring stack
//! exports:
//!
//! * **counters** — monotonic `u64` totals (observations processed,
//!   rejuvenations fired),
//! * **gauges** — last-write-wins `f64` levels (queue depth, shard
//!   count),
//! * **histograms** — fixed-bucket distributions with lifetime count and
//!   sum (observation values, drain batch sizes).
//!
//! The registry is plain data behind `BTreeMap`s: exporting it yields a
//! [`MetricsReport`] whose JSON rendering is byte-stable across runs —
//! the property `monitord --replay` relies on to prove a re-analysis
//! reproduced the live run exactly. Nothing here reads the wall clock.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds[i]` is the *inclusive* upper edge
/// of bucket `i`, with one extra overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Records a whole slice of values in one pass — the bulk
    /// counterpart of [`Histogram::record`], bitwise-identical to
    /// calling it once per value: bucket search runs per value, but the
    /// counts accumulate in a stack array and the sum in a register,
    /// both written back once. The slice order fixes the floating-point
    /// accumulation order, same as repeated `record`.
    pub fn record_slice(&mut self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        // Every histogram in the monitoring plane has ≤ 7 bounds (≤ 8
        // buckets); the stack array covers them with slack, and anything
        // wider falls back to the per-value path.
        const STACK_BUCKETS: usize = 16;
        if self.counts.len() > STACK_BUCKETS {
            for &value in values {
                self.record(value);
            }
            return;
        }
        let mut counts = [0u64; STACK_BUCKETS];
        let mut sum = self.sum;
        let overflow = self.bounds.len();
        for &value in values {
            let idx = self
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(overflow);
            counts[idx] += 1;
            sum += value;
        }
        for (mine, batched) in self.counts.iter_mut().zip(&counts) {
            *mine += batched;
        }
        self.count += values.len() as u64;
        self.sum = sum;
    }

    /// [`Histogram::record_slice`] with a caller-supplied fold run on
    /// `(index, value)` inside the same pass. The drain plane fuses its
    /// FNV decision-digest fold into the bucket loop through this: the
    /// hash is a latency-bound dependency chain, and riding it through
    /// the histogram pass lets the (independent) bucket searches fill
    /// the multiplier bubbles instead of costing a separate traversal.
    /// Identical histogram state to `record_slice`, same call order for
    /// the fold as a per-value loop.
    pub(crate) fn record_slice_with<F: FnMut(usize, f64)>(&mut self, values: &[f64], mut fold: F) {
        if values.is_empty() {
            return;
        }
        const STACK_BUCKETS: usize = 16;
        if self.counts.len() > STACK_BUCKETS {
            for (i, &value) in values.iter().enumerate() {
                self.record(value);
                fold(i, value);
            }
            return;
        }
        let mut counts = [0u64; STACK_BUCKETS];
        let mut sum = self.sum;
        let overflow = self.bounds.len();
        for (i, &value) in values.iter().enumerate() {
            let idx = self
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(overflow);
            counts[idx] += 1;
            sum += value;
            fold(i, value);
        }
        for (mine, batched) in self.counts.iter_mut().zip(&counts) {
            *mine += batched;
        }
        self.count += values.len() as u64;
        self.sum = sum;
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds `other` into this histogram: per-bucket counts and totals
    /// add, sums add in call order. Merging the same histograms in the
    /// same order always produces the same bytes — the property the
    /// supervisor relies on when it folds per-shard histograms in shard
    /// index order, so reports stay byte-stable no matter which consumer
    /// thread drained which shard.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named monotonic counter, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Reads a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registers a histogram with the given bounds if absent; no-op for
    /// an existing name (the original bounds win).
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records into a registered histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram was never registered — instrument names
    /// are static, so an unknown name is a programming error.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name} was never registered"))
            .record(value);
    }

    /// Reads a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Inserts (or replaces) a fully-built histogram under `name` — the
    /// supervisor's merge path, which folds per-shard histograms into a
    /// report-ready instrument in one shot.
    pub(crate) fn insert_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_owned(), histogram);
    }

    /// Rebuilds a registry from an exported report, resuming every
    /// instrument at its exported state (the checkpoint-restore path).
    pub fn from_report(report: &MetricsReport) -> Self {
        MetricsRegistry {
            counters: report.counters.clone(),
            gauges: report.gauges.clone(),
            histograms: report.histograms.clone(),
        }
    }

    /// Exports everything as a serialisable, order-stable report.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// A point-in-time export of a [`MetricsRegistry`].
///
/// `BTreeMap`-backed, so serialising the same state always yields the
/// same bytes — reports are directly `diff`-able.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]); // 1.0 lands inclusively
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 104.5);
        assert!((h.mean() - 26.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("obs", 3);
        m.inc("obs", 2);
        m.set_gauge("depth", 4.0);
        m.set_gauge("depth", 7.0);
        assert_eq!(m.counter("obs"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("depth"), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn observing_unregistered_histogram_panics() {
        let mut m = MetricsRegistry::new();
        m.observe("latency", 1.0);
    }

    #[test]
    fn merge_adds_counts_and_sums_in_call_order() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 3.0] {
            a.record(v);
        }
        for v in [100.0, 0.25] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1, 1]);
        assert_eq!(a.count(), 4);
        assert_eq!(
            a.sum().to_bits(),
            ((0.5 + 3.0) + (100.0 + 0.25f64)).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut m = MetricsRegistry::new();
        m.inc("rejuvenations", 2);
        m.set_gauge("shards", 4.0);
        m.register_histogram("value", &[1.0, 5.0, 25.0]);
        m.observe("value", 3.5);
        m.observe("value", 50.0);
        let report = m.report();
        let text = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
        // Same state, same bytes: the replay-determinism contract.
        assert_eq!(text, serde_json::to_string(&m.report()).unwrap());
    }
}
