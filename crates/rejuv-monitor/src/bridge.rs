//! Attaching the runtime to live traffic.
//!
//! A simulated (or real) system expects a [`RejuvenationDetector`] it
//! can call synchronously: one observation in, one decision out.
//! [`MonitorBridge`] satisfies that contract while routing every
//! observation through a shared [`Supervisor`] shard — ingestion queue,
//! metrics, event log and all — so "the detector the model sees" and
//! "the stream the monitoring runtime supervises" are the same thing.
//!
//! One [`SharedSupervisor`] hands out one bridge per shard (e.g. one per
//! cluster host); after the run it yields the supervisor back for the
//! final report.

use crate::supervisor::{MonitorReport, Supervisor};
use rejuv_core::{Decision, DetectorSnapshot, RejuvenationDetector, SnapshotError};
use std::sync::{Arc, Mutex};

/// A supervisor shared between per-shard bridges and the coordinating
/// thread.
#[derive(Debug, Clone)]
pub struct SharedSupervisor {
    inner: Arc<Mutex<Supervisor>>,
}

impl SharedSupervisor {
    /// Wraps a supervisor for shared live attachment.
    pub fn new(supervisor: Supervisor) -> Self {
        SharedSupervisor {
            inner: Arc::new(Mutex::new(supervisor)),
        }
    }

    /// A synchronous detector façade for `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn bridge(&self, shard: usize) -> MonitorBridge {
        let count = self.with(|s| s.shard_count());
        assert!(shard < count, "shard {shard} out of range ({count} shards)");
        MonitorBridge {
            inner: Arc::clone(&self.inner),
            shard,
        }
    }

    /// Runs `f` with exclusive access to the supervisor.
    pub fn with<R>(&self, f: impl FnOnce(&mut Supervisor) -> R) -> R {
        let mut guard = self.inner.lock().expect("supervisor lock poisoned");
        f(&mut guard)
    }

    /// The current final report.
    pub fn report(&self) -> MonitorReport {
        self.with(|s| s.report())
    }

    /// Unwraps the supervisor once every bridge has been dropped.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged if bridges (or clones) are still alive.
    pub fn try_into_inner(self) -> Result<Supervisor, SharedSupervisor> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner().expect("supervisor lock poisoned")),
            Err(inner) => Err(SharedSupervisor { inner }),
        }
    }
}

/// A [`RejuvenationDetector`] façade over one supervisor shard.
///
/// `observe` ingests the value into the shard's bounded queue and
/// drains it synchronously, so the caller gets the decision for the
/// observation it just produced while the supervisor records the full
/// observability trail.
#[derive(Debug, Clone)]
pub struct MonitorBridge {
    inner: Arc<Mutex<Supervisor>>,
    shard: usize,
}

impl MonitorBridge {
    /// The shard this bridge feeds.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl RejuvenationDetector for MonitorBridge {
    fn observe(&mut self, value: f64) -> Decision {
        self.inner
            .lock()
            .expect("supervisor lock poisoned")
            .process_sync(self.shard, value)
            .expect("monitor event log write failed")
    }

    fn observe_at(&mut self, at_secs: f64, value: f64) -> Decision {
        self.inner
            .lock()
            .expect("supervisor lock poisoned")
            .process_sync_at(self.shard, value, at_secs)
            .expect("monitor event log write failed")
    }

    fn reset(&mut self) {
        // Resetting the façade is not meaningful: the supervisor owns
        // the detector state and its lifetime counters.
    }

    fn name(&self) -> &'static str {
        "monitored"
    }

    fn rejuvenation_count(&self) -> u64 {
        self.inner
            .lock()
            .expect("supervisor lock poisoned")
            .rejuvenations(self.shard)
    }

    fn snapshot(&self) -> Option<DetectorSnapshot> {
        None
    }

    fn restore(&mut self, _snapshot: &DetectorSnapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            detector: self.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use rejuv_core::{Sraa, SraaConfig};

    fn supervisor(shards: usize) -> Supervisor {
        Supervisor::with_shards(SupervisorConfig::default(), shards, |_| {
            Box::new(Sraa::new(
                SraaConfig::builder(5.0, 5.0)
                    .sample_size(2)
                    .buckets(2)
                    .depth(1)
                    .build()
                    .unwrap(),
            ))
        })
    }

    #[test]
    fn bridge_decisions_match_a_bare_detector() {
        let shared = SharedSupervisor::new(supervisor(2));
        let mut bridge: Box<dyn RejuvenationDetector> = Box::new(shared.bridge(1));
        let mut reference: Box<dyn RejuvenationDetector> = Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ));
        for i in 0..400 {
            let v = if i % 9 < 6 { 55.0 } else { 2.0 };
            assert_eq!(bridge.observe(v), reference.observe(v));
        }
        assert_eq!(bridge.rejuvenation_count(), reference.rejuvenation_count());
        assert!(bridge.rejuvenation_count() > 0);
        assert_eq!(shared.report().shards[1].processed, 400);
        assert_eq!(shared.report().shards[0].processed, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bridge_rejects_unknown_shard() {
        let shared = SharedSupervisor::new(supervisor(1));
        let _ = shared.bridge(5);
    }

    #[test]
    fn try_into_inner_waits_for_bridges() {
        let shared = SharedSupervisor::new(supervisor(1));
        let bridge = shared.bridge(0);
        let shared = shared.try_into_inner().expect_err("bridge still alive");
        drop(bridge);
        let sup = shared.try_into_inner().expect("last handle");
        assert_eq!(sup.shard_count(), 1);
    }
}
