//! The multi-consumer drain plane: a [`ConsumerPool`] of N worker
//! threads draining one supervisor's shards concurrently.
//!
//! # Ownership and stealing
//!
//! Shards are partitioned round-robin at spawn: shard `i` starts owned
//! by worker `i % N`, recorded in a *claim table* of per-shard
//! `AtomicU32` owner slots. A worker drains only shards the table says
//! it owns. When its owned set runs dry it *steals*: it scans the table
//! for a shard it does not own whose backlog hint is at least the drain
//! batch and CASes the owner slot to itself. Stealing transfers *whole
//! shards* — never interleaved batches — so each shard's observation
//! sequence is applied by exactly one drain at a time (a per-shard lock
//! enforces it even across a mid-drain steal) and per-shard FIFO order,
//! digests, and counters are byte-identical across 1/2/4/8 consumers.
//!
//! After a wakeup that still finds the owned set dry, the steal
//! threshold drops to one pending sample: queue wakeups are routed to
//! the shard's owner *at attach time*, so after a steal a push can wake
//! a stale owner — that worker simply steals the work back instead of
//! re-parking over a non-empty queue.
//!
//! # Events, checkpoints, shutdown
//!
//! Workers buffer log events per shard (in drain order) and flush them
//! shard-major — shard 0's events, then shard 1's, … — at checkpoint
//! time and at join. Per-shard event order is what replay consumes, so
//! a flushed trace replays byte-identically no matter which workers
//! drained; with a fixed preloaded workload the trace *bytes* are also
//! identical across consumer counts, because batch boundaries and the
//! shard-major flush order are both deterministic.
//!
//! Checkpoints are emitted under a gate lock: the emitting worker walks
//! the shards in index order, capturing each shard's snapshot and
//! buffered events at a drain-batch boundary (the per-shard lock
//! excludes mid-batch state), flushes the events, then hands the
//! assembled [`SupervisorSnapshot`] to the sink. Shards are *not*
//! stopped globally — per-shard batch-boundary consistency is exactly
//! what [`crate::replay_events_resumed`] needs, since it skips each
//! shard's covered prefix independently.
//!
//! Shutdown is a drain barrier: every worker sweeps *every* shard
//! (ownership ignored) until it observes a clean pass. Producers must
//! stop pushing before [`ConsumerPool::join`]; then a clean pass proves
//! the queues are empty for good, so the final drain is loss-free.

use crate::assurance::failpoints::fp;
use crate::bridge::SharedSupervisor;
use crate::bus::{EventBus, OpEvent};
use crate::event::MonitorEvent;
use crate::metrics::MetricsRegistry;
use crate::queue::{ObsQueue, Wakeup, WorkNotifier};
use crate::supervisor::{
    drain_shard, CheckpointStream, DlqSnapshot, DrainScratch, MetricsFold, Shard, Supervisor,
    SupervisorConfig, SupervisorParts, SupervisorSnapshot, SNAPSHOT_VERSION, SNAPSHOT_VERSION_DLQ,
};
use crate::EventLog;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One shard plus its buffered (not yet flushed) log events. The lock
/// serialises drains, so a shard's observation sequence stays FIFO even
/// when a steal lands mid-drain.
struct ShardCell {
    shard: Shard,
    /// Log events since the last flush, in drain order.
    events: Vec<MonitorEvent>,
}

struct ShardSlot {
    /// A clone of the shard's queue handle, reachable without the cell
    /// lock — backlog hints for stealing, notifier re-routing.
    queue: ObsQueue,
    cell: Mutex<ShardCell>,
}

/// Serialised supervisor-global state: the base metrics registry, the
/// event log, and the checkpoint stream.
struct PoolControl {
    metrics: MetricsRegistry,
    log: Option<EventLog>,
    checkpoint: Option<CheckpointStream>,
}

struct PoolShared {
    config: SupervisorConfig,
    slots: Vec<ShardSlot>,
    /// The claim table: `owner[s]` is the worker index owning shard `s`.
    owner: Vec<AtomicU32>,
    control: Mutex<PoolControl>,
    /// Serialises checkpoint emission across workers.
    gate: Mutex<()>,
    /// One notifier per worker; shard queues signal their owner's (as
    /// routed at attach time — possibly stale after a steal, which the
    /// desperate-steal rule recovers from).
    notifiers: Vec<Arc<WorkNotifier>>,
    logging: bool,
    checkpointing: bool,
    /// Total observations processed, updated at drain-batch granularity
    /// (drives the checkpoint cadence).
    total: AtomicU64,
    steals: AtomicU64,
    /// Observations drained per worker.
    drains: Vec<AtomicU64>,
    /// Operational event bus, if the supervisor had one attached
    /// (checkpoints emitted by workers publish through it too).
    bus: Option<Arc<EventBus>>,
}

impl PoolShared {
    /// Partitions a dismantled supervisor across `consumers` workers.
    fn build(parts: SupervisorParts, consumers: usize) -> Arc<PoolShared> {
        assert!(consumers > 0, "consumer count must be positive");
        let notifiers: Vec<_> = (0..consumers)
            .map(|_| Arc::new(WorkNotifier::new()))
            .collect();
        let initial: u64 = parts.shards.iter().map(|s| s.processed).sum();
        let mut slots = Vec::with_capacity(parts.shards.len());
        let mut owner = Vec::with_capacity(parts.shards.len());
        for (i, shard) in parts.shards.into_iter().enumerate() {
            let queue = shard.queue.clone();
            // A previous drain plane over these queues may have left the
            // producer-facing shutdown latch set; this pool is now the
            // live consumer, so blocking producers may park again.
            queue.clear_shutdown();
            queue.attach_notifier(Arc::clone(&notifiers[i % consumers]));
            owner.push(AtomicU32::new((i % consumers) as u32));
            slots.push(ShardSlot {
                queue,
                cell: Mutex::new(ShardCell {
                    shard,
                    events: Vec::new(),
                }),
            });
        }
        Arc::new(PoolShared {
            logging: parts.log.is_some(),
            checkpointing: parts.checkpoint.is_some(),
            config: parts.config,
            slots,
            owner,
            control: Mutex::new(PoolControl {
                metrics: parts.metrics,
                log: parts.log,
                checkpoint: parts.checkpoint,
            }),
            gate: Mutex::new(()),
            notifiers,
            total: AtomicU64::new(initial),
            steals: AtomicU64::new(0),
            drains: (0..consumers).map(|_| AtomicU64::new(0)).collect(),
            bus: parts.bus,
        })
    }

    /// Drains one batch from shard `index` under its cell lock,
    /// buffering any log events; returns observations processed.
    fn drain_slot(&self, index: usize, worker: usize, scratch: &mut DrainScratch) -> usize {
        fp!("pool.drain-slot");
        let mut guard = self.slots[index].cell.lock().expect("shard cell poisoned");
        let cell = &mut *guard;
        let n = drain_shard(
            index,
            &mut cell.shard,
            &self.config,
            scratch,
            self.logging,
            &mut cell.events,
        );
        drop(guard);
        if n > 0 {
            self.total.fetch_add(n as u64, Ordering::Relaxed);
            self.drains[worker].fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    /// Tries to claim one shard with backlog `>= threshold` away from
    /// its current owner (ring scan starting after `worker`, so workers
    /// spread over different victims). Returns whether a steal landed.
    fn try_steal(&self, worker: usize, threshold: usize) -> bool {
        let n = self.slots.len();
        let me = worker as u32;
        for step in 1..=n {
            let s = (worker + step) % n;
            let current = self.owner[s].load(Ordering::Acquire);
            if current == me {
                continue;
            }
            if self.slots[s].queue.backlog_hint() < threshold.max(1) {
                continue;
            }
            if self.owner[s]
                .compare_exchange(current, me, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                fp!("pool.steal-claimed");
                // Route future empty→non-empty wakeups to the new owner.
                self.slots[s]
                    .queue
                    .attach_notifier(Arc::clone(&self.notifiers[worker]));
                return true;
            }
        }
        false
    }

    /// Emits a checkpoint if the cadence is due; no-op otherwise.
    fn maybe_checkpoint(&self) -> io::Result<()> {
        if !self.checkpointing {
            return Ok(());
        }
        let _gate = self.gate.lock().expect("pool gate poisoned");
        {
            let mut control = self.control.lock().expect("pool control poisoned");
            let Some(stream) = control.checkpoint.as_mut() else {
                return Ok(());
            };
            if !stream.due(self.total.load(Ordering::Relaxed)) {
                return Ok(());
            }
        }
        self.checkpoint_gated()
    }

    /// Captures and emits one checkpoint; the caller holds the gate.
    fn checkpoint_gated(&self) -> io::Result<()> {
        fp!("pool.checkpoint-gate");
        let mut views = Vec::with_capacity(self.slots.len());
        let mut fold = MetricsFold::new();
        let mut flushes: Vec<Vec<MonitorEvent>> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let mut cell = slot.cell.lock().expect("shard cell poisoned");
            views.push(cell.shard.snapshot_view());
            fold.add(&cell.shard);
            flushes.push(std::mem::take(&mut cell.events));
        }
        let mut control = self.control.lock().expect("pool control poisoned");
        let control = &mut *control;
        if let Some(log) = control.log.as_mut() {
            for events in &flushes {
                for event in events {
                    log.record(event)?;
                }
            }
            log.flush()?;
        }
        // A detector without snapshot support skips the checkpoint (the
        // log was still flushed — covering *more* than a checkpoint is
        // always safe for recovery).
        let Some(shards) = views.into_iter().collect::<Option<Vec<_>>>() else {
            return Ok(());
        };
        let total: u64 = shards.iter().map(|s| s.processed).sum();
        // Mirror `Supervisor::snapshot`: one dead-letter entry per
        // DLQ-attached shard (pending or not) flips the format to v4.
        let mut dlq = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(d) = slot.queue.dlq() {
                let stats = d.stats();
                dlq.push(DlqSnapshot {
                    shard: i as u32,
                    samples: d.contents(),
                    captured: stats.captured,
                    replayed: stats.replayed,
                    overflow: stats.overflow,
                });
            }
        }
        let snapshot = SupervisorSnapshot {
            version: if dlq.is_empty() {
                SNAPSHOT_VERSION
            } else {
                SNAPSHOT_VERSION_DLQ
            },
            shards,
            metrics: fold.apply(&control.metrics).report(),
            dlq,
        };
        if let Some(stream) = control.checkpoint.as_mut() {
            stream.emit(&snapshot, total)?;
        }
        if let Some(bus) = self.bus.as_ref() {
            bus.publish(OpEvent::CheckpointWritten {
                total_processed: total,
            });
        }
        Ok(())
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            consumers: self.notifiers.len(),
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.notifiers.iter().map(|n| n.parks()).sum(),
            per_thread_drains: self
                .drains
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The drain loop of one pooled worker.
fn worker_loop(shared: &PoolShared, worker: usize) -> io::Result<()> {
    let me = worker as u32;
    let mut batch = DrainScratch::with_capacity(shared.config.drain_batch);
    let steal_threshold = shared.config.drain_batch;
    // Set after a wakeup that found the owned set dry: the push that
    // woke us may live in a shard we no longer (or never) owned, so
    // steal anything non-empty instead of re-parking over it.
    let mut desperate = false;
    loop {
        let mut drained = 0;
        for s in 0..shared.slots.len() {
            if shared.owner[s].load(Ordering::Acquire) != me {
                continue;
            }
            drained += shared.drain_slot(s, worker, &mut batch);
        }
        if drained > 0 {
            desperate = false;
            shared.maybe_checkpoint()?;
            continue;
        }
        let threshold = if desperate { 1 } else { steal_threshold };
        if shared.try_steal(worker, threshold) {
            desperate = false;
            continue;
        }
        match shared.notifiers[worker].wait() {
            Wakeup::Work => desperate = true,
            Wakeup::Shutdown => break,
        }
    }
    // Shutdown drain barrier: sweep every shard, ownership ignored,
    // until a clean pass. Producers stopped before join, so a clean
    // pass proves the queues this worker can see are empty for good.
    loop {
        fp!("pool.shutdown-sweep");
        let mut drained = 0;
        for s in 0..shared.slots.len() {
            drained += shared.drain_slot(s, worker, &mut batch);
        }
        if drained == 0 {
            break;
        }
    }
    Ok(())
}

/// How the pool reaches the supervisor.
enum Mode {
    /// The pool owns the dismantled supervisor outright; `join` hands
    /// it back reassembled.
    Owned {
        shared: Arc<PoolShared>,
        handles: Vec<JoinHandle<io::Result<()>>>,
    },
    /// The pool coexists with synchronous bridges: workers contend for
    /// the [`SharedSupervisor`] lock and drain through `poll_all`.
    Shared {
        notifier: Arc<WorkNotifier>,
        drains: Arc<Vec<AtomicU64>>,
        handles: Vec<JoinHandle<io::Result<()>>>,
        /// Queue handles cloned at spawn so `join` can latch the
        /// producer-facing shutdown flag without re-locking the
        /// supervisor.
        queues: Vec<ObsQueue>,
    },
}

/// A cheap, cloneable handle reading a pool's drain-plane telemetry
/// without borrowing the pool — what a metrics scraper thread holds
/// while the daemon keeps the [`ConsumerPool`] itself joinable.
///
/// Owned pools are referenced weakly so [`ConsumerPool::join`] can
/// still reclaim the supervisor; [`PoolStatsHandle::stats`] returns
/// `None` once the pool has joined.
#[derive(Clone)]
pub struct PoolStatsHandle {
    mode: StatsHandleMode,
}

#[derive(Clone)]
enum StatsHandleMode {
    Owned(std::sync::Weak<PoolShared>),
    Shared {
        notifier: Arc<WorkNotifier>,
        drains: Arc<Vec<AtomicU64>>,
    },
}

impl std::fmt::Debug for PoolStatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolStatsHandle")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PoolStatsHandle {
    /// Current drain-plane telemetry (relaxed atomics: approximate
    /// while workers run). `None` once an owned pool has joined.
    pub fn stats(&self) -> Option<PoolStats> {
        match &self.mode {
            StatsHandleMode::Owned(weak) => weak.upgrade().map(|shared| shared.stats()),
            StatsHandleMode::Shared { notifier, drains } => Some(PoolStats {
                consumers: drains.len(),
                steals: 0,
                parks: notifier.parks(),
                per_thread_drains: drains.iter().map(|d| d.load(Ordering::Relaxed)).collect(),
            }),
        }
    }
}

/// N parked consumer threads draining one supervisor's shards with
/// whole-shard ownership and bounded work-stealing (see the module
/// docs). `consumers: 1` reproduces the single-consumer runtime's
/// digests, reports, traces and checkpoints byte-for-byte — consumer
/// count is a pure execution-strategy knob.
pub struct ConsumerPool {
    mode: Mode,
}

impl std::fmt::Debug for ConsumerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ConsumerPool")
            .field("consumers", &stats.consumers)
            .field("steals", &stats.steals)
            .field("parks", &stats.parks)
            .finish_non_exhaustive()
    }
}

/// Drain-plane telemetry of a [`ConsumerPool`]. All counters are read
/// with relaxed atomics: exact once the pool has joined, approximate
/// while workers are live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub consumers: usize,
    /// Whole-shard ownership transfers (work-stealing events).
    pub steals: u64,
    /// Times a worker actually went to sleep waiting for work, summed
    /// over all workers.
    pub parks: u64,
    /// Observations drained per worker, by worker index.
    pub per_thread_drains: Vec<u64>,
}

/// What [`ConsumerPool::join`] hands back.
#[derive(Debug)]
pub struct PoolJoin {
    /// The reassembled supervisor, when the pool owned one
    /// ([`ConsumerPool::spawn`]); `None` for the shared flavour.
    pub supervisor: Option<Supervisor>,
    /// Final drain-plane telemetry.
    pub stats: PoolStats,
}

impl ConsumerPool {
    /// Spawns `supervisor.config().consumers` workers owning the
    /// supervisor outright. Clone shard senders *before* calling this;
    /// [`ConsumerPool::join`] hands the supervisor back.
    pub fn spawn(supervisor: Supervisor) -> Self {
        let consumers = supervisor.config().consumers;
        let shared = PoolShared::build(supervisor.into_parts(), consumers);
        let handles = (0..consumers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rejuv-consumer-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn consumer worker")
            })
            .collect();
        ConsumerPool {
            mode: Mode::Owned { shared, handles },
        }
    }

    /// Spawns workers over a [`SharedSupervisor`], coexisting with
    /// synchronous [`crate::MonitorBridge`]s. All workers share one
    /// notifier and contend for the supervisor lock; `join` returns
    /// `None` for the supervisor.
    pub fn spawn_shared(supervisor: &SharedSupervisor) -> Self {
        let parts = supervisor.with(|s| {
            let n = s.config().consumers;
            let notifier = Arc::new(WorkNotifier::new());
            let mut queues = Vec::with_capacity(s.shard_count());
            for shard in 0..s.shard_count() {
                let queue = s.queue(shard);
                queue.clear_shutdown();
                queue.attach_notifier(Arc::clone(&notifier));
                queues.push(queue.clone());
            }
            (n, notifier, queues)
        });
        let (consumers, notifier, queues) = parts;
        let drains: Arc<Vec<AtomicU64>> =
            Arc::new((0..consumers).map(|_| AtomicU64::new(0)).collect());
        let handles = (0..consumers)
            .map(|w| {
                let shared = supervisor.clone();
                let notifier = Arc::clone(&notifier);
                let drains = Arc::clone(&drains);
                std::thread::Builder::new()
                    .name(format!("rejuv-consumer-{w}"))
                    .spawn(move || shared_worker_loop(&shared, &notifier, &drains[w]))
                    .expect("spawn consumer worker")
            })
            .collect();
        ConsumerPool {
            mode: Mode::Shared {
                notifier,
                drains,
                handles,
                queues,
            },
        }
    }

    /// Current drain-plane telemetry (approximate while workers run).
    pub fn stats(&self) -> PoolStats {
        match &self.mode {
            Mode::Owned { shared, .. } => shared.stats(),
            Mode::Shared {
                notifier, drains, ..
            } => PoolStats {
                consumers: drains.len(),
                steals: 0,
                parks: notifier.parks(),
                per_thread_drains: drains.iter().map(|d| d.load(Ordering::Relaxed)).collect(),
            },
        }
    }

    /// Times a worker actually went to sleep, summed over the pool.
    pub fn parks(&self) -> u64 {
        self.stats().parks
    }

    /// A cloneable telemetry handle that outlives borrows of the pool
    /// (but not, for owned pools, [`ConsumerPool::join`] — stats read
    /// `None` after the supervisor is reclaimed).
    pub fn stats_handle(&self) -> PoolStatsHandle {
        let mode = match &self.mode {
            Mode::Owned { shared, .. } => StatsHandleMode::Owned(Arc::downgrade(shared)),
            Mode::Shared {
                notifier, drains, ..
            } => StatsHandleMode::Shared {
                notifier: Arc::clone(notifier),
                drains: Arc::clone(drains),
            },
        };
        PoolStatsHandle { mode }
    }

    /// Signals shutdown, waits for the loss-free drain barrier, flushes
    /// remaining buffered events shard-major, and hands back the
    /// reassembled supervisor (owned flavour) plus final telemetry.
    ///
    /// # Errors
    ///
    /// Propagates the first event-log / checkpoint-sink failure any
    /// worker hit.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked.
    pub fn join(self) -> io::Result<PoolJoin> {
        match self.mode {
            Mode::Owned { shared, handles } => {
                for notifier in &shared.notifiers {
                    notifier.shutdown();
                }
                let mut result = Ok(());
                for handle in handles {
                    let joined = handle.join().expect("consumer worker panicked");
                    if result.is_ok() {
                        result = joined;
                    }
                }
                result?;
                // With the drain plane gone, latch every queue's
                // shutdown flag so a blocking producer that is (or
                // gets) parked on a full queue wakes and returns short
                // instead of sleeping forever with no consumer left.
                for slot in &shared.slots {
                    slot.queue.shutdown();
                }
                let stats = shared.stats();
                let shared = Arc::try_unwrap(shared)
                    .map_err(|_| ())
                    .expect("all workers joined");
                let PoolShared {
                    config,
                    slots,
                    control,
                    bus,
                    ..
                } = shared;
                let mut control = control.into_inner().expect("pool control poisoned");
                let mut shards = Vec::with_capacity(slots.len());
                for slot in slots {
                    let cell = slot.cell.into_inner().expect("shard cell poisoned");
                    if let Some(log) = control.log.as_mut() {
                        for event in &cell.events {
                            log.record(event)?;
                        }
                    }
                    shards.push(cell.shard);
                }
                let supervisor = Supervisor::from_parts(SupervisorParts {
                    config,
                    shards,
                    metrics: control.metrics,
                    log: control.log,
                    checkpoint: control.checkpoint,
                    bus,
                });
                Ok(PoolJoin {
                    supervisor: Some(supervisor),
                    stats,
                })
            }
            Mode::Shared {
                notifier,
                drains,
                handles,
                queues,
            } => {
                notifier.shutdown();
                let mut result = Ok(());
                for handle in handles {
                    let joined = handle.join().expect("consumer worker panicked");
                    if result.is_ok() {
                        result = joined;
                    }
                }
                result?;
                for queue in &queues {
                    queue.shutdown();
                }
                Ok(PoolJoin {
                    supervisor: None,
                    stats: PoolStats {
                        consumers: drains.len(),
                        steals: 0,
                        parks: notifier.parks(),
                        per_thread_drains: drains
                            .iter()
                            .map(|d| d.load(Ordering::Relaxed))
                            .collect(),
                    },
                })
            }
        }
    }
}

/// The drain loop of one shared-mode worker: contend for the
/// supervisor lock, drain everything, park.
fn shared_worker_loop(
    shared: &SharedSupervisor,
    notifier: &WorkNotifier,
    drained_count: &AtomicU64,
) -> io::Result<()> {
    loop {
        let n = shared.with(|s| s.poll_all())?;
        if n > 0 {
            drained_count.fetch_add(n as u64, Ordering::Relaxed);
            continue;
        }
        match notifier.wait() {
            Wakeup::Work => continue,
            Wakeup::Shutdown => break,
        }
    }
    loop {
        let n = shared.with(|s| s.poll_all())?;
        if n == 0 {
            break;
        }
        drained_count.fetch_add(n as u64, Ordering::Relaxed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SupervisorConfig;
    use proptest::prelude::*;
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn sraa() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    /// A deterministic per-shard workload with occasional spikes.
    fn synthetic(shard: u64, i: u64) -> f64 {
        let spike = if i.is_multiple_of(97) { 40.0 } else { 0.0 };
        3.0 + ((i * 7 + shard * 13) % 23) as f64 * 0.6 + spike
    }

    fn preloaded(shards: usize, per_shard: usize, consumers: usize) -> Supervisor {
        let sup = Supervisor::with_shards(
            SupervisorConfig {
                queue_capacity: shards * per_shard + 1,
                drain_batch: 16,
                consumers,
                ..SupervisorConfig::default()
            },
            shards,
            |_| sraa(),
        );
        for s in 0..shards {
            for i in 0..per_shard {
                assert!(sup.ingest(s, synthetic(s as u64, i as u64)));
            }
        }
        sup
    }

    #[test]
    fn reports_identical_across_consumer_counts() {
        let reference = {
            let pool = ConsumerPool::spawn(preloaded(5, 3_000, 1));
            let joined = pool.join().unwrap();
            joined.supervisor.unwrap().report()
        };
        for consumers in [2usize, 4, 8] {
            let pool = ConsumerPool::spawn(preloaded(5, 3_000, consumers));
            let joined = pool.join().unwrap();
            assert_eq!(joined.stats.consumers, consumers);
            assert_eq!(
                joined.stats.per_thread_drains.iter().sum::<u64>(),
                15_000,
                "every observation drained exactly once at {consumers} consumers"
            );
            let report = joined.supervisor.unwrap().report();
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&report).unwrap(),
                "report bytes diverged at {consumers} consumers"
            );
        }
    }

    #[test]
    fn live_blocking_producers_are_loss_free_across_counts() {
        for consumers in [1usize, 2, 4] {
            let sup = Supervisor::with_shards(
                SupervisorConfig {
                    queue_capacity: 64,
                    drain_batch: 16,
                    consumers,
                    ..SupervisorConfig::default()
                },
                3,
                |_| sraa(),
            );
            let senders: Vec<_> = (0..3).map(|s| sup.sender(s)).collect();
            let pool = ConsumerPool::spawn(sup);
            std::thread::scope(|scope| {
                for (shard, sender) in senders.iter().enumerate() {
                    scope.spawn(move || {
                        for i in 0..10_000u64 {
                            sender.send_blocking(synthetic(shard as u64, i));
                        }
                    });
                }
            });
            let joined = pool.join().unwrap();
            let report = joined.supervisor.unwrap().report();
            assert_eq!(report.total_processed, 30_000, "{consumers} consumers");
            assert_eq!(report.total_dropped, 0);
        }
    }

    #[test]
    fn claim_table_steal_transfers_whole_shard_ownership() {
        let sup = preloaded(2, 100, 2);
        let shared = PoolShared::build(sup.into_parts(), 2);
        assert_eq!(shared.owner[0].load(Ordering::Relaxed), 0);
        assert_eq!(shared.owner[1].load(Ordering::Relaxed), 1);
        // Worker 0 steals shard 1 (backlog 100 >= threshold).
        assert!(shared.try_steal(0, 16));
        assert_eq!(shared.owner[1].load(Ordering::Relaxed), 0);
        assert_eq!(shared.stats().steals, 1);
        // Nothing left for worker 1 to steal above the backlog bar once
        // the queues are drained.
        let mut batch = DrainScratch::default();
        while shared.drain_slot(0, 0, &mut batch) > 0 {}
        while shared.drain_slot(1, 0, &mut batch) > 0 {}
        assert!(!shared.try_steal(1, 1), "empty shards are never stolen");
        assert_eq!(shared.owner[1].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn pool_workers_park_while_idle() {
        let sup = Supervisor::with_shards(
            SupervisorConfig {
                consumers: 3,
                ..SupervisorConfig::default()
            },
            3,
            |_| sraa(),
        );
        let sender = sup.sender(1);
        let pool = ConsumerPool::spawn(sup);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(pool.parks() >= 3, "all idle workers parked");
        sender.send(42.0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while sender.backlog() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(sender.backlog(), 0, "the wakeup drained the push");
        let joined = pool.join().unwrap();
        assert_eq!(joined.supervisor.unwrap().processed(1), 1);
    }

    #[test]
    fn pool_checkpoints_are_restorable_mid_run() {
        use std::sync::Mutex as StdMutex;
        let mut sup = preloaded(3, 2_000, 4);
        let seen: Arc<StdMutex<Vec<SupervisorSnapshot>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        sup.set_checkpoint(
            500,
            Box::new(move |snap| {
                sink_seen.lock().unwrap().push(snap.clone());
                Ok(())
            }),
        );
        let pool = ConsumerPool::spawn(sup);
        let supervisor = pool.join().unwrap().supervisor.unwrap();
        assert_eq!(supervisor.total_processed(), 6_000);
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "the cadence fired at least once");
        for snap in seen.iter() {
            let mut resumed = Supervisor::with_shards(
                SupervisorConfig {
                    consumers: 4,
                    ..SupervisorConfig::default()
                },
                3,
                |_| sraa(),
            );
            resumed.restore(snap).expect("pool checkpoints restore");
            // Every per-shard prefix lands on a drain-batch boundary
            // (or the end of the preload), which is what resumed
            // replay relies on.
            for shard in &snap.shards {
                assert!(shard.processed == 2_000 || shard.processed % 16 == 0);
            }
        }
    }

    /// One schedule step of the steal-interleaving property test.
    #[derive(Debug, Clone)]
    enum Step {
        /// `worker` drains one batch from every shard it owns.
        DrainOwned(usize),
        /// `worker` attempts a steal with the given backlog threshold.
        Steal(usize, usize),
        /// Push `count` more samples into `shard` (drops allowed).
        Push(usize, u8),
    }

    fn step_strategy(workers: usize, shards: usize) -> impl Strategy<Value = Step> {
        prop_oneof![
            (0..workers).prop_map(Step::DrainOwned),
            (0..workers, 1usize..32).prop_map(|(w, t)| Step::Steal(w, t)),
            (0..shards, 1u8..20).prop_map(|(s, n)| Step::Push(s, n)),
        ]
    }

    proptest! {
        /// Any single-threaded interleaving of drains, steals and
        /// pushes preserves per-shard FIFO order (digest equality with
        /// a serial reference) and exact drop accounting.
        #[test]
        fn arbitrary_steal_interleavings_preserve_order_and_accounting(
            steps in proptest::collection::vec(step_strategy(3, 4), 0..120),
        ) {
            const SHARDS: usize = 4;
            let sup = Supervisor::with_shards(
                SupervisorConfig {
                    queue_capacity: 8,
                    drain_batch: 4,
                    consumers: 3,
                    ..SupervisorConfig::default()
                },
                SHARDS,
                |_| sraa(),
            );
            let shared = PoolShared::build(sup.into_parts(), 3);
            let mut sent: Vec<u64> = vec![0; SHARDS];
            let mut accepted_values: Vec<Vec<f64>> = vec![Vec::new(); SHARDS];
            let mut batch = DrainScratch::default();
            for step in &steps {
                match step {
                    Step::DrainOwned(worker) => {
                        for s in 0..SHARDS {
                            if shared.owner[s].load(Ordering::Relaxed) == *worker as u32 {
                                shared.drain_slot(s, *worker, &mut batch);
                            }
                        }
                    }
                    Step::Steal(worker, threshold) => {
                        shared.try_steal(*worker, *threshold);
                    }
                    Step::Push(shard, count) => {
                        for _ in 0..*count {
                            let value = synthetic(*shard as u64, sent[*shard]);
                            sent[*shard] += 1;
                            if shared.slots[*shard].queue.push(value) {
                                accepted_values[*shard].push(value);
                            }
                        }
                    }
                }
            }
            // Shutdown barrier: every worker sweeps everything.
            for worker in 0..3 {
                loop {
                    let mut n = 0;
                    for s in 0..SHARDS {
                        n += shared.drain_slot(s, worker, &mut batch);
                    }
                    if n == 0 {
                        break;
                    }
                }
            }
            for s in 0..SHARDS {
                let cell = shared.slots[s].cell.lock().unwrap();
                // Exact accounting: accepted + dropped == sent, and
                // everything accepted was processed exactly once.
                prop_assert_eq!(
                    cell.shard.queue.accepted() + cell.shard.queue.dropped(),
                    sent[s]
                );
                prop_assert_eq!(cell.shard.processed, accepted_values[s].len() as u64);
                // FIFO order: the digest matches a serial reference fed
                // the accepted values in push order.
                let mut reference = sraa();
                let mut digest = {
                    let mut d = 0xcbf2_9ce4_8422_2325u64;
                    for &b in reference.name().as_bytes() {
                        d ^= u64::from(b);
                        d = d.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    d
                };
                for &value in &accepted_values[s] {
                    let decision = reference.observe(value);
                    // Word-at-a-time fold, mirroring the supervisor's
                    // `fold_sample`: one xor-multiply for the value
                    // bits, one for the decision.
                    digest = (digest ^ value.to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
                    digest = (digest ^ u64::from(decision.is_rejuvenate()))
                        .wrapping_mul(0x0000_0100_0000_01b3);
                }
                prop_assert_eq!(cell.shard.digest, digest, "shard {} order drifted", s);
            }
        }
    }
}
