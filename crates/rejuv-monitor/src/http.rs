//! Hand-rolled HTTP/1.1 responder serving the live observability
//! plane — zero dependencies, one thread, `std::net` only.
//!
//! [`MetricsServer::bind`] spawns a single accept thread over a
//! [`std::net::TcpListener`] that answers three `GET` routes:
//!
//! * `/metrics` — Prometheus text exposition
//!   ([`expo::render`](crate::expo::render)) of a point-in-time
//!   snapshot captured under one supervisor lock acquisition,
//! * `/healthz` — `ok` liveness probe,
//! * `/report` — the current [`MonitorReport`](crate::MonitorReport)
//!   as pretty-printed JSON.
//!
//! Scrapes are **read-only**: the handler only ever calls pure
//! supervisor accessors (via [`ExpoSnapshot::capture`]), so attaching
//! a scraper leaves reports, traces, digests and checkpoints
//! byte-identical to an unscraped run. The one observable side effect
//! is deliberate and off the data plane: each `/metrics` hit bumps a
//! process-local scrape counter and, when an
//! [`EventBus`](crate::EventBus) is attached to the supervisor,
//! publishes [`OpEvent::MetricsScraped`](crate::OpEvent) — the bus is
//! observational by contract.
//!
//! Requests are handled serially on the accept thread: a scrape
//! renders in microseconds, and serialising scrapes keeps the lock
//! pressure on the drain plane bounded by one snapshot at a time.
use crate::bridge::SharedSupervisor;
use crate::bus::{EventBus, OpEvent};
use crate::expo::{self, ExpoSnapshot};
use crate::pool::PoolStatsHandle;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) we will buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A live `/metrics` + `/healthz` + `/report` endpoint over a shared
/// supervisor. Dropping (or [`MetricsServer::shutdown`]) stops the
/// accept thread and releases its supervisor handle, so a daemon can
/// still reclaim the supervisor with
/// [`SharedSupervisor::try_into_inner`] afterwards.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("scrapes", &self.scrapes())
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free
    /// port — read it back with [`MetricsServer::local_addr`]) and
    /// spawns the responder thread. `drain` supplies the optional
    /// steal/park gauges of a consumer pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(
        addr: SocketAddr,
        shared: SharedSupervisor,
        drain: Option<PoolStatsHandle>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let bus = shared.with(|s| s.bus().cloned());
        let handle = {
            let stop = Arc::clone(&stop);
            let scrapes = Arc::clone(&scrapes);
            std::thread::Builder::new()
                .name("rejuv-metrics".to_owned())
                .spawn(move || serve(&listener, &stop, &scrapes, &shared, drain.as_ref(), &bus))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            scrapes,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `/metrics` requests served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops accepting, joins the responder thread and drops its
    /// supervisor handle. Equivalent to dropping the server; provided
    /// for explicit sequencing before
    /// [`SharedSupervisor::try_into_inner`].
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept loop: serially answer connections until `stop` flips.
fn serve(
    listener: &TcpListener,
    stop: &AtomicBool,
    scrapes: &AtomicU64,
    shared: &SharedSupervisor,
    drain: Option<&PoolStatsHandle>,
    bus: &Option<Arc<EventBus>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = handle_connection(stream, scrapes, shared, drain, bus);
    }
}

/// Reads one request head off the stream, up to the terminating blank
/// line or [`MAX_REQUEST_BYTES`].
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Parses the request line and serves the matching route.
fn handle_connection(
    mut stream: TcpStream,
    scrapes: &AtomicU64,
    shared: &SharedSupervisor,
    drain: Option<&PoolStatsHandle>,
    bus: &Option<Arc<EventBus>>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = read_request_head(&mut stream)?;
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match path {
        "/metrics" => {
            let serial = scrapes.fetch_add(1, Ordering::Relaxed) + 1;
            let pool_stats = drain.and_then(|d| d.stats());
            // One lock acquisition: every series in the body describes
            // the same instant.
            let body = shared.with(|s| {
                let mut snap = ExpoSnapshot::capture(s).with_scrapes(serial);
                if let Some(stats) = &pool_stats {
                    snap = snap.with_drain(stats);
                }
                expo::render(&snap)
            });
            if let Some(bus) = bus {
                bus.publish(OpEvent::MetricsScraped { serial });
            }
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        "/report" => {
            let report = shared.report();
            let body =
                serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_owned()) + "\n";
            respond(
                &mut stream,
                "200 OK",
                "application/json; charset=utf-8",
                &body,
            )
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

/// Writes a full HTTP/1.1 response and closes the connection.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{Supervisor, SupervisorConfig};
    use rejuv_core::{Sraa, SraaConfig};

    fn shared_supervisor() -> SharedSupervisor {
        let mut sup = Supervisor::new(SupervisorConfig::default());
        sup.add_shard(Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        )));
        SharedSupervisor::new(sup)
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_healthz_report_and_404() {
        let shared = shared_supervisor();
        let server = MetricsServer::bind("127.0.0.1:0".parse().unwrap(), shared.clone(), None)
            .expect("bind an ephemeral port");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        crate::expo::lint(&body).expect("served body lints clean");
        assert!(body.contains("rejuv_exposition_scrapes_total 1"));

        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("rejuv_exposition_scrapes_total 2"));

        let (head, body) = get(addr, "/report");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let report: crate::supervisor::MonitorReport =
            serde_json::from_str(&body).expect("report parses");
        assert_eq!(report.shards.len(), 1);

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        assert_eq!(server.scrapes(), 2);
        server.shutdown();
        // With the responder's handle gone the supervisor is
        // reclaimable again.
        assert!(shared.try_into_inner().is_ok());
    }

    #[test]
    fn bind_failure_surfaces_as_io_error() {
        let occupied = TcpListener::bind("127.0.0.1:0").expect("pre-bind");
        let addr = occupied.local_addr().unwrap();
        let err = MetricsServer::bind(addr, shared_supervisor(), None);
        assert!(err.is_err(), "second bind of {addr} must fail");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = MetricsServer::bind("127.0.0.1:0".parse().unwrap(), shared_supervisor(), None)
            .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
