//! Online rejuvenation monitoring runtime.
//!
//! The DSN 2006 detectors (`rejuv-core`) decide *when* to rejuvenate;
//! this crate is the serving layer that runs them against live
//! observation streams the way a field deployment would:
//!
//! * [`supervisor::Supervisor`] — N independent monitored *shards*
//!   (e.g. one per cluster host), each a bounded SPSC ingestion queue
//!   ([`queue::ObsQueue`]) draining in batches through a boxed
//!   [`rejuv_core::RejuvenationDetector`], with back-pressure accounting
//!   so overload drops samples instead of blocking the source,
//! * **checkpoint/resume** — [`Supervisor::snapshot`] captures every
//!   detector mid-epidemic via `rejuv_core::DetectorSnapshot`;
//!   [`Supervisor::restore`] resumes behaviour-identically. A
//!   count-based [`supervisor::CheckpointSink`] streams snapshots to
//!   [`checkpoint::save_snapshot`], which persists them atomically
//!   (write-temp-then-rename) so a crash never tears the file, and
//!   [`replay_events_resumed`] continues a recorded run from a
//!   checkpoint with byte-identical reports,
//! * [`consumer::ConsumerThread`] / [`pool::ConsumerPool`] — the drain
//!   plane: `SupervisorConfig::consumers` worker threads with static
//!   whole-shard ownership plus bounded work-stealing through an atomic
//!   claim table, each *parking* on a condvar whenever its queues are
//!   empty (zero idle CPU). Consumer count is a pure execution-strategy
//!   knob: digests, reports, traces and checkpoints are byte-identical
//!   across 1/2/4/8 consumers,
//! * [`metrics::MetricsRegistry`] — counters, gauges and fixed-bucket
//!   histograms whose exported report is byte-stable,
//! * [`event::EventLog`] — a JSONL event log (run header, observation
//!   batches, rejuvenations, snapshots) that doubles as a replay script:
//!   [`replay_events`] re-ingests a recorded log through a fresh
//!   supervisor and reproduces every decision bit-for-bit,
//! * [`bridge::MonitorBridge`] — a synchronous detector façade so an
//!   engine-driven model (single-host §3 system, cluster) feeds the
//!   runtime as if it were a plain detector,
//! * [`fleet::FleetConfig`] — a TOML-like fleet config file assigning
//!   each shard its own detector kind and baseline
//!   ([`rejuv_core::DetectorSpec`]); [`Supervisor::with_specs`] builds
//!   the mixed fleet, reports roll up per detector kind
//!   ([`supervisor::DetectorKindReport`]), and [`replay_fleet_events`]
//!   replays a recorded mixed-fleet log byte-identically.
//!
//! # Quickstart
//!
//! ```
//! use rejuv_core::{Sraa, SraaConfig};
//! use rejuv_monitor::{Supervisor, SupervisorConfig};
//!
//! let config = SraaConfig::builder(5.0, 5.0)
//!     .sample_size(2).buckets(5).depth(3).build()?;
//! let mut supervisor = Supervisor::with_shards(
//!     SupervisorConfig::default(),
//!     4,                                   // four monitored hosts
//!     |_| Box::new(Sraa::new(config)),
//! );
//!
//! // Producers push through cloneable senders (possibly from other
//! // threads); the supervisor drains in batches.
//! for shard in 0..4 {
//!     let sender = supervisor.sender(shard);
//!     for _ in 0..100 {
//!         sender.send(60.0); // a degraded stream
//!     }
//! }
//! while supervisor.poll_all()? > 0 {}
//!
//! let report = supervisor.report();
//! assert_eq!(report.total_processed, 400);
//! assert!(report.total_rejuvenations > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod assurance;
pub mod bridge;
pub mod bus;
pub mod checkpoint;
pub mod consumer;
pub mod dlq;
pub mod event;
pub mod expo;
pub mod fleet;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod supervisor;

pub use bridge::{MonitorBridge, SharedSupervisor};
pub use bus::{BusSubscription, EventBus, OpEvent};
pub use checkpoint::{load_snapshot, save_snapshot};
pub use consumer::ConsumerThread;
pub use dlq::{DeadLetterQueue, DlqStats};
pub use event::{read_events, read_events_tolerant, EventLog, MonitorEvent, SharedBuffer};
pub use expo::{DrainPlane, ExpoSnapshot, ShardRuntime};
pub use fleet::{FleetConfig, FleetError};
pub use http::MetricsServer;
pub use metrics::{Histogram, MetricsRegistry, MetricsReport};
pub use pool::{ConsumerPool, PoolJoin, PoolStats, PoolStatsHandle};
pub use queue::{ObsQueue, QueueBackend, Wakeup, WorkNotifier};
pub use supervisor::{
    CheckpointClock, CheckpointSink, DetectorKindReport, DlqSnapshot, MonitorReport, ReloadError,
    RestoreError, ShardReport, ShardSender, ShardSnapshot, Supervisor, SupervisorConfig,
    SupervisorSnapshot, SNAPSHOT_VERSION, SNAPSHOT_VERSION_DLQ,
};

use rejuv_core::{DetectorSpec, RejuvenationDetector};
use std::io;

/// Deterministically re-analyses a recorded event log: rebuilds a
/// supervisor with `shards` streams from `factory` and re-ingests every
/// [`MonitorEvent::Batch`] / [`MonitorEvent::TimedBatch`] in recorded
/// order (timestamps included, so latency histograms reproduce too).
///
/// Feeding the resulting supervisor's [`Supervisor::report`] the same
/// serialisation as the live run's report must yield identical bytes —
/// the replay-determinism contract `monitord --replay` checks in CI.
///
/// `Start`, `Rejuvenated` and `Snapshot` events are informational here:
/// decisions are *recomputed*, not trusted from the log.
///
/// # Errors
///
/// Propagates event-log write failures from the replaying supervisor
/// (only possible if a log was attached to it beforehand).
pub fn replay_events<F>(
    events: &[MonitorEvent],
    config: SupervisorConfig,
    shards: usize,
    factory: F,
) -> io::Result<Supervisor>
where
    F: FnMut(usize) -> Box<dyn RejuvenationDetector>,
{
    replay_events_resumed(events, config, shards, factory, None)
}

/// [`replay_events`] resuming from a mid-run checkpoint: the supervisor
/// is restored from `snapshot` first, and every observation the
/// checkpoint already covers (per shard, by sequence number) is skipped
/// instead of re-ingested.
///
/// Because live checkpoints land on drain-batch boundaries, the resumed
/// run drains exactly the batches the uninterrupted run drained after
/// the checkpoint — so its final report (digests, counters, histograms)
/// is byte-identical to an uninterrupted replay of the same log. A
/// batch the checkpoint covers only partially (possible only for
/// checkpoints not taken by this crate) is re-ingested from its first
/// uncovered value.
///
/// # Errors
///
/// `InvalidData` if the snapshot does not fit the rebuilt supervisor
/// (see [`Supervisor::restore`]); otherwise as [`replay_events`].
pub fn replay_events_resumed<F>(
    events: &[MonitorEvent],
    config: SupervisorConfig,
    shards: usize,
    factory: F,
    snapshot: Option<&SupervisorSnapshot>,
) -> io::Result<Supervisor>
where
    F: FnMut(usize) -> Box<dyn RejuvenationDetector>,
{
    let supervisor = Supervisor::with_shards(config, shards, factory);
    replay_into(supervisor, events, snapshot)
}

/// [`replay_events_resumed`] for a heterogeneous fleet: the supervisor
/// is rebuilt from one [`DetectorSpec`] per shard — exactly what a
/// [`MonitorEvent::FleetStart`] header carries — then the recorded
/// batches are re-ingested. Pass `snapshot` to resume from a mid-run
/// checkpoint with the same byte-identical-report guarantee.
///
/// # Errors
///
/// `InvalidData` if a spec fails detector validation or the snapshot
/// does not fit the rebuilt fleet; otherwise as [`replay_events`].
pub fn replay_fleet_events(
    events: &[MonitorEvent],
    config: SupervisorConfig,
    specs: &[DetectorSpec],
    snapshot: Option<&SupervisorSnapshot>,
) -> io::Result<Supervisor> {
    let supervisor = Supervisor::with_specs(config, specs)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    replay_into(supervisor, events, snapshot)
}

fn replay_into(
    mut supervisor: Supervisor,
    events: &[MonitorEvent],
    snapshot: Option<&SupervisorSnapshot>,
) -> io::Result<Supervisor> {
    let shards = supervisor.shard_count();
    let mut covered: Vec<u64> = vec![0; shards];
    if let Some(snapshot) = snapshot {
        supervisor
            .restore(snapshot)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        for (slot, shard) in covered.iter_mut().zip(&snapshot.shards) {
            *slot = shard.processed;
        }
    }
    for event in events {
        let (shard, seq, values, times) = match event {
            MonitorEvent::Batch { shard, seq, values } => (*shard as usize, *seq, values, None),
            MonitorEvent::TimedBatch {
                shard,
                seq,
                values,
                times,
            } => (*shard as usize, *seq, values, Some(times)),
            _ => continue,
        };
        let done = covered.get(shard).copied().unwrap_or(0);
        if seq + values.len() as u64 <= done {
            continue; // the checkpoint already covers this batch
        }
        let offset = done.saturating_sub(seq) as usize;
        for (i, &value) in values.iter().enumerate().skip(offset) {
            match times.and_then(|t| t.get(i)).copied() {
                Some(at) if at.is_finite() => supervisor.ingest_at(shard, value, at),
                _ => supervisor.ingest(shard, value),
            };
        }
        while supervisor.poll_shard(shard)? > 0 {}
    }
    Ok(supervisor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{Sraa, SraaConfig};

    fn detector() -> Box<dyn RejuvenationDetector> {
        Box::new(Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .buckets(2)
                .depth(1)
                .build()
                .unwrap(),
        ))
    }

    #[test]
    fn replay_reproduces_a_recorded_run_bitwise() {
        let config = SupervisorConfig {
            queue_capacity: 256,
            drain_batch: 16,
            snapshot_every: Some(50),
            ..SupervisorConfig::default()
        };
        let buffer = SharedBuffer::new();
        let mut live = Supervisor::with_shards(config, 3, |_| detector());
        live.set_log(EventLog::new(Box::new(buffer.clone())));

        // A deterministic mixed workload: shard 1 degrades, the rest
        // stay healthy.
        for i in 0..900u64 {
            let shard = (i % 3) as usize;
            let value = if shard == 1 {
                52.0
            } else {
                3.0 + (i % 4) as f64
            };
            live.ingest(shard, value);
            if i % 7 == 0 {
                live.poll_all().unwrap();
            }
        }
        while live.poll_all().unwrap() > 0 {}
        live.take_log().unwrap().flush().unwrap();

        let events = read_events(std::io::Cursor::new(buffer.contents())).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, MonitorEvent::Snapshot { .. })));

        let replayed = replay_events(&events, config, 3, |_| detector()).unwrap();
        let live_report = live.report();
        let replay_report = replayed.report();
        // Replay preserves batch grouping (each recorded Batch is
        // re-ingested and drained as one group), so the *entire* report
        // — digests, counters, histograms — must be identical, down to
        // the serialised bytes.
        assert_eq!(live_report, replay_report);
        assert_eq!(
            serde_json::to_string(&live_report).unwrap(),
            serde_json::to_string(&replay_report).unwrap()
        );
    }
}
