//! The structured JSONL event log.
//!
//! Every state change the runtime observes — run header, drained
//! observation batches, rejuvenation decisions, checkpoint points — is
//! appended as one JSON object per line, the same
//! one-self-contained-record-per-line format as
//! `rejuv_ecommerce::trace::EventTrace::write_jsonl`. A recorded log is
//! a complete replay script: `monitord --replay` re-ingests the `Batch`
//! lines through a fresh supervisor (rebuilt from the `Start` header)
//! and must reproduce every decision bit-for-bit.

use rejuv_core::DetectorSnapshot;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// One line of the monitor event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorEvent {
    /// Run header: enough configuration to rebuild an identical
    /// supervisor for replay. Always the first line of a log.
    Start {
        /// Number of monitored shards.
        shards: u32,
        /// Detector kind attached to every shard (a
        /// `RejuvenationDetector::name`).
        detector: String,
        /// Per-shard ingestion queue capacity.
        queue_capacity: u64,
        /// Maximum observations drained per poll.
        drain_batch: u64,
        /// Checkpoint cadence, observations per shard (`None` disabled).
        snapshot_every: Option<u64>,
    },
    /// One drained batch of observations, in processing order. `seq` is
    /// the shard-local index of the first value.
    Batch {
        /// Shard that processed the batch.
        shard: u32,
        /// Shard-local sequence number of `values[0]` (0-based).
        seq: u64,
        /// The observation values, oldest first.
        values: Vec<f64>,
    },
    /// The shard's detector decided to rejuvenate on observation `seq`.
    Rejuvenated {
        /// Shard whose detector fired.
        shard: u32,
        /// Shard-local sequence number of the triggering observation.
        seq: u64,
    },
    /// A detector state checkpoint taken after observation `seq`.
    Snapshot {
        /// Shard that was checkpointed.
        shard: u32,
        /// Shard-local sequence number of the last processed
        /// observation.
        seq: u64,
        /// The complete detector state.
        state: DetectorSnapshot,
    },
}

/// An append-only JSONL writer for [`MonitorEvent`]s.
pub struct EventLog {
    sink: Box<dyn Write + Send>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").finish_non_exhaustive()
    }
}

impl EventLog {
    /// Wraps any writer (a file, a `Vec<u8>` buffer, …).
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        EventLog { sink }
    }

    /// Appends one event as a JSON line.
    pub fn record(&mut self, event: &MonitorEvent) -> io::Result<()> {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

/// A cloneable in-memory byte sink for capturing an [`EventLog`]
/// without touching the filesystem (tests, in-process replay checks).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().expect("buffer lock poisoned").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .expect("buffer lock poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Reads a full JSONL event log back, skipping blank lines.
///
/// # Errors
///
/// I/O errors from the reader, or `InvalidData` for unparseable lines.
pub fn read_events<R: BufRead>(reader: R) -> io::Result<Vec<MonitorEvent>> {
    let mut events = Vec::new();
    for (number, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("event log line {}: {e}", number + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn events() -> Vec<MonitorEvent> {
        let mut sraa = Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .build()
                .unwrap(),
        );
        sraa.observe(3.5);
        vec![
            MonitorEvent::Start {
                shards: 2,
                detector: "SRAA".to_owned(),
                queue_capacity: 1024,
                drain_batch: 64,
                snapshot_every: Some(500),
            },
            MonitorEvent::Batch {
                shard: 0,
                seq: 0,
                values: vec![1.25, 40.0, 3.0],
            },
            MonitorEvent::Rejuvenated { shard: 0, seq: 2 },
            MonitorEvent::Snapshot {
                shard: 1,
                seq: 7,
                state: sraa.snapshot().unwrap(),
            },
        ]
    }

    #[test]
    fn log_round_trips_through_jsonl() {
        let buffer = SharedBuffer::new();
        {
            let mut log = EventLog::new(Box::new(buffer.clone()));
            for event in &events() {
                log.record(event).unwrap();
            }
            log.flush().unwrap();
        }
        let bytes = buffer.contents();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(text.lines().count(), 4, "one JSON object per line");
        let back = read_events(io::Cursor::new(bytes)).unwrap();
        assert_eq!(back, events());
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_rejected() {
        let ok = read_events(io::Cursor::new(b"\n\n".to_vec())).unwrap();
        assert!(ok.is_empty());
        let err = read_events(io::Cursor::new(b"not json\n".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }
}
