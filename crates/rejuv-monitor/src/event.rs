//! The structured JSONL event log.
//!
//! Every state change the runtime observes — run header, drained
//! observation batches, rejuvenation decisions, checkpoint points — is
//! appended as one JSON object per line, the same
//! one-self-contained-record-per-line format as
//! `rejuv_ecommerce::trace::EventTrace::write_jsonl`. A recorded log is
//! a complete replay script: `monitord --replay` re-ingests the `Batch`
//! lines through a fresh supervisor (rebuilt from the `Start` header)
//! and must reproduce every decision bit-for-bit.

use rejuv_core::{DetectorSnapshot, DetectorSpec};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// One line of the monitor event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorEvent {
    /// Run header: enough configuration to rebuild an identical
    /// supervisor for replay. Always the first line of a log.
    Start {
        /// Number of monitored shards.
        shards: u32,
        /// Detector kind attached to every shard (a
        /// `RejuvenationDetector::name`).
        detector: String,
        /// Per-shard ingestion queue capacity.
        queue_capacity: u64,
        /// Maximum observations drained per poll.
        drain_batch: u64,
        /// Checkpoint cadence, observations per shard (`None` disabled).
        snapshot_every: Option<u64>,
    },
    /// Heterogeneous-fleet run header: like [`MonitorEvent::Start`] but
    /// carrying one full [`DetectorSpec`] per shard, so a mixed-fleet
    /// log is self-contained — replay rebuilds the exact fleet without
    /// needing the original fleet config file. Written instead of
    /// `Start` whenever the supervisor was built from specs.
    FleetStart {
        /// Number of monitored shards (`specs.len()`).
        shards: u32,
        /// Per-shard detector specs, by shard index.
        specs: Vec<DetectorSpec>,
        /// Per-shard ingestion queue capacity.
        queue_capacity: u64,
        /// Maximum observations drained per poll.
        drain_batch: u64,
        /// Checkpoint cadence, observations per shard (`None` disabled).
        snapshot_every: Option<u64>,
    },
    /// One drained batch of observations, in processing order. `seq` is
    /// the shard-local index of the first value.
    Batch {
        /// Shard that processed the batch.
        shard: u32,
        /// Shard-local sequence number of `values[0]` (0-based).
        seq: u64,
        /// The observation values, oldest first.
        values: Vec<f64>,
    },
    /// Version-2 batch record: a drained batch whose samples carry
    /// simulation timestamps. Written instead of [`MonitorEvent::Batch`]
    /// whenever at least one sample in the batch is timed, so replay can
    /// rebuild the inter-observation latency histogram bit-for-bit.
    /// Logs written before timestamps existed contain only `Batch`
    /// records and still replay unchanged.
    TimedBatch {
        /// Shard that processed the batch.
        shard: u32,
        /// Shard-local sequence number of `values[0]` (0-based).
        seq: u64,
        /// The observation values, oldest first.
        values: Vec<f64>,
        /// Per-sample timestamps (seconds of simulation time), aligned
        /// with `values`; untimed samples are `NaN` (serialised `null`).
        times: Vec<f64>,
    },
    /// The shard's detector decided to rejuvenate on observation `seq`.
    Rejuvenated {
        /// Shard whose detector fired.
        shard: u32,
        /// Shard-local sequence number of the triggering observation.
        seq: u64,
    },
    /// A detector state checkpoint taken after observation `seq`.
    Snapshot {
        /// Shard that was checkpointed.
        shard: u32,
        /// Shard-local sequence number of the last processed
        /// observation.
        seq: u64,
        /// The complete detector state.
        state: DetectorSnapshot,
    },
}

/// An append-only JSONL writer for [`MonitorEvent`]s.
pub struct EventLog {
    sink: Box<dyn Write + Send>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog").finish_non_exhaustive()
    }
}

impl EventLog {
    /// Wraps any writer (a file, a `Vec<u8>` buffer, …).
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        EventLog { sink }
    }

    /// Appends one event as a JSON line.
    pub fn record(&mut self, event: &MonitorEvent) -> io::Result<()> {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

/// A cloneable in-memory byte sink for capturing an [`EventLog`]
/// without touching the filesystem (tests, in-process replay checks).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().expect("buffer lock poisoned").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .expect("buffer lock poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Reads a full JSONL event log back, skipping blank lines.
///
/// # Errors
///
/// I/O errors from the reader, or `InvalidData` for unparseable lines.
pub fn read_events<R: BufRead>(reader: R) -> io::Result<Vec<MonitorEvent>> {
    let mut events = Vec::new();
    for (number, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("event log line {}: {e}", number + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Reads a JSONL event log that may end in a *torn* final line — the
/// footprint of a crash (or `SIGTERM`) that caught the writer mid-line.
///
/// All complete lines are parsed exactly as [`read_events`] would; a
/// final line that fails to parse is dropped and returned as
/// `Some(line)` so the caller can report it. A parse failure on any
/// *non-final* line is still an error: mid-log corruption is never
/// silently skipped.
///
/// # Errors
///
/// I/O errors from the reader, or `InvalidData` for an unparseable line
/// that is not the last line of the log.
pub fn read_events_tolerant<R: BufRead>(
    reader: R,
) -> io::Result<(Vec<MonitorEvent>, Option<String>)> {
    let lines: Vec<String> = reader.lines().collect::<io::Result<_>>()?;
    let mut events = Vec::new();
    let last_content = lines
        .iter()
        .rposition(|l| !l.trim().is_empty())
        .unwrap_or(0);
    for (number, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(event) => events.push(event),
            Err(_) if number == last_content => {
                return Ok((events, Some(line.clone())));
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("event log line {}: {e}", number + 1),
                ));
            }
        }
    }
    Ok((events, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};

    fn events() -> Vec<MonitorEvent> {
        let mut sraa = Sraa::new(
            SraaConfig::builder(5.0, 5.0)
                .sample_size(2)
                .build()
                .unwrap(),
        );
        sraa.observe(3.5);
        vec![
            MonitorEvent::Start {
                shards: 2,
                detector: "SRAA".to_owned(),
                queue_capacity: 1024,
                drain_batch: 64,
                snapshot_every: Some(500),
            },
            MonitorEvent::FleetStart {
                shards: 2,
                specs: vec![
                    rejuv_core::DetectorSpec::new(rejuv_core::DetectorKind::Sraa),
                    rejuv_core::DetectorSpec::new(rejuv_core::DetectorKind::Cusum),
                ],
                queue_capacity: 1024,
                drain_batch: 64,
                snapshot_every: None,
            },
            MonitorEvent::Batch {
                shard: 0,
                seq: 0,
                values: vec![1.25, 40.0, 3.0],
            },
            MonitorEvent::Rejuvenated { shard: 0, seq: 2 },
            MonitorEvent::TimedBatch {
                shard: 1,
                seq: 3,
                values: vec![2.0, 6.5],
                times: vec![0.25, 1.75],
            },
            MonitorEvent::Snapshot {
                shard: 1,
                seq: 7,
                state: sraa.snapshot().unwrap(),
            },
        ]
    }

    #[test]
    fn log_round_trips_through_jsonl() {
        let buffer = SharedBuffer::new();
        {
            let mut log = EventLog::new(Box::new(buffer.clone()));
            for event in &events() {
                log.record(event).unwrap();
            }
            log.flush().unwrap();
        }
        let bytes = buffer.contents();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(text.lines().count(), 6, "one JSON object per line");
        let back = read_events(io::Cursor::new(bytes)).unwrap();
        assert_eq!(back, events());
    }

    #[test]
    fn timed_batch_nan_times_round_trip_as_null() {
        let event = MonitorEvent::TimedBatch {
            shard: 0,
            seq: 0,
            values: vec![1.0, 2.0],
            times: vec![0.5, f64::NAN],
        };
        let line = serde_json::to_string(&event).unwrap();
        assert!(line.contains("null"), "untimed entries serialise as null");
        let back: MonitorEvent = serde_json::from_str(&line).unwrap();
        let MonitorEvent::TimedBatch { times, values, .. } = back else {
            panic!("variant survives");
        };
        assert_eq!(values, vec![1.0, 2.0]);
        assert_eq!(times[0], 0.5);
        assert!(times[1].is_nan());
    }

    #[test]
    fn tolerant_reader_drops_only_a_torn_final_line() {
        let buffer = SharedBuffer::new();
        {
            let mut log = EventLog::new(Box::new(buffer.clone()));
            for event in &events() {
                log.record(event).unwrap();
            }
        }
        let mut bytes = buffer.contents();
        // A crash mid-write leaves a truncated trailing line.
        bytes.extend_from_slice(b"{\"Batch\":{\"shard\":0,\"se");
        let (parsed, torn) = read_events_tolerant(io::Cursor::new(bytes.clone())).unwrap();
        assert_eq!(parsed, events());
        assert!(torn.expect("torn tail reported").starts_with("{\"Batch\""));

        // The same garbage mid-log is corruption, not a torn tail.
        let mut corrupted = b"not json\n".to_vec();
        corrupted.extend_from_slice(&bytes);
        let err = read_events_tolerant(io::Cursor::new(corrupted)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A clean log reports no torn tail.
        let clean = {
            let buffer = SharedBuffer::new();
            let mut log = EventLog::new(Box::new(buffer.clone()));
            log.record(&events()[0]).unwrap();
            buffer.contents()
        };
        let (parsed, torn) = read_events_tolerant(io::Cursor::new(clean)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(torn.is_none());
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_rejected() {
        let ok = read_events(io::Cursor::new(b"\n\n".to_vec())).unwrap();
        assert!(ok.is_empty());
        let err = read_events(io::Cursor::new(b"not json\n".to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }
}
