//! In-process broadcast bus for operational events.
//!
//! The monitoring plane's *data* artifacts (reports, traces,
//! checkpoints, decision digests) are deterministic by construction and
//! must never observe wall-clock scheduling. Operators still need to
//! see what the runtime is doing — when a queue saturates, when samples
//! are dead-lettered and replayed, when a checkpoint lands, when a
//! fleet hot-reload rebuilds a shard. [`EventBus`] carries exactly that
//! side-channel: a broadcast of [`OpEvent`]s that is purely
//! observational. Nothing downstream of the bus feeds back into
//! detector decisions, so attaching (or not attaching) a bus leaves
//! every artifact byte-identical.
//!
//! Design, mirroring the queue plane's loss philosophy: each subscriber
//! owns a *bounded* buffer, and a publish that finds a subscriber full
//! drops the event **for that subscriber only** and counts it in the
//! subscriber's `overflow` tally. Publishers never block and never
//! allocate beyond the event itself; a slow or abandoned subscriber
//! cannot stall the drain path that publishes to it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// An operational event published on the [`EventBus`].
///
/// Events describe *runtime behaviour*, not monitored data: they carry
/// shard indices and counts, never the sample values that flow through
/// the detectors (the dead-letter queue itself holds those).
#[derive(Debug, Clone, PartialEq)]
pub enum OpEvent {
    /// A fleet hot-reload rebuilt this shard's detector in place.
    ShardRebuilt {
        /// Shard index.
        shard: u32,
        /// Detector name before the rebuild.
        from: String,
        /// Detector name after the rebuild.
        to: String,
    },
    /// A checkpoint snapshot was written to the configured sink.
    CheckpointWritten {
        /// Total observations processed at the time of the snapshot.
        total_processed: u64,
    },
    /// A lossy push found the shard queue full and the dead-letter
    /// queue transitioned from empty to non-empty: the shard is
    /// saturated and capture has begun.
    QueueSaturated {
        /// Shard index.
        shard: u32,
    },
    /// Samples a full queue would have dropped were captured into the
    /// shard's dead-letter queue instead.
    SamplesDeadLettered {
        /// Shard index.
        shard: u32,
        /// Number of samples captured by this push.
        count: u64,
    },
    /// Dead-lettered samples were re-ingested into their shard queue
    /// (in capture order) after back-pressure cleared.
    DlqReplayed {
        /// Shard index.
        shard: u32,
        /// Number of samples replayed by this drain.
        count: u64,
    },
    /// The dead-letter queue itself was full: samples were lost for
    /// real, with accounting.
    DlqOverflow {
        /// Shard index.
        shard: u32,
        /// Number of samples lost by this push.
        count: u64,
    },
    /// A detector crossed its threshold and fired a rejuvenation.
    RejuvenationFired {
        /// Shard index.
        shard: u32,
        /// Sequence number (0-based, per shard) of the observation
        /// whose decision fired — the same `seq` the event log records.
        seq: u64,
    },
    /// The live observability plane served a `/metrics` scrape.
    /// Published by [`MetricsServer`](crate::MetricsServer) only —
    /// scrapes never touch the data plane, so this is the sole trace a
    /// scraper leaves, and it rides the observational bus by design.
    MetricsScraped {
        /// 1-based scrape serial within this process.
        serial: u64,
    },
}

/// Per-subscriber state: a bounded mailbox plus overflow accounting.
#[derive(Debug)]
struct SubInner {
    queue: Mutex<VecDeque<OpEvent>>,
    available: Condvar,
    capacity: usize,
    overflow: AtomicU64,
}

/// A broadcast bus for [`OpEvent`]s. Cheap to clone behind an `Arc`;
/// publishing with zero subscribers is a no-op.
#[derive(Debug, Default)]
pub struct EventBus {
    subscribers: Mutex<Vec<Arc<SubInner>>>,
    published: AtomicU64,
}

impl EventBus {
    /// A bus with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new subscriber with a mailbox holding at most
    /// `capacity` undelivered events.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn subscribe(&self, capacity: usize) -> BusSubscription {
        assert!(capacity > 0, "subscription capacity must be positive");
        let inner = Arc::new(SubInner {
            queue: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            available: Condvar::new(),
            capacity,
            overflow: AtomicU64::new(0),
        });
        self.subscribers
            .lock()
            .expect("bus subscriber lock poisoned")
            .push(Arc::clone(&inner));
        BusSubscription { inner }
    }

    /// Broadcasts `event` to every live subscriber. Never blocks: a
    /// full mailbox drops the event for that subscriber and bumps its
    /// overflow counter. Mailboxes whose [`BusSubscription`] was
    /// dropped are pruned on the way through.
    pub fn publish(&self, event: OpEvent) {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut subs = self
            .subscribers
            .lock()
            .expect("bus subscriber lock poisoned");
        subs.retain(|sub| {
            // The bus and the subscription each hold one reference; a
            // count of one means the subscriber side is gone.
            if Arc::strong_count(sub) == 1 {
                return false;
            }
            let mut queue = sub.queue.lock().expect("bus mailbox lock poisoned");
            if queue.len() >= sub.capacity {
                sub.overflow.fetch_add(1, Ordering::Relaxed);
            } else {
                queue.push_back(event.clone());
                sub.available.notify_one();
            }
            true
        });
    }

    /// Total events ever published (whether or not anyone was listening).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Number of currently registered subscribers (dropped
    /// subscriptions are pruned lazily, on publish).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .lock()
            .expect("bus subscriber lock poisoned")
            .len()
    }
}

/// A receiving endpoint created by [`EventBus::subscribe`]. Dropping it
/// unsubscribes (lazily, at the next publish).
#[derive(Debug)]
pub struct BusSubscription {
    inner: Arc<SubInner>,
}

impl BusSubscription {
    /// Pops the oldest undelivered event, if any. Never blocks.
    pub fn try_recv(&self) -> Option<OpEvent> {
        self.inner
            .queue
            .lock()
            .expect("bus mailbox lock poisoned")
            .pop_front()
    }

    /// Waits up to `timeout` for an event, then pops the oldest.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<OpEvent> {
        let queue = self.inner.queue.lock().expect("bus mailbox lock poisoned");
        let (mut queue, _timed_out) = self
            .inner
            .available
            .wait_timeout_while(queue, timeout, |q| q.is_empty())
            .expect("bus mailbox lock poisoned");
        queue.pop_front()
    }

    /// Drains every undelivered event, oldest first.
    pub fn drain(&self) -> Vec<OpEvent> {
        self.inner
            .queue
            .lock()
            .expect("bus mailbox lock poisoned")
            .drain(..)
            .collect()
    }

    /// Events dropped because this subscriber's mailbox was full.
    pub fn overflow(&self) -> u64 {
        self.inner.overflow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_without_subscribers_is_a_noop() {
        let bus = EventBus::new();
        bus.publish(OpEvent::QueueSaturated { shard: 0 });
        assert_eq!(bus.published(), 1);
        assert_eq!(bus.subscriber_count(), 0);
    }

    #[test]
    fn broadcast_reaches_every_subscriber_in_order() {
        let bus = EventBus::new();
        let a = bus.subscribe(8);
        let b = bus.subscribe(8);
        bus.publish(OpEvent::QueueSaturated { shard: 1 });
        bus.publish(OpEvent::DlqReplayed { shard: 1, count: 3 });
        for sub in [&a, &b] {
            assert_eq!(sub.try_recv(), Some(OpEvent::QueueSaturated { shard: 1 }));
            assert_eq!(
                sub.try_recv(),
                Some(OpEvent::DlqReplayed { shard: 1, count: 3 })
            );
            assert_eq!(sub.try_recv(), None);
        }
    }

    #[test]
    fn full_mailbox_drops_and_counts_per_subscriber() {
        let bus = EventBus::new();
        let small = bus.subscribe(1);
        let big = bus.subscribe(8);
        bus.publish(OpEvent::QueueSaturated { shard: 0 });
        bus.publish(OpEvent::QueueSaturated { shard: 1 });
        assert_eq!(small.overflow(), 1);
        assert_eq!(big.overflow(), 0);
        assert_eq!(small.drain().len(), 1);
        assert_eq!(big.drain().len(), 2);
    }

    #[test]
    fn dropped_subscription_is_pruned_on_publish() {
        let bus = EventBus::new();
        let sub = bus.subscribe(4);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        bus.publish(OpEvent::QueueSaturated { shard: 0 });
        assert_eq!(bus.subscriber_count(), 0);
    }

    #[test]
    fn recv_timeout_sees_a_cross_thread_publish() {
        let bus = Arc::new(EventBus::new());
        let sub = bus.subscribe(4);
        let publisher = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || {
                bus.publish(OpEvent::CheckpointWritten {
                    total_processed: 42,
                })
            })
        };
        let got = sub.recv_timeout(Duration::from_secs(5));
        publisher.join().unwrap();
        assert_eq!(
            got,
            Some(OpEvent::CheckpointWritten {
                total_processed: 42
            })
        );
    }
}
