//! The steady-state response-time distribution of an M/M/c queue.
//!
//! Implements eq. (1) (CDF), eq. (2) (mean) and eq. (3) (variance) of the
//! paper, plus the phase-type representation of its Figs. 2 and 3: with
//! probability `Wc` the job never queues and its response time is
//! `Exp(µ)`; with probability `1 − Wc` it is the hypoexponential
//! `Exp(µ) + Exp(cµ − λ)`.

use crate::{MmcQueue, QueueingError};
use rejuv_ctmc::{Ctmc, PhaseType};
use serde::{Deserialize, Serialize};

/// The response-time distribution `Xi` of a stable FCFS M/M/c queue.
///
/// # Example
///
/// ```
/// use rejuv_queueing::MmcQueue;
///
/// let rt = MmcQueue::new(16, 1.6, 0.2)?.response_time()?;
/// // Eq. (2): mean = 1/µ + (1 − Wc)/(cµ − λ).
/// assert!((rt.mean() - 5.0055).abs() < 1e-3);
/// // Eq. (1) CDF at the mean is a proper probability.
/// let f = rt.cdf(rt.mean());
/// assert!(f > 0.6 && f < 0.7);
/// # Ok::<(), rejuv_queueing::QueueingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeDistribution {
    mu: f64,
    /// `cµ − λ`, the rate of the queueing stage.
    drain_rate: f64,
    /// `Wc`, the probability of not queueing.
    wc: f64,
}

impl ResponseTimeDistribution {
    /// Builds the response-time distribution for a stable queue.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn for_queue(queue: &MmcQueue) -> Result<Self, QueueingError> {
        let wc = queue.wc()?;
        Ok(ResponseTimeDistribution {
            mu: queue.service_rate(),
            drain_rate: queue.servers() as f64 * queue.service_rate() - queue.arrival_rate(),
            wc,
        })
    }

    /// The per-server service rate `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The queueing-stage rate `cµ − λ`.
    pub fn drain_rate(&self) -> f64 {
        self.drain_rate
    }

    /// `Wc`: the steady-state probability an arriving job does not queue.
    pub fn wc(&self) -> f64 {
        self.wc
    }

    /// Eq. (2): `E(Xi) = 1/µ + (1 − Wc)/(cµ − λ)`.
    pub fn mean(&self) -> f64 {
        1.0 / self.mu + (1.0 - self.wc) / self.drain_rate
    }

    /// Eq. (3): `Var(Xi) = 1/µ² + (1 − Wc²)/(cµ − λ)²`.
    pub fn variance(&self) -> f64 {
        1.0 / (self.mu * self.mu) + (1.0 - self.wc * self.wc) / (self.drain_rate * self.drain_rate)
    }

    /// Standard deviation of the response time.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Eq. (1): the CDF of the response time.
    ///
    /// The closed form has a removable singularity at `λ = (c − 1)µ`
    /// (where the two stage rates coincide); this implementation switches
    /// to the Erlang limit there, so it is valid for every stable queue.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let mu = self.mu;
        let d = self.drain_rate;
        let exp_mu = 1.0 - (-mu * x).exp();
        let hypo = if (d - mu).abs() > 1e-9 * mu {
            // CDF of Exp(µ) + Exp(d) with distinct rates, as in eq. (1):
            // d/(d−µ)·(1−e^{−µx}) − µ/(d−µ)·(1−e^{−dx}).
            (d * exp_mu - mu * (1.0 - (-d * x).exp())) / (d - mu)
        } else {
            // Erlang-2 limit: 1 − e^{−µx}(1 + µx).
            1.0 - (-mu * x).exp() * (1.0 + mu * x)
        };
        self.wc * exp_mu + (1.0 - self.wc) * hypo
    }

    /// Probability density of the response time.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let mu = self.mu;
        let d = self.drain_rate;
        let f_exp = mu * (-mu * x).exp();
        let f_hypo = if (d - mu).abs() > 1e-9 * mu {
            mu * d / (d - mu) * ((-mu * x).exp() - (-d * x).exp())
        } else {
            mu * mu * x * (-mu * x).exp()
        };
        self.wc * f_exp + (1.0 - self.wc) * f_hypo
    }

    /// Upper-tail probability `P(Xi > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile of the response time by bisection on [`Self::cdf`].
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidParameter`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64, QueueingError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(QueueingError::InvalidParameter {
                name: "p",
                value: p,
                expected: "a probability in (0, 1)",
            });
        }
        let mut hi = self.mean();
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * (1.0 + hi) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// The phase-type representation of Fig. 2: entry phase `Exp(µ)`,
    /// which with probability `1 − Wc` is followed by the queueing phase
    /// `Exp(cµ − λ)`.
    pub fn phase_type(&self) -> PhaseType {
        let mu = self.mu;
        let d = self.drain_rate;
        PhaseType::new(
            vec![1.0, 0.0],
            vec![vec![-mu, (1.0 - self.wc) * mu], vec![0.0, -d]],
        )
        .expect("response-time PH parameters are valid by construction")
    }

    /// The 3-state absorbing CTMC of Fig. 3 (states `1`, `2` and the
    /// absorbing state `3`, zero-indexed here), together with its initial
    /// distribution (all mass on state 0).
    pub fn to_ctmc(&self) -> (Ctmc, Vec<f64>) {
        self.phase_type().to_ctmc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_rt() -> ResponseTimeDistribution {
        MmcQueue::new(16, 1.6, 0.2)
            .unwrap()
            .response_time()
            .unwrap()
    }

    #[test]
    fn eq2_eq3_against_phase_type_moments() {
        let rt = paper_rt();
        let ph = rt.phase_type();
        assert!((ph.mean().unwrap() - rt.mean()).abs() < 1e-10);
        assert!((ph.variance().unwrap() - rt.variance()).abs() < 1e-10);
    }

    #[test]
    fn low_load_is_nearly_exponential() {
        // §4.1: below λ = 1 tx/s both mean and std dev sit at ~5.
        for lambda in [0.1, 0.5, 1.0] {
            let rt = MmcQueue::new(16, lambda, 0.2)
                .unwrap()
                .response_time()
                .unwrap();
            assert!(
                (rt.mean() - 5.0).abs() < 0.01,
                "λ = {lambda}: {}",
                rt.mean()
            );
            assert!(
                (rt.std_dev() - 5.0).abs() < 0.01,
                "λ = {lambda}: {}",
                rt.std_dev()
            );
        }
    }

    #[test]
    fn mean_and_std_diverge_at_high_load() {
        let rt = MmcQueue::new(16, 3.0, 0.2)
            .unwrap()
            .response_time()
            .unwrap();
        assert!(rt.mean() > 5.3);
        assert!(rt.std_dev() > 5.3);
    }

    #[test]
    fn cdf_matches_phase_type_cdf() {
        let rt = paper_rt();
        let at = rt.phase_type().to_absorption_times().unwrap();
        for x in [0.5, 2.0, 5.0, 10.0, 20.0] {
            let closed = rt.cdf(x);
            let numeric = at.cdf(x).unwrap();
            assert!(
                (closed - numeric).abs() < 1e-9,
                "x = {x}: {closed} vs {numeric}"
            );
        }
    }

    #[test]
    fn pdf_is_derivative_of_cdf() {
        let rt = paper_rt();
        let h = 1e-6;
        for x in [1.0, 5.0, 12.0] {
            let num = (rt.cdf(x + h) - rt.cdf(x - h)) / (2.0 * h);
            assert!((num - rt.pdf(x)).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn cdf_limits() {
        let rt = paper_rt();
        assert_eq!(rt.cdf(0.0), 0.0);
        assert_eq!(rt.cdf(-5.0), 0.0);
        assert!(rt.cdf(200.0) > 0.999999);
        assert!((rt.survival(200.0) + rt.cdf(200.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_rate_singularity_is_removable() {
        // λ = (c − 1)µ makes cµ − λ = µ: the Erlang-2 branch.
        let rt = MmcQueue::new(4, 3.0, 1.0).unwrap().response_time().unwrap();
        assert!((rt.drain_rate() - rt.mu()).abs() < 1e-12);
        // CDF must still be a valid, monotone distribution.
        let mut last = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let f = rt.cdf(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= last);
            last = f;
        }
        // And it must agree with the phase-type numeric CDF.
        let at = rt.phase_type().to_absorption_times().unwrap();
        for x in [0.5, 1.0, 3.0] {
            assert!((rt.cdf(x) - at.cdf(x).unwrap()).abs() < 1e-8, "x = {x}");
        }
    }

    #[test]
    fn near_singular_rates_stay_accurate() {
        // λ very close to (c−1)µ stresses the cancellation in eq. (1).
        let mu = 1.0;
        let lambda = 3.0 - 1e-7;
        let rt = MmcQueue::new(4, lambda, mu)
            .unwrap()
            .response_time()
            .unwrap();
        let at = rt.phase_type().to_absorption_times().unwrap();
        for x in [0.5, 1.5, 4.0] {
            assert!((rt.cdf(x) - at.cdf(x).unwrap()).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let rt = paper_rt();
        for p in [0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = rt.quantile(p).unwrap();
            assert!((rt.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
        assert!(rt.quantile(0.0).is_err());
        assert!(rt.quantile(1.0).is_err());
    }

    #[test]
    fn mm1_response_time_is_exponential() {
        // Classic result: M/M/1 response time ~ Exp(µ − λ).
        let rt = MmcQueue::new(1, 0.5, 1.0).unwrap().response_time().unwrap();
        let rate: f64 = 0.5;
        for x in [0.5, 1.0, 3.0, 8.0] {
            let expected = 1.0 - (-rate * x).exp();
            assert!((rt.cdf(x) - expected).abs() < 1e-10, "x = {x}");
        }
        assert!((rt.mean() - 2.0).abs() < 1e-10);
    }
}
