//! The exact distribution of the sample-mean response time `X̄n`
//! (the paper's Figs. 4 and 5).
//!
//! §4.1 of the paper derives the distribution of
//! `X̄n = (1/n) Σ Xi` by
//!
//! 1. multiplying every rate of the Fig. 3 response-time chain by `n`
//!    (giving the distribution of `Xi / n`), and
//! 2. concatenating `n` copies of that chain, fusing the absorbing state
//!    of copy `j` with the entry state of copy `j + 1` — the `2n + 1`-
//!    state chain of Fig. 4.
//!
//! The time to absorption of that chain is distributed exactly as `X̄n`.
//! The paper evaluated it with SHARPE; here [`rejuv_ctmc`] does the job.

use crate::{QueueingError, ResponseTimeDistribution};
use rejuv_ctmc::{AbsorptionTimes, Ctmc};
use rejuv_stats::Normal;
use serde::{Deserialize, Serialize};

/// The exact and approximate distribution of the average of `n`
/// independent response times.
///
/// # Example
///
/// ```
/// use rejuv_queueing::{MmcQueue, SampleMean};
///
/// let rt = MmcQueue::new(16, 1.6, 0.2)?.response_time()?;
/// let sm = SampleMean::new(&rt, 30)?;
/// // The exact mean of X̄n equals the single-observation mean …
/// assert!((sm.exact().mean()? - rt.mean()).abs() < 1e-8);
/// // … while the variance shrinks by a factor of n.
/// assert!((sm.exact().variance()? - rt.variance() / 30.0).abs() < 1e-8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SampleMean {
    n: usize,
    rt_mean: f64,
    rt_variance: f64,
    exact: AbsorptionTimes,
}

impl SampleMean {
    /// Builds the Fig. 4 chain for sample size `n` over the given
    /// response-time distribution.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidParameter`] if `n == 0`, and
    /// propagates CTMC construction errors.
    pub fn new(rt: &ResponseTimeDistribution, n: usize) -> Result<Self, QueueingError> {
        if n == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "n",
                value: 0.0,
                expected: "a positive sample size",
            });
        }
        let ctmc = build_fig4_chain(rt, n)?;
        let mut p0 = vec![0.0; 2 * n + 1];
        p0[0] = 1.0;
        let exact = AbsorptionTimes::new(ctmc, p0)?;
        Ok(SampleMean {
            n,
            rt_mean: rt.mean(),
            rt_variance: rt.variance(),
            exact,
        })
    }

    /// The sample size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exact distribution of `X̄n` as an absorption-time object
    /// (CDF, PDF, moments, quantiles).
    pub fn exact(&self) -> &AbsorptionTimes {
        &self.exact
    }

    /// The CLT normal approximation: `N(µX, σX²/n)`.
    pub fn normal_approximation(&self) -> Normal {
        Normal::new(self.rt_mean, (self.rt_variance / self.n as f64).sqrt())
            .expect("moments of a stable queue are positive and finite")
    }

    /// Evaluates the exact density and the approximating normal density
    /// on a uniform grid — the data behind one panel of Fig. 5.
    ///
    /// Returns `(x, exact pdf, normal pdf)` triples.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors.
    pub fn density_comparison(
        &self,
        lo: f64,
        hi: f64,
        points: usize,
    ) -> Result<Vec<DensityPoint>, QueueingError> {
        let normal = self.normal_approximation();
        let grid = self.exact.pdf_grid(lo, hi, points)?;
        Ok(grid
            .into_iter()
            .map(|(x, exact)| DensityPoint {
                x,
                exact,
                normal: normal.pdf(x),
            })
            .collect())
    }

    /// The §4.1 tail-mass check: the probability that `X̄n` exceeds the
    /// `p`-quantile of its normal approximation.
    ///
    /// If the CLT approximation were perfect this would equal `1 − p`;
    /// the paper reports 3.69 % for `n = 15` and 3.37 % for `n = 30`
    /// against the 97.5 % quantile (so the real false-alarm rate of the
    /// CLTA detector is somewhat above the nominal 2.5 %).
    ///
    /// # Errors
    ///
    /// Propagates quantile/solver errors.
    pub fn tail_mass_beyond_normal_quantile(&self, p: f64) -> Result<f64, QueueingError> {
        let q = self.normal_approximation().quantile(p)?;
        Ok(1.0 - self.exact.cdf(q)?)
    }

    /// Maximum absolute difference between the exact CDF and the normal
    /// CDF over a grid — a simple Kolmogorov-style distance quantifying
    /// "how good" the CLT approximation is for this `n`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn normal_approximation_distance(&self, points: usize) -> Result<f64, QueueingError> {
        let normal = self.normal_approximation();
        let lo = (self.rt_mean - 6.0 * normal.std_dev()).max(0.0);
        let hi = self.rt_mean + 6.0 * normal.std_dev();
        let mut worst = 0.0f64;
        for i in 0..points.max(2) {
            let x = lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64;
            let d = (self.exact.cdf(x)? - normal.cdf(x)).abs();
            worst = worst.max(d);
        }
        Ok(worst)
    }
}

/// One grid point of the Fig. 5 density comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityPoint {
    /// Abscissa (average response time).
    pub x: f64,
    /// Exact density of `X̄n` from the Fig. 4 chain.
    pub exact: f64,
    /// Density of the approximating normal `N(µX, σX²/n)`.
    pub normal: f64,
}

/// Builds the `2n + 1`-state Fig. 4 chain: `n` copies of the Fig. 3
/// response-time chain with all rates multiplied by `n`, concatenated.
fn build_fig4_chain(rt: &ResponseTimeDistribution, n: usize) -> Result<Ctmc, QueueingError> {
    let nf = n as f64;
    let mu = rt.mu();
    let wc = rt.wc();
    let drain = rt.drain_rate();

    let mut ctmc = Ctmc::new(2 * n + 1);
    for j in 0..n {
        let entry = 2 * j; // the Exp(µ) phase of copy j
        let queued = 2 * j + 1; // the Exp(cµ − λ) phase of copy j
        let next = 2 * (j + 1); // entry of copy j+1, or the absorbing state
                                // Service completes without queueing: straight to the next copy.
        ctmc.add_transition(entry, next, nf * mu * wc)?;
        // Job had queued: pass through the drain phase first.
        if wc < 1.0 {
            ctmc.add_transition(entry, queued, nf * mu * (1.0 - wc))?;
        }
        ctmc.add_transition(queued, next, nf * drain)?;
    }
    Ok(ctmc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MmcQueue;

    fn paper_rt() -> ResponseTimeDistribution {
        MmcQueue::new(16, 1.6, 0.2)
            .unwrap()
            .response_time()
            .unwrap()
    }

    #[test]
    fn rejects_zero_sample_size() {
        assert!(SampleMean::new(&paper_rt(), 0).is_err());
    }

    #[test]
    fn chain_has_expected_shape() {
        let rt = paper_rt();
        let sm = SampleMean::new(&rt, 5).unwrap();
        let ctmc = sm.exact().ctmc();
        assert_eq!(ctmc.states(), 11);
        assert!(ctmc.is_absorbing(10));
        assert_eq!(ctmc.absorbing_states(), vec![10]);
        // Each copy contributes 3 transitions (entry→next, entry→queued,
        // queued→next).
        assert_eq!(ctmc.transitions(), 15);
    }

    #[test]
    fn n_equals_one_recovers_single_response_time() {
        let rt = paper_rt();
        let sm = SampleMean::new(&rt, 1).unwrap();
        assert!((sm.exact().mean().unwrap() - rt.mean()).abs() < 1e-10);
        assert!((sm.exact().variance().unwrap() - rt.variance()).abs() < 1e-10);
        for x in [2.0, 5.0, 10.0] {
            assert!(
                (sm.exact().cdf(x).unwrap() - rt.cdf(x)).abs() < 1e-8,
                "x = {x}"
            );
        }
    }

    #[test]
    fn mean_invariant_and_variance_scales() {
        let rt = paper_rt();
        for n in [2, 5, 15] {
            let sm = SampleMean::new(&rt, n).unwrap();
            assert!(
                (sm.exact().mean().unwrap() - rt.mean()).abs() < 1e-8,
                "n = {n}"
            );
            assert!(
                (sm.exact().variance().unwrap() - rt.variance() / n as f64).abs() < 1e-8,
                "n = {n}"
            );
        }
    }

    #[test]
    fn normal_approximation_parameters() {
        let rt = paper_rt();
        let sm = SampleMean::new(&rt, 25).unwrap();
        let normal = sm.normal_approximation();
        assert!((normal.mean() - rt.mean()).abs() < 1e-12);
        assert!((normal.std_dev() - rt.std_dev() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one() {
        let rt = paper_rt();
        let sm = SampleMean::new(&rt, 5).unwrap();
        let grid = sm.density_comparison(0.0, 30.0, 601).unwrap();
        let h = 0.05;
        let exact_mass: f64 = grid
            .windows(2)
            .map(|w| 0.5 * h * (w[0].exact + w[1].exact))
            .sum();
        assert!((exact_mass - 1.0).abs() < 1e-3, "mass = {exact_mass}");
    }

    #[test]
    fn approximation_improves_with_n() {
        let rt = paper_rt();
        let d5 = SampleMean::new(&rt, 5)
            .unwrap()
            .normal_approximation_distance(101)
            .unwrap();
        let d30 = SampleMean::new(&rt, 30)
            .unwrap()
            .normal_approximation_distance(101)
            .unwrap();
        assert!(
            d30 < d5,
            "normal distance should shrink with n: d5 = {d5}, d30 = {d30}"
        );
    }

    #[test]
    fn paper_tail_masses_are_reproduced() {
        // §4.1: mass right of the normal 97.5 % quantile is 3.69 % for
        // n = 15 and 3.37 % for n = 30 (λ = 1.6, µ = 0.2, c = 16).
        let rt = paper_rt();
        let t15 = SampleMean::new(&rt, 15)
            .unwrap()
            .tail_mass_beyond_normal_quantile(0.975)
            .unwrap();
        let t30 = SampleMean::new(&rt, 30)
            .unwrap()
            .tail_mass_beyond_normal_quantile(0.975)
            .unwrap();
        assert!((t15 - 0.0369).abs() < 0.005, "n = 15 tail = {t15}");
        assert!((t30 - 0.0337).abs() < 0.005, "n = 30 tail = {t30}");
        assert!(t30 < t15, "approximation should tighten with n");
    }
}
