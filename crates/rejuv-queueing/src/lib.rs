//! M/M/c queueing analytics for the DSN 2006 rejuvenation paper.
//!
//! §4.1 of the paper grounds its rejuvenation algorithms in the analytic
//! response-time distribution of an FCFS M/M/c queue (Gross & Harris):
//! its eq. (1) CDF, eq. (2) mean and eq. (3) variance, the phase-type
//! representation of the response time (the paper's Figs. 2 and 3), and
//! the *exact* distribution of the sample mean `X̄n` as the absorption
//! time of a concatenated CTMC (Fig. 4), which the paper solved with
//! SHARPE and this crate solves with `rejuv-ctmc`.
//!
//! * [`mmc::MmcQueue`] — the queue model and its steady-state quantities,
//! * [`response_time::ResponseTimeDistribution`] — eq. (1)–(3) plus the
//!   phase-type view,
//! * [`sample_mean::SampleMean`] — the Fig. 4 chain, the exact density of
//!   `X̄n`, its normal approximation, and the §4.1 tail-mass comparison.
//!
//! # Example
//!
//! ```
//! use rejuv_queueing::MmcQueue;
//!
//! // The paper's system: c = 16 CPUs, µ = 0.2 tx/s, λ = 1.6 tx/s.
//! let q = MmcQueue::new(16, 1.6, 0.2)?;
//! assert!(q.is_stable());
//! // At ρ = 0.5 the response time is almost a pure Exp(µ): mean ≈ 5 s.
//! let rt = q.response_time()?;
//! assert!((rt.mean() - 5.0).abs() < 0.01);
//! assert!((rt.std_dev() - 5.0).abs() < 0.01);
//! # Ok::<(), rejuv_queueing::QueueingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod birth_death;
pub mod error;
pub mod mmc;
pub mod response_time;
pub mod sample_mean;

pub use birth_death::{expected_time_to_congestion, queue_length_chain, queue_length_distribution};
pub use error::QueueingError;
pub use mmc::MmcQueue;
pub use response_time::ResponseTimeDistribution;
pub use sample_mean::SampleMean;
