//! Queue-length dynamics of the M/M/c queue as a birth–death CTMC.
//!
//! The paper's Fig. 1 shows the Markovian state diagram of the number of
//! jobs in the M/M/c system. This module builds that chain (truncated at
//! a configurable population) and answers the two questions that matter
//! for rejuvenation scheduling:
//!
//! * the **transient queue-length distribution** `P(N(t) = k)` — how
//!   congestion builds after a disturbance, and
//! * the **expected time to congestion**: the mean first-passage time
//!   from a given population to a threshold (e.g. the 50-thread
//!   kernel-overhead knee of the §3 model, where the soft failure
//!   begins).

use crate::{MmcQueue, QueueingError};
use rejuv_ctmc::{Ctmc, TransientSolver};

/// Builds the Fig. 1 birth–death chain for `queue`, truncated at
/// `max_jobs` (states `0..=max_jobs`).
///
/// Birth rate is `λ` in every state below the truncation point; death
/// rate from state `k` is `min(k, c)·µ`.
///
/// # Errors
///
/// Returns [`QueueingError::InvalidParameter`] if `max_jobs == 0`.
pub fn queue_length_chain(queue: &MmcQueue, max_jobs: usize) -> Result<Ctmc, QueueingError> {
    if max_jobs == 0 {
        return Err(QueueingError::InvalidParameter {
            name: "max_jobs",
            value: 0.0,
            expected: "a positive truncation point",
        });
    }
    let lambda = queue.arrival_rate();
    let mu = queue.service_rate();
    let c = queue.servers();
    let mut chain = Ctmc::new(max_jobs + 1);
    for k in 0..max_jobs {
        chain
            .add_transition(k, k + 1, lambda)
            .expect("indices in range, lambda positive");
        let death = (k + 1).min(c) as f64 * mu;
        chain
            .add_transition(k + 1, k, death)
            .expect("indices in range, death rate positive");
    }
    Ok(chain)
}

/// Transient queue-length distribution `P(N(t) = k)` for a system that
/// starts with `initial_jobs` jobs, truncated at `max_jobs`.
///
/// The truncation point should be chosen so the probability of hitting
/// it within `t` is negligible (the returned vector's last entries show
/// whether it was).
///
/// # Errors
///
/// * [`QueueingError::InvalidParameter`] if `initial_jobs > max_jobs`
///   or `max_jobs == 0`,
/// * propagates CTMC solver errors.
pub fn queue_length_distribution(
    queue: &MmcQueue,
    initial_jobs: usize,
    t: f64,
    max_jobs: usize,
) -> Result<Vec<f64>, QueueingError> {
    if initial_jobs > max_jobs {
        return Err(QueueingError::InvalidParameter {
            name: "initial_jobs",
            value: initial_jobs as f64,
            expected: "at most max_jobs",
        });
    }
    let chain = queue_length_chain(queue, max_jobs)?;
    let mut p0 = vec![0.0; max_jobs + 1];
    p0[initial_jobs] = 1.0;
    Ok(TransientSolver::default().solve(&chain, &p0, t)?)
}

/// Expected first-passage time from `initial_jobs` jobs to a population
/// of `threshold` jobs — e.g. the §3 kernel-overhead knee at 50.
///
/// Built by making the threshold state absorbing and computing the mean
/// absorption time; for a stable queue below saturation this grows
/// nearly exponentially in the threshold, which is why soft failures
/// are rare at low loads and frequent near saturation.
///
/// # Errors
///
/// * [`QueueingError::InvalidParameter`] unless
///   `initial_jobs < threshold`,
/// * propagates CTMC errors.
pub fn expected_time_to_congestion(
    queue: &MmcQueue,
    initial_jobs: usize,
    threshold: usize,
) -> Result<f64, QueueingError> {
    if initial_jobs >= threshold {
        return Err(QueueingError::InvalidParameter {
            name: "initial_jobs",
            value: initial_jobs as f64,
            expected: "strictly below the congestion threshold",
        });
    }
    // Exact birth–death first-passage recursion, numerically stable even
    // when the answer is astronomically large (it is a sum of positive
    // terms, unlike the alternating elimination of a dense solve):
    //   E[T_{k→k+1}] = 1/λ + (d_k/λ)·E[T_{k−1→k}],  d_k = min(k, c)·µ.
    let lambda = queue.arrival_rate();
    let mu = queue.service_rate();
    let c = queue.servers();
    let mut step = 0.0f64; // E[T_{k−1→k}] from the previous iteration.
    let mut total = 0.0f64;
    for k in 0..threshold {
        let death = k.min(c) as f64 * mu;
        step = 1.0 / lambda + death / lambda * step;
        if k >= initial_jobs {
            total += step;
        }
        if !total.is_finite() {
            break; // saturate at +inf rather than overflowing to NaN
        }
    }
    Ok(total)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rejuv_ctmc::{steady_state, AbsorptionTimes};

    #[test]
    fn truncation_validated() {
        let q = MmcQueue::new(2, 1.0, 1.0).unwrap();
        assert!(queue_length_chain(&q, 0).is_err());
        assert!(queue_length_distribution(&q, 5, 1.0, 4).is_err());
        assert!(expected_time_to_congestion(&q, 5, 5).is_err());
    }

    #[test]
    fn chain_structure() {
        let q = MmcQueue::new(3, 2.0, 1.0).unwrap();
        let chain = queue_length_chain(&q, 6).unwrap();
        assert_eq!(chain.states(), 7);
        // Births everywhere below the cap, deaths everywhere above 0.
        assert_eq!(chain.transitions(), 12);
        // Death rate saturates at c·µ = 3.
        assert_eq!(
            chain.outgoing(5).iter().find(|(to, _)| *to == 4).unwrap().1,
            3.0
        );
        assert_eq!(
            chain.outgoing(2).iter().find(|(to, _)| *to == 1).unwrap().1,
            2.0
        );
    }

    #[test]
    fn steady_state_of_truncated_chain_matches_pmf() {
        // With a truncation far beyond the bulk of the distribution, the
        // chain's steady state reproduces the analytic M/M/c pmf.
        let q = MmcQueue::new(4, 2.0, 1.0).unwrap();
        let chain = queue_length_chain(&q, 60).unwrap();
        let pi = steady_state(&chain).unwrap();
        for k in 0..20 {
            let expected = q.queue_length_pmf(k).unwrap();
            assert!(
                (pi[k] - expected).abs() < 1e-8,
                "k = {k}: {} vs {expected}",
                pi[k]
            );
        }
    }

    #[test]
    fn transient_distribution_is_stochastic_and_converges() {
        let q = MmcQueue::new(16, 1.6, 0.2).unwrap();
        let p = queue_length_distribution(&q, 0, 2_000.0, 80).unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // After a long horizon the transient matches the steady pmf.
        for k in 0..20 {
            let expected = q.queue_length_pmf(k).unwrap();
            assert!((p[k] - expected).abs() < 1e-6, "k = {k}");
        }
        // Truncation unused.
        assert!(p[79] < 1e-12);
    }

    #[test]
    fn short_horizon_stays_near_initial_state() {
        let q = MmcQueue::new(16, 1.6, 0.2).unwrap();
        let p = queue_length_distribution(&q, 10, 0.01, 40).unwrap();
        assert!(p[10] > 0.95, "p[10] = {}", p[10]);
    }

    #[test]
    fn first_passage_matches_absorbing_ctmc() {
        // Independent cross-check against the generic CTMC machinery on
        // a threshold small enough for the dense solve to stay accurate.
        let q = MmcQueue::new(3, 1.5, 1.0).unwrap();
        let threshold = 12;
        let lambda = q.arrival_rate();
        let mut chain = Ctmc::new(threshold + 1);
        for k in 0..threshold {
            chain.add_transition(k, k + 1, lambda).unwrap();
            if k > 0 {
                chain
                    .add_transition(k, k - 1, k.min(3) as f64 * q.service_rate())
                    .unwrap();
            }
        }
        let mut p0 = vec![0.0; threshold + 1];
        p0[0] = 1.0;
        let expected = AbsorptionTimes::new(chain, p0).unwrap().mean().unwrap();
        let measured = expected_time_to_congestion(&q, 0, threshold).unwrap();
        assert!(
            (measured - expected).abs() < 1e-6 * (1.0 + expected),
            "{measured} vs {expected}"
        );
    }

    #[test]
    fn first_passage_from_nonzero_start() {
        // Starting higher removes exactly the first `initial` steps of
        // the recursion: E[T_{5→N}] = E[T_{0→N}] − E[T_{0→5}].
        let q = MmcQueue::new(4, 2.0, 1.0).unwrap();
        let full = expected_time_to_congestion(&q, 0, 20).unwrap();
        let head = expected_time_to_congestion(&q, 0, 5).unwrap();
        let tail = expected_time_to_congestion(&q, 5, 20).unwrap();
        assert!((full - (head + tail)).abs() < 1e-9 * (1.0 + full));
    }

    #[test]
    fn congestion_time_explodes_as_load_falls() {
        // At 9 CPUs of load the 50-thread knee is minutes away; at 4 CPUs
        // it is astronomically far — the analytic version of "soft
        // failures only happen at high load".
        let t_high =
            expected_time_to_congestion(&MmcQueue::new(16, 1.8, 0.2).unwrap(), 0, 50).unwrap();
        let t_low =
            expected_time_to_congestion(&MmcQueue::new(16, 0.8, 0.2).unwrap(), 0, 50).unwrap();
        assert!(t_low > 1e3 * t_high, "low {t_low} vs high {t_high}");
    }

    #[test]
    fn closer_start_means_shorter_passage() {
        let q = MmcQueue::new(16, 1.8, 0.2).unwrap();
        let from0 = expected_time_to_congestion(&q, 0, 50).unwrap();
        let from30 = expected_time_to_congestion(&q, 30, 50).unwrap();
        assert!(from30 < from0);
    }
}
