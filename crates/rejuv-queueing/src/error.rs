//! Error type for the queueing crate.

use rejuv_ctmc::CtmcError;
use rejuv_stats::StatsError;
use std::error::Error;
use std::fmt;

/// Errors produced by queueing-model construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// The queue is unstable (`ρ ≥ 1`); steady-state quantities do not
    /// exist.
    Unstable {
        /// The traffic intensity `ρ = λ / (cµ)`.
        rho: f64,
    },
    /// An error bubbled up from the CTMC layer.
    Ctmc(CtmcError),
    /// An error bubbled up from the statistics layer.
    Stats(StatsError),
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "invalid parameter {name} = {value}: expected {expected}"),
            QueueingError::Unstable { rho } => {
                write!(f, "queue is unstable: traffic intensity rho = {rho} >= 1")
            }
            QueueingError::Ctmc(e) => write!(f, "ctmc error: {e}"),
            QueueingError::Stats(e) => write!(f, "stats error: {e}"),
        }
    }
}

impl Error for QueueingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueueingError::Ctmc(e) => Some(e),
            QueueingError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for QueueingError {
    fn from(e: CtmcError) -> Self {
        QueueingError::Ctmc(e)
    }
}

impl From<StatsError> for QueueingError {
    fn from(e: StatsError) -> Self {
        QueueingError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QueueingError::Unstable { rho: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(e.source().is_none());
        let e: QueueingError = CtmcError::Singular.into();
        assert!(e.source().is_some());
        let e: QueueingError = StatsError::ZeroVariance.into();
        assert!(e.to_string().contains("variance"));
    }
}
