//! The FCFS M/M/c queue.

use crate::{QueueingError, ResponseTimeDistribution};
use serde::{Deserialize, Serialize};

/// An M/M/c queue: Poisson arrivals at rate `λ`, `c` identical
/// exponential servers at rate `µ`, unbounded FCFS queue.
///
/// This is the "abstracted" model of §4.1 of the paper — the e-commerce
/// simulation with garbage collection and kernel overhead stripped away.
///
/// # Example
///
/// ```
/// use rejuv_queueing::MmcQueue;
///
/// let q = MmcQueue::new(16, 1.6, 0.2)?;
/// assert_eq!(q.servers(), 16);
/// assert!((q.rho() - 0.5).abs() < 1e-12);
/// assert!((q.offered_load() - 8.0).abs() < 1e-12);
/// # Ok::<(), rejuv_queueing::QueueingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmcQueue {
    c: usize,
    lambda: f64,
    mu: f64,
}

impl MmcQueue {
    /// Creates an M/M/c queue with `c` servers, arrival rate `lambda` and
    /// per-server service rate `mu`.
    ///
    /// Stability (`ρ < 1`) is *not* required at construction; transient
    /// questions make sense for overloaded queues too. Steady-state
    /// methods return [`QueueingError::Unstable`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidParameter`] if `c == 0` or a rate
    /// is not positive and finite.
    pub fn new(c: usize, lambda: f64, mu: f64) -> Result<Self, QueueingError> {
        if c == 0 {
            return Err(QueueingError::InvalidParameter {
                name: "c",
                value: 0.0,
                expected: "at least one server",
            });
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(QueueingError::InvalidParameter {
                name: "lambda",
                value: lambda,
                expected: "a positive finite arrival rate",
            });
        }
        if !(mu.is_finite() && mu > 0.0) {
            return Err(QueueingError::InvalidParameter {
                name: "mu",
                value: mu,
                expected: "a positive finite service rate",
            });
        }
        Ok(MmcQueue { c, lambda, mu })
    }

    /// The paper's system: `c = 16` servers at `µ = 0.2` tx/s with the
    /// given arrival rate.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn paper_system(lambda: f64) -> Result<Self, QueueingError> {
        MmcQueue::new(16, lambda, 0.2)
    }

    /// Number of servers `c`.
    pub fn servers(&self) -> usize {
        self.c
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Per-server service rate `µ`.
    pub fn service_rate(&self) -> f64 {
        self.mu
    }

    /// Traffic intensity `ρ = λ / (cµ)`.
    pub fn rho(&self) -> f64 {
        self.lambda / (self.c as f64 * self.mu)
    }

    /// Offered load `λ / µ`, in units of busy servers ("CPUs" in the
    /// paper's figures).
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Returns `true` if the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.rho() < 1.0
    }

    /// Steady-state probability that fewer than `c` jobs are in the
    /// system — `Wc` in the paper's eq. (1): the probability an arriving
    /// job does *not* have to wait (by PASTA).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn wc(&self) -> Result<f64, QueueingError> {
        Ok(1.0 - self.erlang_c()?)
    }

    /// The Erlang-C delay probability `C(c, a)` with `a = λ/µ`: the
    /// steady-state probability an arriving job must queue.
    ///
    /// Computed through the numerically robust Erlang-B recurrence
    /// `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))`, then
    /// `C = B / (1 − ρ(1 − B))`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn erlang_c(&self) -> Result<f64, QueueingError> {
        let rho = self.rho();
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        let a = self.offered_load();
        let mut b = 1.0;
        for k in 1..=self.c {
            b = a * b / (k as f64 + a * b);
        }
        Ok(b / (1.0 - rho * (1.0 - b)))
    }

    /// Steady-state probability of exactly `k` jobs in the system.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn queue_length_pmf(&self, k: usize) -> Result<f64, QueueingError> {
        let p0 = self.empty_probability()?;
        let a = self.offered_load();
        let c = self.c as f64;
        // p_k = p0 a^k / k!            for k < c
        //     = p0 a^k / (c! c^{k-c})  for k >= c,
        // computed multiplicatively to avoid factorial overflow.
        let mut p = p0;
        for j in 1..=k {
            let denom = if j <= self.c { j as f64 } else { c };
            p *= a / denom;
        }
        Ok(p)
    }

    /// Steady-state probability the system is empty, `p₀`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn empty_probability(&self) -> Result<f64, QueueingError> {
        let rho = self.rho();
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        let a = self.offered_load();
        // Σ_{k<c} a^k/k! + a^c/c! · 1/(1−ρ), accumulated multiplicatively.
        let mut term = 1.0;
        let mut sum = 1.0;
        for k in 1..self.c {
            term *= a / k as f64;
            sum += term;
        }
        term *= a / self.c as f64;
        sum += term / (1.0 - rho);
        Ok(1.0 / sum)
    }

    /// Mean number of jobs in the system `L` (Little's law applied to
    /// eq. (2)).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_jobs(&self) -> Result<f64, QueueingError> {
        Ok(self.lambda * self.response_time()?.mean())
    }

    /// Mean waiting time in queue `Wq = (1 − Wc)/(cµ − λ)` (excludes
    /// service).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_waiting_time(&self) -> Result<f64, QueueingError> {
        let wc = self.wc()?;
        Ok((1.0 - wc) / (self.c as f64 * self.mu - self.lambda))
    }

    /// Mean number of jobs waiting in queue `Lq = λ·Wq` (Little's law).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn mean_queue_length(&self) -> Result<f64, QueueingError> {
        Ok(self.lambda * self.mean_waiting_time()?)
    }

    /// Waiting-time survival function
    /// `P(Wq > t) = (1 − Wc)·e^{−(cµ−λ)t}` — the delay a job suffers
    /// before any CPU frees up (a point mass `Wc` sits at zero).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn waiting_time_survival(&self, t: f64) -> Result<f64, QueueingError> {
        let wc = self.wc()?;
        if t < 0.0 {
            return Ok(1.0);
        }
        let drain = self.c as f64 * self.mu - self.lambda;
        Ok((1.0 - wc) * (-drain * t).exp())
    }

    /// The response-time distribution of this queue (eq. (1)–(3) of the
    /// paper, plus the phase-type view).
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::Unstable`] if `ρ ≥ 1`.
    pub fn response_time(&self) -> Result<ResponseTimeDistribution, QueueingError> {
        ResponseTimeDistribution::for_queue(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(MmcQueue::new(0, 1.0, 1.0).is_err());
        assert!(MmcQueue::new(1, 0.0, 1.0).is_err());
        assert!(MmcQueue::new(1, 1.0, -1.0).is_err());
        assert!(MmcQueue::new(1, f64::NAN, 1.0).is_err());
        assert!(MmcQueue::new(1, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn unstable_queue_is_constructible_but_guarded() {
        let q = MmcQueue::new(2, 5.0, 1.0).unwrap();
        assert!(!q.is_stable());
        assert!(matches!(q.wc(), Err(QueueingError::Unstable { .. })));
        assert!(q.empty_probability().is_err());
        assert!(q.response_time().is_err());
    }

    #[test]
    fn mm1_known_formulas() {
        // M/M/1: Erlang C = rho, p0 = 1 - rho, p_k = (1-rho) rho^k.
        let q = MmcQueue::new(1, 0.6, 1.0).unwrap();
        assert!((q.erlang_c().unwrap() - 0.6).abs() < 1e-12);
        assert!((q.empty_probability().unwrap() - 0.4).abs() < 1e-12);
        for k in 0..8 {
            let expected = 0.4 * 0.6f64.powi(k as i32);
            assert!((q.queue_length_pmf(k).unwrap() - expected).abs() < 1e-12);
        }
        // Mean jobs L = rho / (1 - rho).
        assert!((q.mean_jobs().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mm2_erlang_c_closed_form() {
        // M/M/2: C = 2 rho^2 / (1 + rho).
        let q = MmcQueue::new(2, 1.2, 1.0).unwrap();
        let rho: f64 = 0.6;
        let expected = 2.0 * rho * rho / (1.0 + rho);
        assert!((q.erlang_c().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn paper_system_at_half_load() {
        let q = MmcQueue::paper_system(1.6).unwrap();
        assert_eq!(q.servers(), 16);
        assert!((q.rho() - 0.5).abs() < 1e-12);
        assert!((q.offered_load() - 8.0).abs() < 1e-12);
        // Erlang C for c = 16, a = 8 is ≈ 0.0088.
        let c = q.erlang_c().unwrap();
        assert!(c > 0.007 && c < 0.011, "erlang_c = {c}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let q = MmcQueue::new(4, 3.0, 1.0).unwrap();
        let total: f64 = (0..500).map(|k| q.queue_length_pmf(k).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-10, "total = {total}");
    }

    #[test]
    fn pmf_matches_birth_death_balance() {
        // Local balance: lambda p_k = min(k+1, c) mu p_{k+1}.
        let q = MmcQueue::new(3, 2.0, 1.0).unwrap();
        for k in 0..10 {
            let pk = q.queue_length_pmf(k).unwrap();
            let pk1 = q.queue_length_pmf(k + 1).unwrap();
            let service = (k + 1).min(3) as f64;
            assert!((2.0 * pk - service * pk1).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn littles_law_identities() {
        let q = MmcQueue::new(16, 2.4, 0.2).unwrap();
        // W = Wq + 1/µ.
        let w = q.response_time().unwrap().mean();
        let wq = q.mean_waiting_time().unwrap();
        assert!((w - (wq + 5.0)).abs() < 1e-12);
        // L = Lq + λ/µ (servers hold λ/µ jobs on average).
        let l = q.mean_jobs().unwrap();
        let lq = q.mean_queue_length().unwrap();
        assert!((l - (lq + q.offered_load())).abs() < 1e-10);
    }

    #[test]
    fn mm1_waiting_time_closed_form() {
        // M/M/1: Wq = rho / (mu - lambda), P(Wq > t) = rho e^{-(mu-lambda)t}.
        let q = MmcQueue::new(1, 0.5, 1.0).unwrap();
        assert!((q.mean_waiting_time().unwrap() - 1.0).abs() < 1e-12);
        for t in [0.0, 1.0, 3.0] {
            let expected = 0.5 * (-0.5f64 * t).exp();
            assert!((q.waiting_time_survival(t).unwrap() - expected).abs() < 1e-12);
        }
        assert_eq!(q.waiting_time_survival(-1.0).unwrap(), 1.0);
    }

    #[test]
    fn wait_survival_at_zero_is_delay_probability() {
        let q = MmcQueue::new(16, 1.6, 0.2).unwrap();
        assert!((q.waiting_time_survival(0.0).unwrap() - q.erlang_c().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn large_server_count_is_stable_numerically() {
        // a = 100 with c = 128: factorial-free recurrences must not blow up.
        let q = MmcQueue::new(128, 100.0, 1.0).unwrap();
        let c = q.erlang_c().unwrap();
        assert!(c > 0.0 && c < 1.0, "erlang_c = {c}");
        let p0 = q.empty_probability().unwrap();
        assert!(p0 > 0.0 && p0 < 1.0);
    }

    #[test]
    fn erlang_c_increases_with_load() {
        let mut last = 0.0;
        for i in 1..10 {
            let q = MmcQueue::new(16, i as f64 * 0.3, 0.2).unwrap();
            let c = q.erlang_c().unwrap();
            assert!(c > last);
            last = c;
        }
    }
}
