//! Property-based tests for the M/M/c analytics.

use proptest::prelude::*;
use rejuv_queueing::{MmcQueue, SampleMean};

/// Strategy: a random *stable* M/M/c queue.
fn stable_queue() -> impl Strategy<Value = MmcQueue> {
    (1usize..32, 0.05f64..10.0, 0.01f64..0.99).prop_map(|(c, mu, rho)| {
        let lambda = rho * c as f64 * mu;
        MmcQueue::new(c, lambda, mu).expect("constructed parameters are valid")
    })
}

proptest! {
    /// Erlang C and Wc are complementary probabilities in (0, 1).
    #[test]
    fn erlang_c_is_a_probability(q in stable_queue()) {
        let c = q.erlang_c().unwrap();
        let wc = q.wc().unwrap();
        prop_assert!((0.0..1.0).contains(&c), "C = {c}");
        prop_assert!((c + wc - 1.0).abs() < 1e-12);
    }

    /// Eq. (1) is a genuine CDF: zero at 0, monotone, bounded, → 1.
    #[test]
    fn response_time_cdf_is_valid(q in stable_queue()) {
        let rt = q.response_time().unwrap();
        prop_assert_eq!(rt.cdf(0.0), 0.0);
        let horizon = rt.mean() + 30.0 * rt.std_dev();
        let mut last = 0.0;
        for i in 1..=50 {
            let x = horizon * i as f64 / 50.0;
            let f = rt.cdf(x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "x = {x}, F = {f}");
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        prop_assert!(last > 0.999, "F({horizon}) = {last}");
    }

    /// Eq. (2)/(3) agree with the phase-type (Fig. 2) representation for
    /// every stable queue.
    #[test]
    fn closed_form_moments_match_phase_type(q in stable_queue()) {
        let rt = q.response_time().unwrap();
        let ph = rt.phase_type();
        prop_assert!((ph.mean().unwrap() - rt.mean()).abs() < 1e-7 * (1.0 + rt.mean()));
        prop_assert!(
            (ph.variance().unwrap() - rt.variance()).abs() < 1e-6 * (1.0 + rt.variance())
        );
    }

    /// The mean response time is at least the mean service time and
    /// decreases toward it as servers are added at fixed λ and µ.
    #[test]
    fn more_servers_reduce_response_time(
        mu in 0.05f64..5.0,
        rho in 0.05f64..0.9,
        c1 in 1usize..16,
        extra in 1usize..16,
    ) {
        let lambda = rho * c1 as f64 * mu;
        let small = MmcQueue::new(c1, lambda, mu).unwrap().response_time().unwrap();
        let big = MmcQueue::new(c1 + extra, lambda, mu).unwrap().response_time().unwrap();
        prop_assert!(small.mean() >= big.mean() - 1e-12);
        prop_assert!(big.mean() >= 1.0 / mu - 1e-12);
    }

    /// The queue-length pmf is a probability distribution.
    #[test]
    fn queue_length_pmf_sums_to_one(q in stable_queue()) {
        // Truncation horizon: the geometric tail decays at rho.
        let mut total = 0.0;
        let mut k = 0;
        while total < 1.0 - 1e-9 && k < 100_000 {
            total += q.queue_length_pmf(k).unwrap();
            k += 1;
        }
        prop_assert!((total - 1.0).abs() < 1e-6, "total = {total} after {k} terms");
    }

    /// Quantile inverts eq. (1) for arbitrary stable queues.
    #[test]
    fn quantile_inverts_cdf(q in stable_queue(), p in 0.01f64..0.99) {
        let rt = q.response_time().unwrap();
        let x = rt.quantile(p).unwrap();
        prop_assert!((rt.cdf(x) - p).abs() < 1e-9);
    }

    /// Sample-mean law: E[X̄n] = E[X], Var(X̄n) = Var(X)/n, exactly, via
    /// the Fig. 4 chain.
    #[test]
    fn sample_mean_moment_laws(
        rho in 0.1f64..0.9,
        n in 1usize..12,
    ) {
        let q = MmcQueue::new(16, rho * 16.0 * 0.2, 0.2).unwrap();
        let rt = q.response_time().unwrap();
        let sm = SampleMean::new(&rt, n).unwrap();
        let mean = sm.exact().mean().unwrap();
        let var = sm.exact().variance().unwrap();
        prop_assert!((mean - rt.mean()).abs() < 1e-6 * (1.0 + rt.mean()));
        prop_assert!((var - rt.variance() / n as f64).abs() < 1e-6 * (1.0 + rt.variance()));
    }

    /// The exact CDF of X̄n is closer to the normal CDF for larger n
    /// (CLT convergence, monotone along a doubling ladder).
    #[test]
    fn normal_distance_shrinks_with_n(rho in 0.2f64..0.8) {
        let q = MmcQueue::new(16, rho * 16.0 * 0.2, 0.2).unwrap();
        let rt = q.response_time().unwrap();
        let d4 = SampleMean::new(&rt, 4).unwrap()
            .normal_approximation_distance(61).unwrap();
        let d16 = SampleMean::new(&rt, 16).unwrap()
            .normal_approximation_distance(61).unwrap();
        prop_assert!(d16 < d4 + 1e-9, "d4 = {d4}, d16 = {d16}");
    }
}
