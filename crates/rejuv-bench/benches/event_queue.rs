//! Micro-benchmarks of the [`rejuv_sim::EventQueue`] hot path:
//! schedule/pop throughput with and without pending cancellations, and
//! the cancel operation itself.
//!
//! The DES loop performs exactly one schedule and one pop per event, so
//! these numbers bound the simulator's event overhead. The
//! `schedule_pop_clean` case exercises the fast path (no cancellation
//! tombstones in the heap); `schedule_cancel_pop` forces the tombstone
//! slow path on half the events.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rejuv_sim::{EventQueue, SimTime};
use std::hint::black_box;

/// Deterministic pseudo-random event times (an LCG; no RNG dependency).
fn times(len: usize) -> Vec<SimTime> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            SimTime::from_secs((state >> 11) as f64 / (1u64 << 53) as f64 * 1_000.0)
        })
        .collect()
}

fn bench_event_queue(c: &mut Criterion) {
    const N: usize = 10_000;
    let ts = times(N);

    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(N as u64));

    // The DES hot loop: schedule then pop, never cancelling. Stays on
    // the `cancelled_in_heap == 0` fast path throughout.
    group.bench_function("schedule_pop_clean", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in ts.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut acc = 0usize;
            while let Some((_, payload)) = q.pop() {
                acc = acc.wrapping_add(payload);
            }
            black_box(acc)
        });
    });

    // Interleaved schedule/pop with a bounded backlog, mimicking a
    // steady-state simulation where the queue stays small.
    group.bench_function("schedule_pop_interleaved", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut acc = 0usize;
            for chunk in ts.chunks(16) {
                for (i, &t) in chunk.iter().enumerate() {
                    q.schedule(t, i);
                }
                for _ in 0..chunk.len() {
                    if let Some((_, payload)) = q.pop() {
                        acc = acc.wrapping_add(payload);
                    }
                }
            }
            black_box(acc)
        });
    });

    // Half the scheduled events are cancelled before draining — the GC
    // reschedule / rejuvenation pattern that leaves tombstones in the
    // heap and exercises the slow path.
    group.bench_function("schedule_cancel_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = ts
                .iter()
                .enumerate()
                .map(|(i, &t)| q.schedule(t, i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut acc = 0usize;
            while let Some((_, payload)) = q.pop() {
                acc = acc.wrapping_add(payload);
            }
            black_box(acc)
        });
    });

    // Cancellation cost in isolation (schedule + cancel, nothing popped).
    group.bench_function("schedule_cancel", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = ts
                .iter()
                .enumerate()
                .map(|(i, &t)| q.schedule(t, i))
                .collect();
            let mut cancelled = 0usize;
            for id in ids {
                cancelled += usize::from(q.cancel(id));
            }
            black_box(cancelled)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
