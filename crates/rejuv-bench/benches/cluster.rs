//! Cluster-simulation benchmarks: cost per transaction by routing policy
//! and by host count, plus the exact ARL computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rejuv_core::analysis::expected_windows_to_trigger;
use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_ecommerce::cluster::{ClusterSystem, RoutingPolicy};
use rejuv_ecommerce::SystemConfig;
use std::hint::black_box;

fn sraa_253() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

fn bench_routing_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_routing");
    group.sample_size(10);
    let transactions = 20_000u64;
    group.throughput(Throughput::Elements(transactions));
    let cfg = SystemConfig::paper(1.0).unwrap();

    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::Random,
        RoutingPolicy::LeastActive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cluster = ClusterSystem::new(cfg, 4, 7.2, policy, 60.0, 7);
                    cluster.attach_detectors(|_| sraa_253());
                    black_box(cluster.run(transactions))
                });
            },
        );
    }
    group.finish();
}

fn bench_host_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_host_scaling");
    group.sample_size(10);
    let transactions = 20_000u64;
    group.throughput(Throughput::Elements(transactions));
    let cfg = SystemConfig::paper(1.0).unwrap();

    for hosts in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                let mut cluster = ClusterSystem::new(
                    cfg,
                    hosts,
                    hosts as f64 * 1.8,
                    RoutingPolicy::RoundRobin,
                    60.0,
                    7,
                );
                cluster.attach_detectors(|_| sraa_253());
                black_box(cluster.run(transactions))
            });
        });
    }
    group.finish();
}

fn bench_arl_analysis(c: &mut Criterion) {
    c.bench_function("exact_arl_recursion_k5_d3", |b| {
        let probs = [0.45, 0.09, 0.01, 0.001, 0.0001];
        b.iter(|| black_box(expected_windows_to_trigger(&probs, 5, 3).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_routing_policies,
    bench_host_scaling,
    bench_arl_analysis
);
criterion_main!(benches);
