//! Fig. 5 computation benchmark: the exact density of the sample-mean
//! response time from the 2n+1-state CTMC, per sample size, plus the
//! §4.1 tail-mass evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rejuv_queueing::{MmcQueue, SampleMean};
use std::hint::black_box;

fn bench_density(c: &mut Criterion) {
    let rt = MmcQueue::paper_system(1.6)
        .unwrap()
        .response_time()
        .unwrap();
    let mut group = c.benchmark_group("fig05_exact_density");
    group.sample_size(20);
    for n in [1usize, 5, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sm = SampleMean::new(&rt, n).unwrap();
                // The 41-point panel slice; the figures binary uses 201.
                black_box(sm.density_comparison(2.0, 12.0, 41).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_tail_mass(c: &mut Criterion) {
    let rt = MmcQueue::paper_system(1.6)
        .unwrap()
        .response_time()
        .unwrap();
    let mut group = c.benchmark_group("fig05_tail_mass");
    group.sample_size(20);
    for n in [15usize, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sm = SampleMean::new(&rt, n).unwrap();
                black_box(sm.tail_mass_beyond_normal_quantile(0.975).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_density, bench_tail_mass);
criterion_main!(benches);
