//! Micro-benchmarks of the [`rejuv_monitor::ObsQueue`] ingestion hot
//! path, run on both [`QueueBackend`]s so the lock-free ring can be
//! compared against the mutex reference like-for-like.
//!
//! Three shapes cover the queue's life under a monitoring workload:
//!
//! * `ping_pong` — single-thread push-then-drain of one sample at a
//!   time: the per-observation latency floor (no batching to hide
//!   behind, both cursors bounce through the same core's cache).
//! * `batched_throughput` — `push_batch` / `drain_into` in
//!   supervisor-sized batches: the steady-state fast path, where the
//!   ring amortises one tail publish (and the mutex one lock) per
//!   batch.
//! * `blocking_backpressure` — a producer thread pushing losslessly
//!   against a consumer thread draining a deliberately small queue:
//!   real cross-thread traffic through the spin-then-park slow path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rejuv_monitor::{ObsQueue, QueueBackend};
use std::hint::black_box;

const BACKENDS: [QueueBackend; 2] = [QueueBackend::Mutex, QueueBackend::Ring];

/// Deterministic pseudo-random observation values (an LCG; no RNG
/// dependency).
fn values(len: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 50.0
        })
        .collect()
}

fn bench_obs_queue(c: &mut Criterion) {
    const N: usize = 10_000;
    let vs = values(N);

    let mut group = c.benchmark_group("obs_queue");
    group.throughput(Throughput::Elements(N as u64));

    // One sample in, one sample out: per-observation cost with no
    // batching. The drain buffer is reused, so the numbers measure the
    // queue, not the allocator.
    for backend in BACKENDS {
        group.bench_function(format!("ping_pong/{backend}"), |b| {
            let q = ObsQueue::with_backend(64, backend);
            let mut out = Vec::with_capacity(1);
            b.iter(|| {
                let mut acc = 0.0f64;
                for &v in &vs {
                    q.push(v);
                    out.clear();
                    q.drain_into(&mut out, 1);
                    acc += out[0].0;
                }
                black_box(acc)
            });
        });
    }

    // Supervisor-shaped batches: 256-sample pushes against 512-sample
    // drains, the defaults' steady state.
    for backend in BACKENDS {
        group.bench_function(format!("batched_throughput/{backend}"), |b| {
            let q = ObsQueue::with_backend(8_192, backend);
            let mut out = Vec::with_capacity(512);
            b.iter(|| {
                let mut drained = 0usize;
                for chunk in vs.chunks(256) {
                    q.push_batch(chunk.iter().map(|&v| (v, f64::NAN)));
                    out.clear();
                    drained += q.drain_into(&mut out, 512);
                }
                out.clear();
                drained += q.drain_into(&mut out, usize::MAX);
                black_box(drained)
            });
        });
    }

    // Cross-thread with a queue small enough that the producer keeps
    // hitting back-pressure: measures the whole loop including the
    // spin-then-park slow path, not just the happy case.
    for backend in BACKENDS {
        group.bench_function(format!("blocking_backpressure/{backend}"), |b| {
            b.iter(|| {
                let q = ObsQueue::with_backend(128, backend);
                let producer = q.clone();
                let vs = &vs;
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        for chunk in vs.chunks(64) {
                            producer.push_batch_blocking(chunk.iter().map(|&v| (v, f64::NAN)));
                        }
                    });
                    let mut out = Vec::with_capacity(64);
                    let mut seen = 0usize;
                    while seen < N {
                        out.clear();
                        let n = q.drain_into(&mut out, 64);
                        seen += n;
                        if n == 0 {
                            std::thread::yield_now();
                        }
                    }
                    black_box(seen)
                })
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_obs_queue);
criterion_main!(benches);
