//! Micro-benchmarks of the detector hot path: cost per observation for
//! each algorithm, plus the ablation between acceleration schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rejuv_core::{
    AccelerationSchedule, Clta, CltaConfig, RejuvenationDetector, Saraa, SaraaConfig, Sraa,
    SraaConfig, StaticRejuvenation,
};
use std::hint::black_box;

/// A deterministic response-time stream mixing healthy values with
/// occasional spikes, so detectors exercise both branch directions.
fn stream(len: usize) -> Vec<f64> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            // Exponential-ish around mean 5 with a heavy shoulder.
            -5.0 * (1.0 - u).ln()
        })
        .collect()
}

fn bench_observe(c: &mut Criterion) {
    let data = stream(100_000);
    let mut group = c.benchmark_group("detector_observe");
    group.throughput(Throughput::Elements(data.len() as u64));

    group.bench_function("sraa_2_5_3", |b| {
        let cfg = SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap();
        b.iter(|| {
            let mut d = Sraa::new(cfg);
            for &x in &data {
                black_box(d.observe(x));
            }
            d.rejuvenation_count()
        });
    });

    group.bench_function("saraa_2_5_3", |b| {
        let cfg = SaraaConfig::builder(5.0, 5.0)
            .initial_sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap();
        b.iter(|| {
            let mut d = Saraa::new(cfg);
            for &x in &data {
                black_box(d.observe(x));
            }
            d.rejuvenation_count()
        });
    });

    group.bench_function("clta_30", |b| {
        let cfg = CltaConfig::builder(5.0, 5.0)
            .sample_size(30)
            .quantile_factor(1.96)
            .build()
            .unwrap();
        b.iter(|| {
            let mut d = Clta::new(cfg);
            for &x in &data {
                black_box(d.observe(x));
            }
            d.rejuvenation_count()
        });
    });

    group.bench_function("static_5_3", |b| {
        b.iter(|| {
            let mut d = StaticRejuvenation::new(5.0, 5.0, 5, 3).unwrap();
            for &x in &data {
                black_box(d.observe(x));
            }
            d.rejuvenation_count()
        });
    });

    group.finish();
}

/// Ablation: SARAA acceleration schedules (the design choice called out
/// in DESIGN.md) under a degraded stream, measuring full-detection cost.
fn bench_acceleration_ablation(c: &mut Criterion) {
    let degraded: Vec<f64> = stream(50_000).iter().map(|x| x + 20.0).collect();
    let mut group = c.benchmark_group("saraa_acceleration_ablation");
    for schedule in [
        AccelerationSchedule::None,
        AccelerationSchedule::Linear,
        AccelerationSchedule::Quadratic,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{schedule:?}")),
            &schedule,
            |b, &schedule| {
                let cfg = SaraaConfig::builder(5.0, 5.0)
                    .initial_sample_size(10)
                    .buckets(3)
                    .depth(1)
                    .schedule(schedule)
                    .build()
                    .unwrap();
                b.iter(|| {
                    let mut d = Saraa::new(cfg);
                    let mut triggers = 0u64;
                    for &x in &degraded {
                        if d.observe(x).is_rejuvenate() {
                            triggers += 1;
                        }
                    }
                    black_box(triggers)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_acceleration_ablation);
criterion_main!(benches);
