//! Sweep benchmarks behind Figs. 9–16: cost of one replicated experiment
//! point of the e-commerce simulation per detector, and one miniature
//! full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rejuv_bench::{fig16_comparison, sraa_response_time, FIG9_CONFIGS};
use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_ecommerce::{Runner, SystemConfig};
use std::hint::black_box;

fn bench_single_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_point_9cpus");
    group.sample_size(10);
    let transactions = 20_000u64;
    group.throughput(Throughput::Elements(transactions));
    let cfg = SystemConfig::paper_at_load(9.0).unwrap();
    let runner = Runner::new(1, transactions, 5);

    for (n, k, d) in [(15usize, 1usize, 1u32), (2, 5, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("sraa_{n}_{k}_{d}")),
            &(n, k, d),
            |b, &(n, k, d)| {
                let factory = move || -> Option<Box<dyn RejuvenationDetector>> {
                    Some(Box::new(Sraa::new(
                        SraaConfig::builder(5.0, 5.0)
                            .sample_size(n)
                            .buckets(k)
                            .depth(d)
                            .build()
                            .unwrap(),
                    )))
                };
                b.iter(|| black_box(runner.run_point(cfg, &factory)));
            },
        );
    }

    group.bench_function("no_rejuvenation", |b| {
        b.iter(|| black_box(runner.run_point(cfg, &|| None)));
    });
    group.finish();
}

fn bench_mini_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_sweeps_mini");
    group.sample_size(10);
    let runner = Runner::new(1, 5_000, 5);
    let loads = [0.5, 5.0, 9.0];

    group.bench_function("fig09_all_configs", |b| {
        b.iter(|| black_box(sraa_response_time(&runner, &FIG9_CONFIGS, &loads)));
    });

    group.bench_function("fig16_all_algorithms", |b| {
        b.iter(|| black_box(fig16_comparison(&runner, &loads)));
    });
    group.finish();
}

criterion_group!(benches, bench_single_point, bench_mini_sweeps);
criterion_main!(benches);
