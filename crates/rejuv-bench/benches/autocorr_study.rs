//! §4.1 autocorrelation study benchmark: simulate the abstracted M/M/16
//! system and estimate the lag-1 autocorrelation of its response times.

use criterion::{criterion_group, criterion_main, Criterion};
use rejuv_ecommerce::mmc_mode::autocorrelation_study;
use rejuv_ecommerce::Runner;
use rejuv_stats::AutocorrStudy;
use std::hint::black_box;

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("autocorr_study");
    group.sample_size(10);

    // Scaled-down protocol per iteration; the figures binary runs the
    // paper's full 5 x 100 000.
    group.bench_function("mm16_2x20000", |b| {
        b.iter(|| {
            let outcome = autocorrelation_study(
                1.6,
                Runner::new(2, 20_000, 11),
                AutocorrStudy::new(2_000, 0.95).unwrap(),
            )
            .unwrap();
            black_box(outcome.significant)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
