//! Micro-benchmarks of the batch drain kernels: `observe_batch` versus
//! repeated `observe` for every detector kind, across the batch sizes
//! the drain plane actually sees (a partially-filled queue, the default
//! `drain_batch`, and a deep backlog).
//!
//! The batch path must win on throughput *and* stay bitwise-identical
//! to the scalar path — every cell asserts the trigger counts match
//! before timing, so a kernel that drifts fails the bench rather than
//! reporting a bogus speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rejuv_core::{
    Clta, CltaConfig, Cusum, CusumConfig, Ewma, EwmaConfig, RejuvenationDetector, Saraa,
    SaraaConfig, Sraa, SraaConfig, StaticRejuvenation,
};
use std::hint::black_box;

const BATCH_SIZES: [usize; 3] = [64, 512, 4096];
const STREAM_LEN: usize = 65_536;

/// A deterministic response-time stream mixing healthy values with
/// occasional spikes, so detectors exercise both branch directions.
fn stream(len: usize) -> Vec<f64> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            -5.0 * (1.0 - u).ln()
        })
        .collect()
}

/// One fresh detector per kind, at the configurations the monitor
/// defaults use.
fn detectors() -> Vec<(&'static str, Box<dyn RejuvenationDetector>)> {
    vec![
        (
            "sraa",
            Box::new(Sraa::new(
                SraaConfig::builder(5.0, 5.0)
                    .sample_size(2)
                    .buckets(5)
                    .depth(3)
                    .build()
                    .unwrap(),
            )),
        ),
        (
            "saraa",
            Box::new(Saraa::new(
                SaraaConfig::builder(5.0, 5.0)
                    .initial_sample_size(2)
                    .buckets(5)
                    .depth(3)
                    .build()
                    .unwrap(),
            )),
        ),
        (
            "clta",
            Box::new(Clta::new(
                CltaConfig::builder(5.0, 5.0)
                    .sample_size(30)
                    .quantile_factor(1.96)
                    .build()
                    .unwrap(),
            )),
        ),
        (
            "static",
            Box::new(StaticRejuvenation::new(5.0, 5.0, 5, 3).unwrap()),
        ),
        (
            "cusum",
            Box::new(Cusum::new(CusumConfig::new(5.0, 5.0, 0.5, 5.0).unwrap())),
        ),
        (
            "ewma",
            Box::new(Ewma::new(EwmaConfig::new(5.0, 5.0, 0.2, 3.0).unwrap())),
        ),
    ]
}

/// Drives a full stream through `observe_batch` in `batch`-sized chunks
/// and returns the trigger count.
fn run_batched(d: &mut dyn RejuvenationDetector, data: &[f64], batch: usize) -> u64 {
    let mut fired = Vec::with_capacity(batch);
    for (chunk_index, chunk) in data.chunks(batch).enumerate() {
        fired.clear();
        d.observe_batch(chunk, &mut fired, (chunk_index * batch) as u64);
    }
    d.rejuvenation_count()
}

/// Drives the same stream one `observe` call at a time.
fn run_scalar(d: &mut dyn RejuvenationDetector, data: &[f64]) -> u64 {
    for &x in data {
        black_box(d.observe(x));
    }
    d.rejuvenation_count()
}

fn bench_batch_kernels(c: &mut Criterion) {
    let data = stream(STREAM_LEN);
    let mut group = c.benchmark_group("detector_batch");
    group.throughput(Throughput::Elements(data.len() as u64));

    for (name, probe) in detectors() {
        // Conformance gate: the batch path must agree with the scalar
        // path on this stream before its timing means anything.
        let mut scalar_probe = probe;
        let scalar_triggers = run_scalar(scalar_probe.as_mut(), &data);
        for &batch in &BATCH_SIZES {
            let mut batch_probe = detectors()
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("detector kind exists")
                .1;
            assert_eq!(
                run_batched(batch_probe.as_mut(), &data, batch),
                scalar_triggers,
                "{name} batch kernel diverged from scalar at batch={batch}"
            );
        }

        group.bench_with_input(
            BenchmarkId::new(name, "scalar"),
            &data,
            |b, data: &Vec<f64>| {
                b.iter(|| {
                    let mut d = detectors()
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .expect("detector kind exists")
                        .1;
                    black_box(run_scalar(d.as_mut(), data))
                });
            },
        );
        for &batch in &BATCH_SIZES {
            group.bench_with_input(
                BenchmarkId::new(name, format!("batch{batch}")),
                &data,
                |b, data: &Vec<f64>| {
                    b.iter(|| {
                        let mut d = detectors()
                            .into_iter()
                            .find(|(n, _)| *n == name)
                            .expect("detector kind exists")
                            .1;
                        black_box(run_batched(d.as_mut(), data, batch))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_kernels);
criterion_main!(benches);
