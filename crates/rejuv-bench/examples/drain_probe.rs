//! Drain-plane microprobe: batch kernel versus scalar drain, nothing
//! else on the core.
//!
//! Preloads one shard's queue with a synthetic load stream and times
//! *only* the drain loop (`poll_shard` until empty), so the measured
//! quantity is the per-observation cost of the drain plane itself —
//! queue pop, detector step, decision digest, histograms — with no
//! producer thread sharing the core, unlike `bench_monitor`'s threaded
//! cells. The two variants alternate within each round and the best
//! round wins, which keeps slow machine drift out of the comparison.
//!
//! Run with: `cargo run --release -p rejuv-bench --example drain_probe`

use rejuv_core::{RejuvenationDetector, Sraa, SraaConfig};
use rejuv_monitor::{QueueBackend, Supervisor, SupervisorConfig};
use std::time::Instant;

const N: usize = 1_000_000;
const ROUNDS: usize = 11;

fn sraa() -> Box<dyn RejuvenationDetector> {
    Box::new(Sraa::new(
        SraaConfig::builder(5.0, 5.0)
            .sample_size(2)
            .buckets(5)
            .depth(3)
            .build()
            .unwrap(),
    ))
}

/// Mostly-healthy load with slow drift and sparse spikes — enough
/// texture to exercise every histogram bucket and the occasional
/// detector chain walk, cheap enough that generation stays out of the
/// timed region (the queue is preloaded).
fn synthetic(shard: u64, i: u64) -> f64 {
    let base = 3.0 + (i % 7) as f64 * 0.5;
    let drift = (i / 10_000) as f64 * 0.05;
    let spike = if (i + shard * 13).is_multiple_of(997) {
        45.0
    } else {
        0.0
    };
    base + drift + spike
}

/// One preload-then-drain pass; returns the drain wall time in seconds.
fn timed_drain(scalar_drain: bool) -> f64 {
    let config = SupervisorConfig {
        queue_capacity: N,
        drain_batch: 512,
        snapshot_every: None,
        backend: QueueBackend::Mutex,
        consumers: 1,
        scalar_drain,
    };
    let mut sup = Supervisor::with_shards(config, 1, |_| sraa());
    let sender = sup.sender(0);
    let mut buf = Vec::with_capacity(256);
    let mut i = 0u64;
    while (i as usize) < N {
        let n = 256.min(N as u64 - i);
        buf.clear();
        buf.extend((i..i + n).map(|k| (synthetic(0, k), f64::NAN)));
        sender.send_batch_blocking(buf.iter().copied());
        i += n;
    }
    let start = Instant::now();
    while sup.poll_shard(0).unwrap() > 0 {}
    start.elapsed().as_secs_f64()
}

fn main() {
    let mut best_batch = f64::MAX;
    let mut best_scalar = f64::MAX;
    for _ in 0..ROUNDS {
        best_batch = best_batch.min(timed_drain(false));
        best_scalar = best_scalar.min(timed_drain(true));
    }
    let batch = N as f64 / best_batch / 1e6;
    let scalar = N as f64 / best_scalar / 1e6;
    println!("batch kernel : best {batch:.1} M obs/s");
    println!("scalar drain : best {scalar:.1} M obs/s");
    println!("batch/scalar : {:.2}x", batch / scalar);
}
